"""Trace exporters: Chrome trace-event JSON and flat JSONL.

Chrome format (load in ``chrome://tracing`` / Perfetto):

- point events become ``ph: "i"`` (instant) records;
- spans become ``ph: "X"`` (complete) records carrying ``span_id`` /
  ``parent`` in their args;
- simulated seconds map to trace microseconds (``ts = now * 1e6``);
- ``pid`` is always 0; ``tid`` lanes group records -- spans land on a
  lane named after their ``vm``/``site`` arg when present (so
  concurrent tasks render side by side), everything else on its
  category lane.

JSONL is one JSON object per line in emission order -- grep-friendly
and streamable; spans carry ``"ph": "span"`` plus ``dur``/``id``/
``parent``.
"""

from __future__ import annotations

import json
from typing import Dict, Iterator, List

__all__ = [
    "chrome_trace_doc",
    "write_chrome_trace",
    "events_jsonl",
    "write_jsonl",
]


def _span_lane(span) -> str:
    args = span.args
    lane = args.get("vm") or args.get("site")
    return str(lane) if lane is not None else span.cat


def chrome_trace_doc(tracer) -> Dict[str, object]:
    """Build the Chrome trace-event document for ``tracer``."""
    lanes: Dict[str, int] = {}

    def tid(label: str) -> int:
        t = lanes.get(label)
        if t is None:
            t = lanes[label] = len(lanes)
        return t

    records: List[dict] = []
    for ts, cat, name, args in tracer.events:
        records.append(
            {
                "ph": "i",
                "name": name,
                "cat": cat,
                "ts": ts * 1e6,
                "pid": 0,
                "tid": tid(cat),
                "s": "t",
                "args": args or {},
            }
        )
    for span in tracer.spans:
        end = span.end if span.end is not None else span.start
        args = dict(span.args)
        args["span_id"] = span.id
        if span.parent is not None:
            args["parent"] = span.parent
        records.append(
            {
                "ph": "X",
                "name": span.name,
                "cat": span.cat,
                "ts": span.start * 1e6,
                "dur": (end - span.start) * 1e6,
                "pid": 0,
                "tid": tid(_span_lane(span)),
                "args": args,
            }
        )
    meta = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": 0,
            "tid": 0,
            "args": {"name": "repro-sim"},
        }
    ]
    for label, t in lanes.items():
        meta.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": 0,
                "tid": t,
                "args": {"name": label},
            }
        )
    records.sort(key=lambda r: (r["ts"], r["tid"]))
    return {"traceEvents": meta + records, "displayTimeUnit": "ms"}


def write_chrome_trace(tracer, path: str) -> None:
    with open(path, "w") as fh:
        json.dump(chrome_trace_doc(tracer), fh)


def events_jsonl(tracer) -> Iterator[str]:
    """Yield one JSON line per event/span, ordered by simulated time."""
    rows: List[dict] = []
    for ts, cat, name, args in tracer.events:
        row = {"ts": ts, "cat": cat, "name": name}
        if args:
            row.update(args)
        rows.append(row)
    for span in tracer.spans:
        end = span.end if span.end is not None else span.start
        row = {
            "ts": span.start,
            "cat": span.cat,
            "name": span.name,
            "ph": "span",
            "dur": end - span.start,
            "id": span.id,
        }
        if span.parent is not None:
            row["parent"] = span.parent
        row.update(span.args)
        rows.append(row)
    rows.sort(key=lambda r: r["ts"])
    for row in rows:
        yield json.dumps(row)


def write_jsonl(tracer, path: str) -> None:
    with open(path, "w") as fh:
        for line in events_jsonl(tracer):
            fh.write(line + "\n")
