"""Metrics registry: counters, gauges and memory-bounded histograms.

Two streaming quantile sketches are provided, both O(1) memory in the
stream length and both independent of every simulation RNG:

- :class:`ReservoirHistogram` (the default): uniform reservoir sampling
  with a private deterministic xorshift generator.  Quantiles are
  *exact* while the stream fits in the reservoir (``n <= capacity``);
  beyond that the q-th quantile carries a rank error of roughly
  ``sqrt(q(1-q)/capacity)`` (about 1.1% of rank at the median for the
  default capacity of 2048).
- :class:`P2Quantile`: the Jain & Chlamtac P^2 estimator -- five
  markers per tracked quantile, no sampling at all.  Useful when even a
  reservoir is too much state; accuracy is good in practice but has no
  distribution-free bound, so the reservoir is the default.

Counter/gauge values are sampled into a time series at a configurable
simulated-time interval.  Sampling is *event-driven*: it piggybacks on
trace emissions instead of scheduling its own simulation events, so the
metrics plane can never alter event ordering or keep a run alive.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "P2Quantile",
    "ReservoirHistogram",
    "MetricsRegistry",
]


class Counter:
    """A monotonically increasing named value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def __repr__(self) -> str:
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """A point-in-time value: set directly or computed via a callback."""

    __slots__ = ("name", "_value", "_fn")

    def __init__(self, name: str, fn: Optional[Callable[[], float]] = None):
        self.name = name
        self._value = 0.0
        self._fn = fn

    def set(self, value: float) -> None:
        self._value = value

    def value(self) -> float:
        if self._fn is not None:
            return float(self._fn())
        return self._value

    def __repr__(self) -> str:
        return f"<Gauge {self.name}={self.value()}>"


class P2Quantile:
    """Jain & Chlamtac's P^2 single-quantile estimator (5 markers).

    Tracks the ``p``-quantile (``0 < p < 1``) of a stream in O(1)
    memory without storing samples.  Exact for the first five
    observations, then piecewise-parabolic interpolation.
    """

    __slots__ = ("p", "_n", "_q", "_np", "_dn", "_count")

    def __init__(self, p: float):
        if not 0.0 < p < 1.0:
            raise ValueError(f"p must be in (0, 1), got {p}")
        self.p = p
        self._count = 0
        self._q: List[float] = []           # marker heights
        self._n = [0, 1, 2, 3, 4]           # marker positions
        self._np = [0.0, 2 * p, 4 * p, 2 + 2 * p, 4.0]  # desired positions
        self._dn = [0.0, p / 2, p, (1 + p) / 2, 1.0]

    def add(self, x: float) -> None:
        self._count += 1
        q = self._q
        if len(q) < 5:
            q.append(x)
            if len(q) == 5:
                q.sort()
            return
        # find the cell k containing x, clamping the extremes
        if x < q[0]:
            q[0] = x
            k = 0
        elif x >= q[4]:
            q[4] = x
            k = 3
        else:
            k = 0
            while x >= q[k + 1]:
                k += 1
        n = self._n
        for i in range(k + 1, 5):
            n[i] += 1
        for i in range(5):
            self._np[i] += self._dn[i]
        # adjust interior markers toward their desired positions
        for i in (1, 2, 3):
            d = self._np[i] - n[i]
            if (d >= 1 and n[i + 1] - n[i] > 1) or (d <= -1 and n[i - 1] - n[i] < -1):
                d = 1 if d > 0 else -1
                qp = self._parabolic(i, d)
                if q[i - 1] < qp < q[i + 1]:
                    q[i] = qp
                else:  # parabolic estimate left the bracket: fall back to linear
                    q[i] += d * (q[i + d] - q[i]) / (n[i + d] - n[i])
                n[i] += d

    def _parabolic(self, i: int, d: int) -> float:
        q, n = self._q, self._n
        return q[i] + d / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1])
        )

    def value(self) -> float:
        """Current estimate (exact while fewer than five samples).

        **Sentinel:** an estimator that has seen no observations
        returns ``0.0`` rather than raising -- consumers polling
        quantiles mid-run must not die on a quiet stream (check
        ``len(p2)`` to distinguish "no data" from a true zero).
        """
        if self._count == 0:
            return 0.0
        if len(self._q) < 5:
            vs = sorted(self._q)
            rank = self.p * (len(vs) - 1)
            lo = int(math.floor(rank))
            hi = min(lo + 1, len(vs) - 1)
            return vs[lo] + (rank - lo) * (vs[hi] - vs[lo])
        return self._q[2]

    def __len__(self) -> int:
        return self._count


class ReservoirHistogram:
    """Bounded uniform-sample histogram with deterministic replacement.

    Keeps at most ``capacity`` samples via Algorithm R driven by a
    private xorshift64* generator seeded from the histogram name, so it
    never consumes simulation randomness and two runs of the same
    scenario produce byte-identical sketches.  ``quantile(q)`` matches
    ``numpy.percentile(..., q)`` (linear interpolation) exactly while
    ``n <= capacity``.
    """

    __slots__ = ("name", "capacity", "n", "sum", "min", "max", "_samples", "_state")

    def __init__(self, name: str, capacity: int = 2048):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.name = name
        self.capacity = capacity
        self.n = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._samples: List[float] = []
        # seed from the name so distinct histograms decorrelate, but the
        # same name always replays the same replacement choices
        state = 0x9E3779B97F4A7C15
        for ch in name:
            state = (state ^ ord(ch)) * 0x100000001B3 & 0xFFFFFFFFFFFFFFFF
        self._state = state or 1

    def _rand(self, bound: int) -> int:
        """Deterministic integer in [0, bound) -- xorshift64*."""
        x = self._state
        x ^= (x >> 12)
        x ^= (x << 25) & 0xFFFFFFFFFFFFFFFF
        x ^= (x >> 27)
        self._state = x
        return ((x * 0x2545F4914F6CDD1D) & 0xFFFFFFFFFFFFFFFF) % bound

    def add(self, x: float) -> None:
        self.n += 1
        self.sum += x
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x
        if len(self._samples) < self.capacity:
            self._samples.append(x)
        else:
            j = self._rand(self.n)
            if j < self.capacity:
                self._samples[j] = x

    def quantile(self, q: float) -> float:
        """The q-th percentile (``0 <= q <= 100``) of the retained sample.

        **Sentinel:** an empty histogram returns ``0.0`` for every
        valid ``q`` rather than raising (``len(hist)`` distinguishes
        "no data" from a true zero); an out-of-range ``q`` is still a
        ``ValueError`` -- that is a caller bug, not a data condition.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"q must be in [0, 100], got {q}")
        if not self._samples:
            return 0.0
        vs = sorted(self._samples)
        rank = (len(vs) - 1) * q / 100.0
        lo = int(math.floor(rank))
        hi = min(lo + 1, len(vs) - 1)
        return vs[lo] + (rank - lo) * (vs[hi] - vs[lo])

    def mean(self) -> float:
        return self.sum / self.n if self.n else 0.0

    def export(self) -> Dict[str, float]:
        return {
            "count": float(self.n),
            "mean": self.mean(),
            "min": self.min if self.n else 0.0,
            "max": self.max if self.n else 0.0,
            "p50": self.quantile(50),
            "p90": self.quantile(90),
            "p99": self.quantile(99),
        }

    def __len__(self) -> int:
        return self.n


class MetricsRegistry:
    """Named counters/gauges/histograms plus interval time-series.

    ``maybe_sample(now)`` is called from trace emissions; whenever at
    least ``sample_interval`` simulated seconds elapsed since the last
    sample, counter and gauge values are appended to :attr:`series`.
    The series is capped (``_MAX_SAMPLES``) so a pathological interval
    cannot grow without bound.
    """

    _MAX_SAMPLES = 100_000

    def __init__(self, sample_interval: float = 1.0, histogram_capacity: int = 2048):
        if sample_interval <= 0:
            raise ValueError(
                f"sample_interval must be > 0, got {sample_interval}"
            )
        self.sample_interval = sample_interval
        self.histogram_capacity = histogram_capacity
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, ReservoirHistogram] = {}
        self.series: List[Tuple[float, Dict[str, float]]] = []
        self._last: Optional[float] = None

    # -- instrument factories (get-or-create) ---------------------------------------

    def counter(self, name: str) -> Counter:
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter(name)
        return c

    def gauge(self, name: str, fn: Optional[Callable[[], float]] = None) -> Gauge:
        g = self.gauges.get(name)
        if g is None:
            g = self.gauges[name] = Gauge(name, fn)
        return g

    def histogram(self, name: str, capacity: Optional[int] = None) -> ReservoirHistogram:
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = ReservoirHistogram(
                name, capacity or self.histogram_capacity
            )
        return h

    # -- time-series sampling -------------------------------------------------------

    def maybe_sample(self, now: float) -> None:
        if self._last is not None and now - self._last < self.sample_interval:
            return
        self.sample(now)

    def sample(self, now: float, force: bool = False) -> None:
        """Append one snapshot; ``force`` ignores the interval gate."""
        if not force and len(self.series) >= self._MAX_SAMPLES:
            return
        snap = {name: c.value for name, c in self.counters.items()}
        for name, g in self.gauges.items():
            snap[name] = g.value()
        self.series.append((now, snap))
        self._last = now

    def series_stats(self, name: str) -> Dict[str, float]:
        """Summary of one counter/gauge's sampled time-series.

        Returns ``{"count", "t0", "t1", "min", "max", "last"}`` over
        the samples that carry ``name``.  **Sentinel:** a zero-length
        series (nothing sampled yet, or an unknown name) returns the
        all-zero summary rather than raising, mirroring the empty-
        histogram quantile contract; ``count`` distinguishes the two.
        """
        points = [
            (t, values[name])
            for t, values in self.series
            if name in values
        ]
        if not points:
            return {
                "count": 0.0,
                "t0": 0.0,
                "t1": 0.0,
                "min": 0.0,
                "max": 0.0,
                "last": 0.0,
            }
        vs = [v for _, v in points]
        return {
            "count": float(len(points)),
            "t0": points[0][0],
            "t1": points[-1][0],
            "min": min(vs),
            "max": max(vs),
            "last": vs[-1],
        }

    # -- export ---------------------------------------------------------------------

    def export(self) -> Dict[str, object]:
        return {
            "counters": {
                name: c.value for name, c in sorted(self.counters.items())
            },
            "gauges": {
                name: g.value() for name, g in sorted(self.gauges.items())
            },
            "histograms": {
                name: h.export() for name, h in sorted(self.histograms.items())
            },
            "series": [
                {"t": t, "values": dict(values)} for t, values in self.series
            ],
        }
