"""Tracer core: typed events in simulated time, plus a span API.

A :class:`Tracer` hangs off an :class:`~repro.sim.core.Environment`
(``env.attach_tracer(tracer)``) and records two kinds of things:

- **events**: point-in-time facts ``(ts, category, name, args)`` --
  a kernel pop, a transfer retry, a placement decision;
- **spans**: intervals ``[start, end]`` with parent/child linkage --
  a workflow task, an input-staging phase, one RPC.

Everything is stamped with *simulated* time (``env.now``), never wall
time, so traces are deterministic and diffable across runs.

The disabled fast path is the module singleton :data:`NULL_TRACER`:
every method is a no-op, ``wants()`` is always ``False``, and
instrumented components cache ``wants(category)`` as a plain boolean at
construction so the per-event cost with tracing off is one attribute
load and a falsy branch.  The tracer itself never touches any RNG and
never schedules simulation events, so enabling it cannot perturb a run.

Event volume is bounded by ``max_events``; beyond the cap events and
spans are counted (``dropped``) but not retained.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.obs.metrics import MetricsRegistry

__all__ = ["TRACE_CATEGORIES", "Span", "Tracer", "NullTracer", "NULL_TRACER"]

#: The closed event taxonomy; ``ObservabilitySpec.categories`` must be a
#: subset.  See docs/observability.md for the events each category emits.
TRACE_CATEGORIES: Tuple[str, ...] = (
    "kernel",     # schedule/pop/cancel/reschedule + queue depth
    "network",    # transfer open/done/abort/retry, per-leg RPC timing
    "flow",       # fair-share re-solves: component size, flows rescheduled
    "registry",   # metadata op start/finish, registry slot waits
    "scheduler",  # per-placement candidate scores
    "workload",   # tenant submit, admission enqueue/dequeue (reject reserved)
    "elastic",    # autoscaler decisions, VM provision/drain lifecycle
    "span",       # interval spans (tasks, staging, transfers, RPCs)
)


class Span:
    """One traced interval, closed by ``end()`` or a ``with`` block."""

    __slots__ = ("id", "name", "cat", "parent", "start", "end", "args", "_tracer")

    def __init__(
        self,
        tracer: "Tracer",
        span_id: int,
        name: str,
        cat: str,
        parent: Optional[int],
        start: float,
        args: Dict[str, object],
    ):
        self.id = span_id
        self.name = name
        self.cat = cat
        self.parent = parent
        self.start = start
        self.end: Optional[float] = None
        self.args = args
        self._tracer = tracer

    def finish(self, **extra: object) -> None:
        """Close the span at the current simulated time (idempotent)."""
        if self.end is None:
            self.end = self._tracer._env.now
            if extra:
                self.args.update(extra)

    def child(self, name: str, **args: object) -> "Span":
        """Open a child span parented to this one."""
        return self._tracer.span(name, parent=self, **args)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.finish()

    def __repr__(self) -> str:
        return (
            f"<Span #{self.id} {self.name!r} [{self.start}, {self.end}]"
            f"{'' if self.parent is None else f' parent={self.parent}'}>"
        )


class _NullSpan:
    """Span stand-in returned by :class:`NullTracer`; does nothing."""

    __slots__ = ()
    id = -1
    parent = None

    def finish(self, **extra: object) -> None:
        pass

    def child(self, name: str, **args: object) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


NULL_SPAN = _NullSpan()


class Tracer:
    """Collects events and spans from an instrumented simulation.

    ``categories`` selects which parts of the taxonomy are live
    (``None`` = all).  Components query ``wants(cat)`` once at
    construction and skip emission entirely for dead categories, so a
    partially-enabled tracer only pays for what it records.
    """

    enabled = True

    def __init__(
        self,
        env,
        categories: Optional[Tuple[str, ...]] = None,
        max_events: int = 1_000_000,
        sample_interval: float = 1.0,
        histogram_capacity: int = 2048,
    ):
        if categories is not None:
            unknown = set(categories) - set(TRACE_CATEGORIES)
            if unknown:
                raise ValueError(
                    f"unknown trace categories: {sorted(unknown)}; "
                    f"known: {list(TRACE_CATEGORIES)}"
                )
        self._env = env
        self._cats = frozenset(
            TRACE_CATEGORIES if categories is None else categories
        )
        self.events: List[Tuple[float, str, str, Optional[dict]]] = []
        self.spans: List[Span] = []
        self.counts: Dict[str, int] = {}
        self.dropped = 0
        self._budget = max_events
        self._next_span_id = 0
        self.metrics = MetricsRegistry(
            sample_interval=sample_interval,
            histogram_capacity=histogram_capacity,
        )

    # -- emission -----------------------------------------------------------------

    def wants(self, cat: str) -> bool:
        """True if ``cat`` events would be recorded; cache me as a bool."""
        return cat in self._cats

    def emit(self, cat: str, name: str, **args: object) -> None:
        """Record one point event at the current simulated time."""
        if cat not in self._cats:
            return
        self.counts[cat] = self.counts.get(cat, 0) + 1
        now = self._env.now
        if self._budget > 0:
            self._budget -= 1
            self.events.append((now, cat, name, args or None))
        else:
            self.dropped += 1
        self.metrics.maybe_sample(now)

    def span(self, name: str, cat: str = "span", parent=None, **args) -> Span:
        """Open a span at ``env.now``; close with ``finish()``/``with``.

        ``parent`` is an open :class:`Span` (or a span id).  There is
        deliberately *no* implicit current-span stack: simulation
        processes interleave at every yield, so parentage must be
        threaded explicitly by the instrumented code.
        """
        if cat not in self._cats:
            return NULL_SPAN
        self.counts[cat] = self.counts.get(cat, 0) + 1
        parent_id = parent.id if isinstance(parent, Span) else parent
        sid = self._next_span_id
        self._next_span_id += 1
        span = Span(self, sid, name, cat, parent_id, self._env.now, args)
        if self._budget > 0:
            self._budget -= 1
            self.spans.append(span)
        else:
            self.dropped += 1
        self.metrics.maybe_sample(span.start)
        return span

    # -- export -------------------------------------------------------------------

    def export(self) -> Dict[str, object]:
        """Summary + metrics dump for ``ScenarioResult``/artifacts.

        Raw events are *not* embedded (use the Chrome/JSONL exporters in
        :mod:`repro.obs.export`); this is the bounded summary that is
        safe to persist with every run.
        """
        self.metrics.sample(self._env.now, force=True)
        return {
            "events": dict(sorted(self.counts.items())),
            "n_events": len(self.events),
            "n_spans": len(self.spans),
            "dropped": self.dropped,
            "metrics": self.metrics.export(),
        }


class NullTracer:
    """The disabled fast path: every operation is a no-op.

    Use the module singleton :data:`NULL_TRACER`; components written as
    ``tr = env.tracer or NULL_TRACER`` never need a None check.
    """

    enabled = False

    def wants(self, cat: str) -> bool:
        return False

    def emit(self, cat: str, name: str, **args: object) -> None:
        pass

    def span(self, name: str, cat: str = "span", parent=None, **args) -> _NullSpan:
        return NULL_SPAN

    def export(self) -> Dict[str, object]:
        return {}


NULL_TRACER = NullTracer()
