"""Observability plane: tracing spans/events + streaming metrics.

The package is deliberately dependency-free (it imports nothing from the
rest of ``repro``) so every layer -- kernel, cloud, metadata, scheduling,
workload -- can import it without cycles.  See ``docs/observability.md``
for the event taxonomy, span model and exporter formats.
"""

from repro.obs.analyze import (
    ATTRIBUTION_BUCKETS,
    PathStep,
    RunAnalysis,
    UtilizationSummary,
    WorkflowAnalysis,
    analyze_tracer,
    capacity_timeline,
    concurrency_profile,
)
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    TRACE_CATEGORIES,
    Tracer,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    MetricsRegistry,
    P2Quantile,
    ReservoirHistogram,
)
from repro.obs.export import (
    chrome_trace_doc,
    events_jsonl,
    write_chrome_trace,
    write_jsonl,
)

__all__ = [
    "ATTRIBUTION_BUCKETS",
    "PathStep",
    "RunAnalysis",
    "UtilizationSummary",
    "WorkflowAnalysis",
    "analyze_tracer",
    "capacity_timeline",
    "concurrency_profile",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "TRACE_CATEGORIES",
    "Tracer",
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "P2Quantile",
    "ReservoirHistogram",
    "chrome_trace_doc",
    "events_jsonl",
    "write_chrome_trace",
    "write_jsonl",
]
