"""Trace analysis: observed critical paths, attribution, utilization.

Everything in this module is a **pure consumer** of a
:class:`~repro.obs.trace.Tracer`'s recorded events and spans: it runs
after the simulation, touches no simulation RNG and schedules nothing,
so analyzed and non-analyzed runs of the same spec+seed produce
bit-for-bit identical scenario metrics (pinned by
``tests/obs/test_analyze.py``).

Three questions are answered from one trace:

- **Where did the time go?**  :func:`analyze_tracer` reconstructs the
  causal graph from the explicit-parentage spans (``task`` spans with
  ``stage``/``compute``/``publish``/``ops`` children, keyed by their
  ``run`` tag) and walks the *observed* critical path of each workflow
  backwards from its last-finishing task.  Each path step is decomposed
  into attribution buckets (:data:`ATTRIBUTION_BUCKETS`) that
  **partition the observed makespan exactly** -- the buckets of a
  workflow sum to ``finished_at - window_start`` by construction.  This
  complements the static ``Workflow.critical_path_time()`` lower bound
  with what actually happened under contention.
- **Which resource was busy?**  Per-site VM-occupancy and per-link
  busy-flow step timelines with peak/mean/idle-fraction summaries
  (:func:`concurrency_profile`), plus per-site registry slot-wait
  totals from ``registry/slot_wait`` events.
- **Is anything on fire?**  ``hottest_site()``/``hottest_link()`` rank
  by busy time; the SLO rule engine proper lives in
  :mod:`repro.scenario.slo` and consumes this module's output.

Degenerate inputs are sentinels, not errors: an empty tracer (or one
recorded without the ``span`` category) yields a :class:`RunAnalysis`
with no workflows and empty utilization maps, and
:func:`concurrency_profile` returns an all-zero summary for an empty
interval list or a zero-length window.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "ATTRIBUTION_BUCKETS",
    "PathStep",
    "RunAnalysis",
    "UtilizationSummary",
    "WorkflowAnalysis",
    "analyze_tracer",
    "capacity_timeline",
    "concurrency_profile",
]

#: The attribution buckets a workflow's observed makespan is split into.
#: They partition the makespan exactly (sum == makespan):
#:
#: - ``compute``         -- CPU time on the critical path (compute spans
#:                          plus the interleaved think slices of ``ops``);
#: - ``metadata``        -- registry operation time on the path (staging
#:                          resolution, output publication, extra ops),
#:                          *including* RPC legs and registry slot waits;
#: - ``wan_transfer``    -- scheduler-induced staging: WAN byte movement
#:                          while the path task stages its inputs;
#: - ``admission_wait``  -- time the instance queued at admission control
#:                          before its first path task could start;
#: - ``dependency_wait`` -- gaps between consecutive path tasks (waiting
#:                          on off-path parents, VM queueing);
#: - ``overhead``        -- residual task-span time not covered by any
#:                          child span (engine bookkeeping; ~0).
ATTRIBUTION_BUCKETS: Tuple[str, ...] = (
    "compute",
    "metadata",
    "wan_transfer",
    "admission_wait",
    "dependency_wait",
    "overhead",
)

_EPS = 1e-9

#: Max points persisted per utilization timeline in ``to_dict()``.
_MAX_SERIES_POINTS = 512


@dataclass
class PathStep:
    """One task on an observed critical path, with its time split."""

    task: str
    vm: str
    site: str
    start: float
    end: float
    wait_before: float  # gap since the previous path task finished
    compute: float
    metadata: float
    wan_transfer: float
    overhead: float

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> Dict[str, object]:
        return {
            "task": self.task,
            "vm": self.vm,
            "site": self.site,
            "start": self.start,
            "end": self.end,
            "wait_before": self.wait_before,
            "compute": self.compute,
            "metadata": self.metadata,
            "wan_transfer": self.wan_transfer,
            "overhead": self.overhead,
        }


@dataclass
class WorkflowAnalysis:
    """Observed critical path + attribution for one workflow run."""

    run: str
    window_start: float  # submit time when known, else first task start
    finished_at: float
    n_tasks: int
    path: List[PathStep]
    buckets: Dict[str, float]

    @property
    def makespan(self) -> float:
        return self.finished_at - self.window_start

    def dominant_bucket(self) -> str:
        """The bucket holding the largest share of the makespan."""
        return max(
            ATTRIBUTION_BUCKETS, key=lambda b: self.buckets.get(b, 0.0)
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "run": self.run,
            "window_start": self.window_start,
            "finished_at": self.finished_at,
            "makespan": self.makespan,
            "n_tasks": self.n_tasks,
            "buckets": dict(self.buckets),
            "path": [s.to_dict() for s in self.path],
        }


@dataclass
class UtilizationSummary:
    """Step-timeline summary for one site (VM occupancy) or link
    (concurrent WAN flows).  ``series`` is the ``(t, level)`` step
    function; empty input leaves every field at its zero sentinel."""

    key: str
    kind: str  # "site" | "link"
    peak: int = 0
    mean: float = 0.0
    busy_s: float = 0.0
    idle_fraction: float = 1.0
    n_intervals: int = 0
    vms_seen: int = 0  # sites only
    bytes: float = 0.0  # links only
    series: List[Tuple[float, int]] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        series = self.series
        if len(series) > _MAX_SERIES_POINTS:
            stride = -(-len(series) // _MAX_SERIES_POINTS)
            series = series[::stride]
        doc: Dict[str, object] = {
            "key": self.key,
            "kind": self.kind,
            "peak": self.peak,
            "mean": round(self.mean, 6),
            "busy_s": round(self.busy_s, 6),
            "idle_fraction": round(self.idle_fraction, 6),
            "n_intervals": self.n_intervals,
            "series": [[t, v] for t, v in series],
        }
        if self.kind == "site":
            doc["vms_seen"] = self.vms_seen
        else:
            doc["bytes"] = self.bytes
        return doc


def concurrency_profile(
    intervals: Sequence[Tuple[float, float]],
    window: Tuple[float, float],
) -> Tuple[List[Tuple[float, int]], int, float, float]:
    """Sweep ``[start, end)`` intervals into a concurrency step function.

    Returns ``(series, peak, mean, busy_s)`` where ``series`` is the
    ``(t, level)`` step function over ``window``, ``mean`` is the
    time-weighted average level and ``busy_s`` the time with at least
    one interval active.  **Sentinel:** an empty interval list or a
    zero-length window returns ``([], 0, 0.0, 0.0)`` rather than
    raising.
    """
    start, end = window
    if not intervals or end - start <= _EPS:
        return [], 0, 0.0, 0.0
    deltas: List[Tuple[float, int]] = []
    for s, e in intervals:
        if e < s:
            s, e = e, s
        deltas.append((min(max(s, start), end), 1))
        deltas.append((min(max(e, start), end), -1))
    deltas.sort()
    series: List[Tuple[float, int]] = []
    level = 0
    peak = 0
    prev_t = start
    area = 0.0
    busy = 0.0
    for t, d in deltas:
        if t > prev_t:
            area += level * (t - prev_t)
            if level > 0:
                busy += t - prev_t
            prev_t = t
        level += d
        peak = max(peak, level)
        if series and series[-1][0] == t:
            series[-1] = (t, level)
        else:
            series.append((t, level))
    if end > prev_t:
        area += level * (end - prev_t)
        if level > 0:
            busy += end - prev_t
    return series, peak, area / (end - start), busy


@dataclass
class RunAnalysis:
    """Everything :func:`analyze_tracer` extracts from one trace."""

    workflows: List[WorkflowAnalysis]
    sites: Dict[str, UtilizationSummary]
    links: Dict[str, UtilizationSummary]
    registry_wait: Dict[str, Dict[str, float]]
    window: Tuple[float, float]
    complete: bool  # False when the tracer dropped events (budget hit)

    @property
    def buckets(self) -> Dict[str, float]:
        """Attribution buckets summed across all analyzed workflows."""
        total = {b: 0.0 for b in ATTRIBUTION_BUCKETS}
        for wf in self.workflows:
            for b in ATTRIBUTION_BUCKETS:
                total[b] += wf.buckets.get(b, 0.0)
        return total

    def hottest_site(self) -> Optional[str]:
        """The site with the most VM-busy time (None when untracked)."""
        if not self.sites:
            return None
        return max(self.sites, key=lambda k: (self.sites[k].busy_s, k))

    def hottest_link(self) -> Optional[str]:
        """The link with the most flow-busy time (None when untracked)."""
        if not self.links:
            return None
        return max(self.links, key=lambda k: (self.links[k].busy_s, k))

    def to_dict(self) -> Dict[str, object]:
        return {
            "window": [self.window[0], self.window[1]],
            "complete": self.complete,
            "buckets": self.buckets,
            "hottest_site": self.hottest_site(),
            "hottest_link": self.hottest_link(),
            "workflows": [wf.to_dict() for wf in self.workflows],
            "sites": {
                k: v.to_dict() for k, v in sorted(self.sites.items())
            },
            "links": {
                k: v.to_dict() for k, v in sorted(self.links.items())
            },
            "registry_wait": {
                k: dict(v) for k, v in sorted(self.registry_wait.items())
            },
        }


def _decompose_task(span, children) -> Dict[str, float]:
    """Split one task span's duration into compute/metadata/transfer/
    overhead using its child spans' recorded attributions.  The four
    parts sum exactly to the span duration (``overhead`` absorbs the
    residual, clamped at zero against float error)."""
    compute = metadata = transfer = 0.0
    for c in children:
        if c.end is None:
            continue
        cdur = c.end - c.start
        args = c.args or {}
        if c.name == "stage":
            metadata += float(args.get("metadata_s", 0.0))
            transfer += float(args.get("transfer_s", cdur))
        elif c.name == "compute":
            compute += cdur
        elif c.name == "publish":
            metadata += float(args.get("metadata_s", cdur))
        elif c.name == "ops":
            ops_compute = float(args.get("compute_s", 0.0))
            compute += ops_compute
            metadata += float(
                args.get("metadata_s", max(0.0, cdur - ops_compute))
            )
    duration = span.end - span.start
    overhead = max(0.0, duration - compute - metadata - transfer)
    return {
        "compute": compute,
        "metadata": metadata,
        "wan_transfer": transfer,
        "overhead": overhead,
    }


def _critical_path(tasks) -> List[object]:
    """Walk backwards from the last-finishing task span, at each step
    hopping to the latest-finishing span that ended before the current
    one started -- the observed analogue of the DAG critical path.
    Ties break on (end, start, id) so the path is deterministic."""
    cur = max(tasks, key=lambda s: (s.end, s.start, s.id))
    path = [cur]
    on_path = {cur.id}
    while True:
        preds = [
            s
            for s in tasks
            if s.id not in on_path and s.end <= cur.start + _EPS
        ]
        if not preds:
            break
        cur = max(preds, key=lambda s: (s.end, s.start, s.id))
        on_path.add(cur.id)
        path.append(cur)
    path.reverse()
    return path


def _analyze_workflow(
    run: str,
    tasks,
    by_parent: Dict[int, list],
    submit_ts: Optional[float],
    admit_wait: float,
) -> WorkflowAnalysis:
    path_spans = _critical_path(tasks)
    window_start = (
        submit_ts
        if submit_ts is not None
        else min(s.start for s in tasks)
    )
    finished_at = max(s.end for s in tasks)
    # Admission wait cannot exceed the head room before the first path
    # task (it never does in practice; the clamp keeps the partition
    # exact even for hand-built traces).
    admission = min(
        max(0.0, admit_wait), max(0.0, path_spans[0].start - window_start)
    )
    buckets = {b: 0.0 for b in ATTRIBUTION_BUCKETS}
    buckets["admission_wait"] = admission
    prev_end = window_start + admission
    steps: List[PathStep] = []
    for s in path_spans:
        wait = max(0.0, s.start - prev_end)
        parts = _decompose_task(s, by_parent.get(s.id, ()))
        args = s.args or {}
        steps.append(
            PathStep(
                task=str(args.get("task", "")),
                vm=str(args.get("vm", "")),
                site=str(args.get("site", "")),
                start=s.start,
                end=s.end,
                wait_before=wait,
                **parts,
            )
        )
        buckets["dependency_wait"] += wait
        for k in ("compute", "metadata", "wan_transfer", "overhead"):
            buckets[k] += parts[k]
        prev_end = s.end
    # The decomposition telescopes: admission + per-step (wait + span
    # duration splits) covers [window_start, finished_at] exactly.
    return WorkflowAnalysis(
        run=run,
        window_start=window_start,
        finished_at=finished_at,
        n_tasks=len(tasks),
        path=steps,
        buckets=buckets,
    )


def analyze_tracer(tracer) -> RunAnalysis:
    """Build a :class:`RunAnalysis` from a finished run's tracer.

    Reads only ``tracer.spans`` / ``tracer.events`` / ``tracer.dropped``
    -- never the environment -- so it can run on a live tracer or on one
    reconstructed from an export.  Unfinished spans are skipped.
    """
    finished = [s for s in tracer.spans if s.end is not None]
    by_parent: Dict[int, list] = {}
    for s in finished:
        if s.parent is not None:
            by_parent.setdefault(s.parent, []).append(s)

    task_spans = [s for s in finished if s.name == "task"]
    transfer_spans = [s for s in finished if s.name == "transfer"]

    if finished:
        window = (
            min(s.start for s in finished),
            max(s.end for s in finished),
        )
    else:
        window = (0.0, 0.0)

    # Workload correlation: submit times and admission waits by run tag.
    submit_ts: Dict[str, float] = {}
    admit_wait: Dict[str, float] = {}
    for ts, cat, name, args in tracer.events:
        if cat != "workload" or not args:
            continue
        run = str(args.get("run", ""))
        if name == "submit":
            submit_ts.setdefault(run, ts)
        elif name == "admit":
            admit_wait[run] = float(args.get("wait", 0.0))

    groups: Dict[str, list] = {}
    for s in task_spans:
        groups.setdefault(str((s.args or {}).get("run", "")), []).append(s)
    workflows = [
        _analyze_workflow(
            run,
            tasks,
            by_parent,
            submit_ts.get(run),
            admit_wait.get(run, 0.0),
        )
        for run, tasks in sorted(groups.items())
    ]

    # Per-site VM occupancy from task spans.
    sites: Dict[str, UtilizationSummary] = {}
    site_intervals: Dict[str, List[Tuple[float, float]]] = {}
    site_vms: Dict[str, set] = {}
    for s in task_spans:
        args = s.args or {}
        site = str(args.get("site", ""))
        site_intervals.setdefault(site, []).append((s.start, s.end))
        site_vms.setdefault(site, set()).add(args.get("vm"))
    for site, intervals in site_intervals.items():
        series, peak, mean, busy = concurrency_profile(intervals, window)
        span_len = window[1] - window[0]
        sites[site] = UtilizationSummary(
            key=site,
            kind="site",
            peak=peak,
            mean=mean,
            busy_s=busy,
            idle_fraction=(
                1.0 - busy / span_len if span_len > _EPS else 1.0
            ),
            n_intervals=len(intervals),
            vms_seen=len(site_vms[site]),
            series=series,
        )

    # Per-link busy time from WAN transfer spans (directional).
    links: Dict[str, UtilizationSummary] = {}
    link_intervals: Dict[str, List[Tuple[float, float]]] = {}
    link_bytes: Dict[str, float] = {}
    for s in transfer_spans:
        args = s.args or {}
        src, dst = args.get("src"), args.get("dst")
        if src is None or dst is None or src == dst:
            continue
        key = f"{src}->{dst}"
        link_intervals.setdefault(key, []).append((s.start, s.end))
        link_bytes[key] = link_bytes.get(key, 0.0) + float(
            args.get("size", 0.0)
        )
    for key, intervals in link_intervals.items():
        series, peak, mean, busy = concurrency_profile(intervals, window)
        span_len = window[1] - window[0]
        links[key] = UtilizationSummary(
            key=key,
            kind="link",
            peak=peak,
            mean=mean,
            busy_s=busy,
            idle_fraction=(
                1.0 - busy / span_len if span_len > _EPS else 1.0
            ),
            n_intervals=len(intervals),
            bytes=link_bytes[key],
            series=series,
        )

    # Registry slot-wait pressure by site (queueing at saturated
    # registry instances; uncorrelated with tasks by design).
    registry_wait: Dict[str, Dict[str, float]] = {}
    for ts, cat, name, args in tracer.events:
        if cat != "registry" or name != "slot_wait" or not args:
            continue
        site = str(args.get("site", ""))
        wait = float(args.get("wait", 0.0))
        entry = registry_wait.setdefault(
            site, {"total_s": 0.0, "count": 0, "max_s": 0.0}
        )
        entry["total_s"] += wait
        entry["count"] += 1
        entry["max_s"] = max(entry["max_s"], wait)

    return RunAnalysis(
        workflows=workflows,
        sites=sites,
        links=links,
        registry_wait=registry_wait,
        window=window,
        complete=tracer.dropped == 0,
    )


def capacity_timeline(tracer) -> Dict[str, List[Tuple[float, int]]]:
    """Per-site placeable-VM step series from ``elastic`` trace events.

    Reads the elastic control plane's capacity transitions -- the
    ``fleet`` baseline emitted at controller start plus every
    ``vm_provisioned``/``scale_down`` event (the moments the *placeable*
    count changes; draining VMs leave placement immediately, so
    decommissions do not move this series) -- and returns
    ``site -> [(t, vms), ...]`` sorted by time.  Empty when the run had
    no elastic controller or the category was not recorded.
    """
    out: Dict[str, List[Tuple[float, int]]] = {}
    for ts, cat, name, args in tracer.events:
        if cat != "elastic" or not args or "vms" not in args:
            continue
        out.setdefault(str(args.get("site", "")), []).append(
            (ts, int(args["vms"]))
        )
    for series in out.values():
        series.sort(key=lambda p: p[0])
    return out
