"""Workload outcomes: per-instance records and tenant-level fairness.

The workload layer reports three families of metrics:

- **per-workflow**: each instance's makespan, queue wait and response
  time (wait + makespan), wrapped around the engine's own
  :class:`~repro.workflow.engine.WorkflowResult`;
- **per-tenant**: distributions of the above grouped by tenant, plus
  *slowdown* -- an instance's response time divided by the fastest
  observed makespan of the same application anywhere in the workload
  (an empirical no-contention proxy; 1.0 means "as fast as the best
  case this workload ever saw", larger means contention or queueing
  hurt this tenant);
- **aggregate**: whole-workload makespan, peak concurrency, metadata-op
  and WAN throughput, and the Jain fairness index over per-tenant mean
  slowdowns (1.0 = perfectly even suffering, 1/n = one tenant absorbs
  all of it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.experiments.reporting import render_table
from repro.util.units import MB
from repro.workflow.engine import WorkflowResult

__all__ = ["InstanceRecord", "WorkloadResult", "jain_index"]


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index: ``(sum x)^2 / (n * sum x^2)``.

    1.0 when all values are equal; ``1/n`` when one value dominates.
    Defined as 1.0 for empty or all-zero inputs (nothing to be unfair
    about).
    """
    xs = [float(v) for v in values]
    if not xs:
        return 1.0
    sq = sum(x * x for x in xs)
    if sq == 0.0:
        return 1.0
    s = sum(xs)
    return (s * s) / (len(xs) * sq)


@dataclass(frozen=True)
class InstanceRecord:
    """One completed workflow instance of the workload."""

    tenant: str
    application: str
    run: str
    submitted_at: float
    admitted_at: float
    finished_at: float
    result: WorkflowResult

    def __post_init__(self):
        if not (
            self.submitted_at <= self.admitted_at <= self.finished_at
        ):
            raise ValueError(
                "instance timeline must satisfy "
                "submitted <= admitted <= finished"
            )

    @property
    def queue_wait(self) -> float:
        """Seconds between submission and admission."""
        return self.admitted_at - self.submitted_at

    @property
    def makespan(self) -> float:
        return self.result.makespan

    @property
    def response_time(self) -> float:
        """Submission-to-completion, the tenant-visible latency."""
        return self.finished_at - self.submitted_at


@dataclass
class WorkloadResult:
    """Outcome of one multi-tenant workload execution."""

    name: str
    strategy: str
    scheduler: str
    admission: str
    mode: str
    records: List[InstanceRecord] = field(default_factory=list)
    started_at: float = 0.0
    finished_at: float = 0.0
    #: Highest number of concurrently executing workflows observed.
    peak_in_flight: int = 0
    #: The admission policy's hard cap (None: unbounded).
    admission_bound: Optional[int] = None
    #: Strategy-global op records completed during the workload window
    #: (the conservation reference for per-run attribution).
    total_ops: int = 0
    #: Bytes moved across WAN links during the workload.
    wan_bytes: int = 0

    # -- aggregate ---------------------------------------------------------

    @property
    def makespan(self) -> float:
        """Whole-workload span: first submission to last completion."""
        return self.finished_at - self.started_at

    @property
    def n_completed(self) -> int:
        return len(self.records)

    def tenants(self) -> List[str]:
        return sorted({r.tenant for r in self.records})

    def op_throughput(self) -> float:
        """Aggregate completed metadata ops per second."""
        span = self.makespan
        return self.total_ops / span if span > 0 else 0.0

    def network_throughput(self) -> float:
        """Aggregate WAN bytes per second."""
        span = self.makespan
        return self.wan_bytes / span if span > 0 else 0.0

    def attributed_ops(self) -> int:
        """Ops carried by the per-workflow snapshots (conservation)."""
        return sum(
            len(r.result.ops.records)
            for r in self.records
            if r.result.ops is not None
        )

    # -- per-instance ------------------------------------------------------

    def _best_by_application(self) -> Dict[str, float]:
        """Fastest observed makespan per application (cached one-pass).

        The slowdown baseline; cached because ``records`` is immutable
        once the runner returns and reports query slowdowns per record.
        """
        cached = getattr(self, "_best_cache", None)
        if cached is None:
            cached = {}
            for r in self.records:
                best = cached.get(r.application)
                if best is None or r.makespan < best:
                    cached[r.application] = r.makespan
            self._best_cache = cached
        return cached

    def slowdown(self, record: InstanceRecord) -> float:
        """Response time over the best observed same-application makespan."""
        best = self._best_by_application()[record.application]
        if best <= 0:
            return 1.0
        return record.response_time / best

    # -- per-tenant --------------------------------------------------------

    def by_tenant(self) -> Dict[str, List[InstanceRecord]]:
        out: Dict[str, List[InstanceRecord]] = {}
        for r in self.records:
            out.setdefault(r.tenant, []).append(r)
        return out

    def makespan_by_tenant(self) -> Dict[str, float]:
        """Mean workflow makespan per tenant."""
        return {
            t: float(np.mean([r.makespan for r in rs]))
            for t, rs in self.by_tenant().items()
        }

    def queue_wait_by_tenant(self) -> Dict[str, float]:
        """Mean queue wait per tenant."""
        return {
            t: float(np.mean([r.queue_wait for r in rs]))
            for t, rs in self.by_tenant().items()
        }

    def slowdown_by_tenant(self) -> Dict[str, float]:
        """Mean slowdown per tenant."""
        return {
            t: float(np.mean([self.slowdown(r) for r in rs]))
            for t, rs in self.by_tenant().items()
        }

    def jain_fairness(self) -> float:
        """Jain index over per-tenant mean slowdowns."""
        return jain_index(list(self.slowdown_by_tenant().values()))

    # -- distributions -----------------------------------------------------

    def slowdowns(self) -> List[float]:
        return [self.slowdown(r) for r in self.records]

    def slowdown_percentile(self, q: float) -> float:
        sd = self.slowdowns()
        return float(np.percentile(sd, q)) if sd else 0.0

    def mean_queue_wait(self) -> float:
        waits = [r.queue_wait for r in self.records]
        return float(np.mean(waits)) if waits else 0.0

    # -- reporting ---------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """JSON document form; see ``repro.analysis.export``."""
        from repro.analysis.export import workload_result_to_dict

        return workload_result_to_dict(self)

    def render(self) -> str:
        rows = []
        waits = self.queue_wait_by_tenant()
        spans = self.makespan_by_tenant()
        slows = self.slowdown_by_tenant()
        for tenant, rs in sorted(self.by_tenant().items()):
            rows.append(
                [
                    tenant,
                    rs[0].application,
                    len(rs),
                    f"{spans[tenant]:.2f}",
                    f"{waits[tenant]:.2f}",
                    f"{slows[tenant]:.2f}",
                ]
            )
        table = render_table(
            [
                "tenant",
                "application",
                "done",
                "makespan (s)",
                "queue wait (s)",
                "slowdown",
            ],
            rows,
            title=(
                f"Workload {self.name}: {self.strategy} / "
                f"{self.scheduler} / {self.admission} ({self.mode} loop)"
            ),
        )
        summary = (
            f"workload makespan {self.makespan:.2f}s | "
            f"peak in-flight {self.peak_in_flight}"
            + (
                f" (bound {self.admission_bound})"
                if self.admission_bound is not None
                else ""
            )
            + f" | {self.op_throughput():.0f} ops/s | "
            f"{self.network_throughput() / MB:.1f} WAN MB/s | "
            f"Jain fairness {self.jain_fairness():.3f}"
        )
        return table + "\n" + summary

    def __repr__(self) -> str:
        return (
            f"<WorkloadResult {self.name} tenants={len(self.tenants())} "
            f"instances={self.n_completed} makespan={self.makespan:.1f}s>"
        )
