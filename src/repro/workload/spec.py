"""Workload specifications: tenants, applications and arrival modes.

A :class:`WorkloadSpec` describes *many* workflow instances submitted by
competing tenants to one shared deployment -- the load shape under which
the metadata strategies, bandwidth models and placement policies
actually diverge (the paper's premise is a cloud infrastructure serving
real, concurrent workloads, not one workflow at a time).

Two arrival modes are supported:

- **closed-loop**: each tenant keeps exactly one workflow in flight,
  waiting ``think_time`` seconds between a completion and the next
  submission (the interactive-user model; total concurrency is the
  tenant count);
- **open-loop**: instances arrive on a schedule independent of
  completions -- seeded-RNG Poisson arrivals at ``arrival_rate`` per
  second, or an explicit trace of arrival offsets (the
  service-under-load model; concurrency is unbounded unless an
  admission controller caps it, see ``repro.workload.admission``).

Every quantity is deterministic given the spec and its seed: arrival
draws come from per-tenant named RNG streams, and tenant -> application
assignment is explicit in the spec.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Callable, Dict, Mapping, Optional, Sequence, Tuple

from repro.util.units import KB, MB
from repro.workflow.applications import buzzflow, montage
from repro.workflow.dag import Task, Workflow, WorkflowFile
from repro.workflow.patterns import pipeline, scatter

__all__ = [
    "APPLICATIONS",
    "APPLICATION_NAMES",
    "TenantSpec",
    "WorkloadSpec",
]


def _scaled(size: float, scale: float) -> int:
    return max(1, int(size * scale))


def _ingest(t: "TenantSpec") -> Workflow:
    """External seed -> split -> parallel consumers.

    The one registry application whose data enters the system from
    *outside* (an external input staged at the tenant's ``input_site``
    before the run), so per-tenant data origins are observable: a
    tenant ingesting from a distant site pays the cross-WAN staging its
    placement policy should route around.
    """
    wf = Workflow("ingest")
    seed = WorkflowFile("ingest/seed", size=_scaled(4 * MB, t.size_scale))
    width = 4
    parts = [
        WorkflowFile(f"ingest/part-{i}", size=_scaled(1 * MB, t.size_scale))
        for i in range(width)
    ]
    extra = lambda n_in, n_out: max(0, t.ops_per_task - n_in - n_out)
    wf.add_task(
        Task(
            "ingest-split",
            inputs=[seed],
            outputs=parts,
            compute_time=min(t.compute_time, 0.5),
            extra_ops=extra(1, width),
            stage="split",
        )
    )
    for i in range(width):
        wf.add_task(
            Task(
                f"ingest-consume-{i}",
                inputs=[parts[i]],
                outputs=[
                    WorkflowFile(
                        f"ingest/result-{i}",
                        size=_scaled(64 * KB, t.size_scale),
                    )
                ],
                compute_time=t.compute_time,
                extra_ops=extra(1, 1),
                stage="consume",
            )
        )
    return wf


#: name -> builder taking a :class:`TenantSpec` and returning a fresh
#: :class:`~repro.workflow.dag.Workflow`.  The ``*-small`` variants are
#: the same DAG shapes at workload-friendly sizes (many concurrent
#: instances), the bare names are the paper's full applications.
APPLICATIONS: Dict[str, Callable[["TenantSpec"], Workflow]] = {
    "montage": lambda t: montage(
        ops_per_task=t.ops_per_task,
        compute_time=t.compute_time,
        file_size=_scaled(1 * MB, t.size_scale),
    ),
    "montage-small": lambda t: montage(
        ops_per_task=t.ops_per_task,
        compute_time=t.compute_time,
        n_parallel=12,
        n_merges=2,
        file_size=_scaled(1 * MB, t.size_scale),
    ),
    "buzzflow": lambda t: buzzflow(
        ops_per_task=t.ops_per_task,
        compute_time=t.compute_time,
        file_size=_scaled(190 * KB, t.size_scale),
    ),
    "buzzflow-small": lambda t: buzzflow(
        ops_per_task=t.ops_per_task,
        compute_time=t.compute_time,
        width=2,
        n_stages=4,
        file_size=_scaled(190 * KB, t.size_scale),
    ),
    "scatter": lambda t: scatter(
        8,
        compute_time=t.compute_time,
        extra_ops=t.ops_per_task,
        file_size=_scaled(190 * KB, t.size_scale),
    ),
    "pipeline": lambda t: pipeline(
        6,
        compute_time=t.compute_time,
        extra_ops=t.ops_per_task,
        file_size=_scaled(190 * KB, t.size_scale),
    ),
    "ingest": _ingest,
}

#: Recognized application names, in a stable order.
APPLICATION_NAMES: Tuple[str, ...] = tuple(sorted(APPLICATIONS))


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's stream of workflow instances.

    Attributes
    ----------
    name:
        Unique tenant identifier; it prefixes every file/task key of the
        tenant's instances (see :meth:`Workflow.namespaced
        <repro.workflow.dag.Workflow.namespaced>`).
    application:
        Key into :data:`APPLICATIONS`.
    n_instances:
        Workflow instances this tenant submits (open-loop traces may
        override it with their own length).
    input_site:
        Site where the tenant's external inputs are staged (``None``:
        the engine default, historically the deployment's first site).
    size_scale:
        Multiplier on the application's file sizes (tenant data-volume
        heterogeneity).
    ops_per_task / compute_time:
        Forwarded to the application builder.
    think_time:
        Closed-loop only: idle seconds between a completion and the
        tenant's next submission.
    arrival_rate:
        Open-loop only: Poisson arrival rate, instances/second.
    arrival_times:
        Open-loop only: explicit trace of arrival offsets (seconds from
        workload start); overrides ``arrival_rate`` and
        ``n_instances``.
    """

    name: str
    application: str = "montage-small"
    n_instances: int = 1
    input_site: Optional[str] = None
    size_scale: float = 1.0
    ops_per_task: int = 20
    compute_time: float = 0.5
    think_time: float = 0.0
    arrival_rate: Optional[float] = None
    arrival_times: Optional[Tuple[float, ...]] = None

    def validate(self) -> None:
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if self.application not in APPLICATIONS:
            raise ValueError(
                f"unknown application {self.application!r}; expected one "
                f"of {APPLICATION_NAMES}"
            )
        if self.n_instances <= 0:
            raise ValueError("n_instances must be positive")
        if self.size_scale <= 0:
            raise ValueError("size_scale must be positive")
        if self.ops_per_task < 0:
            raise ValueError("ops_per_task must be >= 0")
        if self.compute_time < 0:
            raise ValueError("compute_time must be >= 0")
        if self.think_time < 0:
            raise ValueError("think_time must be >= 0")
        if self.arrival_rate is not None and self.arrival_rate <= 0:
            raise ValueError("arrival_rate must be positive")
        if self.arrival_times is not None:
            if not self.arrival_times:
                raise ValueError("arrival_times trace must be non-empty")
            if any(t < 0 for t in self.arrival_times):
                raise ValueError("arrival_times must be >= 0")

    def build_workflow(self, index: int) -> Workflow:
        """The ``index``-th namespaced workflow instance of this tenant."""
        wf = APPLICATIONS[self.application](self)
        return wf.namespaced(f"{self.name}/{index}")

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-compatible dict; :meth:`from_dict` inverts it exactly."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping) -> "TenantSpec":
        """Rebuild a tenant spec from :meth:`to_dict` output (strict)."""
        data = dict(data)
        fields = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - fields)
        if unknown:
            raise ValueError(f"unknown TenantSpec keys: {unknown}")
        if data.get("arrival_times") is not None:
            data["arrival_times"] = tuple(data["arrival_times"])
        return cls(**data)


@dataclass(frozen=True)
class WorkloadSpec:
    """A full multi-tenant workload: tenants plus the arrival mode.

    ``seed`` drives every random draw of the workload layer (open-loop
    Poisson arrivals); it is independent of the deployment seed, so
    varying one never perturbs the other.
    """

    tenants: Tuple[TenantSpec, ...]
    mode: str = "closed"  # "closed" | "open"
    seed: int = 0
    name: str = "workload"

    def __post_init__(self):
        # Tolerate lists in user code; store a hashable tuple.
        object.__setattr__(self, "tenants", tuple(self.tenants))

    def validate(self) -> None:
        if not self.tenants:
            raise ValueError("workload needs at least one tenant")
        names = [t.name for t in self.tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant names in {names}")
        if self.mode not in ("closed", "open"):
            raise ValueError(
                f"mode must be 'closed' or 'open', got {self.mode!r}"
            )
        for t in self.tenants:
            t.validate()
            if self.mode == "closed":
                if t.arrival_rate is not None or t.arrival_times is not None:
                    raise ValueError(
                        f"tenant {t.name!r}: arrival_rate/arrival_times "
                        "are open-loop knobs (closed-loop pacing is "
                        "think_time)"
                    )
            else:
                if t.arrival_rate is None and t.arrival_times is None:
                    raise ValueError(
                        f"tenant {t.name!r}: open-loop tenants need an "
                        "arrival_rate or an arrival_times trace"
                    )
                if t.think_time:
                    raise ValueError(
                        f"tenant {t.name!r}: think_time is a closed-loop "
                        "knob (open-loop pacing is the arrival process)"
                    )

    @property
    def n_tenants(self) -> int:
        return len(self.tenants)

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-compatible dict; :meth:`from_dict` inverts it exactly."""
        return {
            "tenants": [t.to_dict() for t in self.tenants],
            "mode": self.mode,
            "seed": self.seed,
            "name": self.name,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "WorkloadSpec":
        """Rebuild a workload spec from :meth:`to_dict` output (strict)."""
        data = dict(data)
        fields = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - fields)
        if unknown:
            raise ValueError(f"unknown WorkloadSpec keys: {unknown}")
        data["tenants"] = tuple(
            TenantSpec.from_dict(t) if isinstance(t, Mapping) else t
            for t in data.get("tenants", ())
        )
        return cls(**data)

    @classmethod
    def uniform(
        cls,
        n_tenants: int,
        applications: Sequence[str] = ("montage-small", "buzzflow-small"),
        mode: str = "closed",
        n_instances: int = 1,
        think_time: float = 0.0,
        arrival_rate: Optional[float] = None,
        input_sites: Optional[Sequence[str]] = None,
        ops_per_task: int = 20,
        compute_time: float = 0.5,
        size_scale: float = 1.0,
        seed: int = 0,
        name: str = "uniform",
    ) -> "WorkloadSpec":
        """``n_tenants`` tenants round-robined over ``applications``.

        The standard sweep workload: tenant ``i`` runs
        ``applications[i % len]`` from ``input_sites[i % len]`` (when
        given), all with identical sizing -- contention is the only
        variable.
        """
        if n_tenants <= 0:
            raise ValueError("n_tenants must be positive")
        tenants = tuple(
            TenantSpec(
                name=f"tenant-{i:02d}",
                application=applications[i % len(applications)],
                n_instances=n_instances,
                input_site=(
                    input_sites[i % len(input_sites)]
                    if input_sites
                    else None
                ),
                ops_per_task=ops_per_task,
                compute_time=compute_time,
                size_scale=size_scale,
                think_time=think_time if mode == "closed" else 0.0,
                arrival_rate=arrival_rate if mode == "open" else None,
            )
            for i in range(n_tenants)
        )
        spec = cls(tenants=tenants, mode=mode, seed=seed, name=name)
        spec.validate()
        return spec
