"""Multi-tenant workload execution over one shared deployment.

The workload layer composes the rest of the stack: many tenants submit
streams of workflow instances (closed-loop with think time, or open-loop
Poisson/trace arrivals) against one deployment, one metadata strategy
and one placement policy, with pluggable admission control and
per-tenant fairness accounting.  See ``docs/workloads.md``.
"""

from repro.workload.admission import (
    ADMISSIONS,
    ADMISSION_NAMES,
    AdmissionController,
    MaxInFlightAdmission,
    TokenBucketAdmission,
    UnboundedAdmission,
    make_admission,
)
from repro.workload.generators import (
    WorkflowInstance,
    arrival_offsets,
    generate_instances,
)
from repro.workload.result import InstanceRecord, WorkloadResult, jain_index
from repro.workload.runner import WorkloadRunner
from repro.workload.spec import (
    APPLICATIONS,
    APPLICATION_NAMES,
    TenantSpec,
    WorkloadSpec,
)

__all__ = [
    "ADMISSIONS",
    "ADMISSION_NAMES",
    "APPLICATIONS",
    "APPLICATION_NAMES",
    "AdmissionController",
    "InstanceRecord",
    "MaxInFlightAdmission",
    "TenantSpec",
    "TokenBucketAdmission",
    "UnboundedAdmission",
    "WorkflowInstance",
    "WorkloadResult",
    "WorkloadRunner",
    "WorkloadSpec",
    "arrival_offsets",
    "generate_instances",
    "jain_index",
    "make_admission",
]
