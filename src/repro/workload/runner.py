"""The workload runner: many workflows, one shared deployment.

A :class:`WorkloadRunner` owns one
:class:`~repro.workflow.engine.WorkflowEngine` and drives every workflow
instance of a :class:`~repro.workload.spec.WorkloadSpec` through
``engine.execute()`` *concurrently* -- one environment, one network, one
metadata strategy, one placement policy.  That sharing is the point:

- the placement policy is a single instance, so cluster-scoped state
  (the bandwidth-aware pending-bytes ledger, round-robin cursors) sees
  *all* tenants' placements, while per-run bookkeeping stays
  workflow-scoped because task ids are namespaced per instance;
- per-VM load counters aggregate every tenant's tasks, so policies
  queue-balance against the real cluster load;
- op attribution relies on the engine's run tags (one per ``execute``),
  not list positions, so interleaved runs report exact per-workflow op
  snapshots.

Admission control sits between submission and execution; the wait is
accounted per instance (``queue_wait``) and never consumes RNG.
"""

from __future__ import annotations

from typing import Generator, List, Optional, Union

from repro.sim import AllOf
from repro.cloud.deployment import Deployment
from repro.metadata.strategies.base import MetadataStrategy
from repro.obs import NULL_TRACER
from repro.scheduling import PlacementPolicy, TenantContext
from repro.storage.transfer import TransferService
from repro.workflow.engine import WorkflowEngine
from repro.workload.admission import (
    AdmissionController,
    make_admission,
)
from repro.workload.generators import WorkflowInstance, generate_instances
from repro.workload.result import InstanceRecord, WorkloadResult
from repro.workload.spec import TenantSpec, WorkloadSpec

__all__ = ["WorkloadRunner"]


class WorkloadRunner:
    """Concurrent multi-workflow execution over one shared deployment.

    Parameters
    ----------
    deployment / strategy:
        The shared substrate every tenant contends for.
    scheduler:
        Placement policy name or instance for the shared engine
        (default: the engine's usual resolution -- config, deployment,
        then ``"locality"``).
    admission:
        Admission controller instance, registry name, or ``None`` to
        resolve from the strategy config's ``admission`` knob, then the
        deployment's ``admission`` default, then ``"unbounded"``.
        Name-built controllers pick up their knobs (``max_in_flight``,
        ``token_rate``/``token_burst``) from the strategy config.
    transfer:
        Optional shared :class:`~repro.storage.transfer.TransferService`
        (the engine builds one otherwise).
    elastic_signals:
        Optional :class:`~repro.elastic.controller.ElasticSignals` the
        runner feeds as instances move through submit -> admit ->
        complete (the elastic control plane's workload sensors).  Pure
        bookkeeping; ``None`` costs nothing.
    """

    def __init__(
        self,
        deployment: Deployment,
        strategy: MetadataStrategy,
        scheduler: Optional[Union[str, PlacementPolicy]] = None,
        admission: Optional[Union[str, AdmissionController]] = None,
        transfer: Optional[TransferService] = None,
        elastic_signals=None,
    ):
        self.deployment = deployment
        self.env = deployment.env
        self.strategy = strategy
        self.engine = WorkflowEngine(
            deployment, strategy, transfer=transfer, scheduler=scheduler
        )
        self.admission = self._resolve_admission(admission)
        self.elastic_signals = elastic_signals
        # Observability: instance arrival/admission/completion under
        # "workload", with an admission-wait histogram.  ("reject" is
        # reserved in the taxonomy; no controller drops work today.)
        tr = getattr(self.env, "tracer", None) or NULL_TRACER
        self._tracer = tr
        self._trace_wl = tr.enabled and tr.wants("workload")
        self._h_admit = (
            tr.metrics.histogram("workload.admission_wait_s")
            if self._trace_wl
            else None
        )
        self._in_flight = 0
        self._peak_in_flight = 0
        # run() call counter: sequential specs on one runner get their
        # instances re-namespaced per epoch, so neither file/task keys
        # nor op-run tags ever collide with an earlier spec's.
        self._epoch = 0

    def _resolve_admission(
        self, admission: Optional[Union[str, AdmissionController]]
    ) -> AdmissionController:
        config = getattr(self.strategy, "config", None)
        if admission is None:
            admission = getattr(config, "admission", None)
        if admission is None:
            admission = getattr(self.deployment, "admission", None)
        if admission is None:
            admission = "unbounded"
        if isinstance(admission, AdmissionController):
            return admission
        knobs = {}
        if admission == "max_in_flight":
            limit = getattr(config, "max_in_flight", None)
            if limit is not None:
                knobs["limit"] = limit
        elif admission == "token_bucket":
            rate = getattr(config, "token_rate", None)
            if rate is not None:
                knobs["rate"] = rate
            knobs["burst"] = getattr(config, "token_burst", 1) or 1
        return make_admission(admission, self.env, **knobs)

    # -- public API --------------------------------------------------------

    def run(self, spec: WorkloadSpec) -> WorkloadResult:
        """Execute the whole workload; returns its result.

        Drives the deployment's environment until every tenant's last
        instance completes.  One runner may execute several specs
        sequentially: each ``run`` call is an *epoch*, and repeat
        epochs re-namespace their instances (``r<epoch>/...``) so a
        later spec never reuses an earlier one's file/task keys or
        op-run tags -- metrics windows never overlap and attribution
        stays exact.
        """
        spec.validate()
        self._epoch += 1
        plan = generate_instances(spec)
        records: List[InstanceRecord] = []
        ops_before = len(self.strategy.stats)
        wan_before = self.engine.transfer.wan_bytes
        self._peak_in_flight = 0
        started = self.env.now

        procs = []
        for tenant in spec.tenants:
            instances = plan[tenant.name]
            if spec.mode == "closed":
                procs.append(
                    self.env.process(
                        self._closed_loop(tenant, instances, records),
                        name=f"tenant-{tenant.name}",
                    )
                )
            else:
                procs.extend(
                    self.env.process(
                        self._open_arrival(
                            tenant, inst, started, records
                        ),
                        name=f"workload-{inst.namespace}",
                    )
                    for inst in instances
                )
        self.env.run(until=AllOf(self.env, procs))

        return WorkloadResult(
            name=spec.name,
            strategy=self.strategy.name,
            scheduler=self.engine.policy.name,
            admission=self.admission.name,
            mode=spec.mode,
            records=sorted(
                records, key=lambda r: (r.submitted_at, r.run)
            ),
            started_at=started,
            finished_at=self.env.now,
            peak_in_flight=self._peak_in_flight,
            admission_bound=self.admission.bound,
            total_ops=len(self.strategy.stats) - ops_before,
            wan_bytes=self.engine.transfer.wan_bytes - wan_before,
        )

    # -- tenant processes --------------------------------------------------

    def _closed_loop(
        self,
        tenant: TenantSpec,
        instances: List[WorkflowInstance],
        records: List[InstanceRecord],
    ) -> Generator:
        """One workflow in flight per tenant, think time between them."""
        for i, inst in enumerate(instances):
            yield from self._submit(tenant, inst, records)
            if tenant.think_time > 0 and i + 1 < len(instances):
                yield self.env.timeout(tenant.think_time)

    def _open_arrival(
        self,
        tenant: TenantSpec,
        inst: WorkflowInstance,
        started: float,
        records: List[InstanceRecord],
    ) -> Generator:
        """Submit one instance at its precomputed arrival offset."""
        at = started + (inst.arrival_offset or 0.0)
        if at > self.env.now:
            yield self.env.timeout(at - self.env.now)
        yield from self._submit(tenant, inst, records)

    def _submit(
        self,
        tenant: TenantSpec,
        inst: WorkflowInstance,
        records: List[InstanceRecord],
    ) -> Generator:
        workflow, run_tag = inst.workflow, inst.namespace
        if self._epoch > 1:
            # Repeat epoch on a deployment that already saw these keys:
            # push the whole instance under a fresh prefix.
            workflow = workflow.namespaced(f"r{self._epoch}")
            run_tag = f"r{self._epoch}/{inst.namespace}"
        submitted = self.env.now
        signals = self.elastic_signals
        if self._trace_wl:
            self._tracer.emit(
                "workload", "submit", tenant=tenant.name, run=run_tag
            )
        if signals is not None:
            signals.on_submit(run_tag, tenant.name, submitted)
        token = yield from self.admission.admit(tenant.name)
        admitted = self.env.now
        if signals is not None:
            signals.on_admit()
        if self._trace_wl:
            wait = admitted - submitted
            self._tracer.emit(
                "workload", "admit",
                tenant=tenant.name, run=run_tag,
                wait=wait, in_flight=self._in_flight + 1,
            )
            self._h_admit.add(wait)
        self._in_flight += 1
        self._peak_in_flight = max(self._peak_in_flight, self._in_flight)
        try:
            result = yield from self.engine.execute(
                workflow,
                input_site=inst.input_site,
                run=run_tag,
                tenant=TenantContext(
                    name=tenant.name, quota=self.admission.bound
                ),
            )
        finally:
            self._in_flight -= 1
            self.admission.release(token)
            if signals is not None:
                signals.on_complete(run_tag, self.env.now)
        if self._trace_wl:
            self._tracer.emit(
                "workload", "complete",
                tenant=tenant.name, run=run_tag,
                makespan=result.makespan,
            )
        records.append(
            InstanceRecord(
                tenant=tenant.name,
                application=inst.application,
                run=run_tag,
                submitted_at=submitted,
                admitted_at=admitted,
                finished_at=self.env.now,
                result=result,
            )
        )

    def __repr__(self) -> str:
        return (
            f"<WorkloadRunner {self.strategy.name}/"
            f"{self.engine.policy.name}/{self.admission.name}>"
        )
