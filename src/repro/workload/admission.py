"""Admission control for multi-tenant workload execution.

An :class:`AdmissionController` decides *when* a submitted workflow may
start executing on the shared deployment; time spent between submission
and admission is the queue wait the workload metrics report.  Three
policies ship:

``unbounded``
    Admit immediately -- the pure open-loop stress mode; concurrency is
    whatever the arrival process produces.
``max_in_flight``
    A global semaphore of ``limit`` concurrent workflows, FIFO.  The
    classic cluster-gateway policy: bounds metadata/WAN contention at
    the cost of queueing delay.
``token_bucket``
    Per-tenant rate limiting via the GCRA (virtual-scheduling) form of
    a token bucket: each tenant may burst ``burst`` workflows, then is
    paced at ``rate`` admissions/second.  Protects tenants from each
    other rather than the cluster from everyone.

All policies are deterministic and RNG-free: admission order depends
only on submission order and timing.  ``admit`` is a simulation process
(``yield from`` it); it returns an opaque token to hand back to
``release`` when the workflow finishes.
"""

from __future__ import annotations

from typing import Dict, Generator, Optional

from repro.sim import Environment
from repro.sim.resources import Resource

__all__ = [
    "ADMISSIONS",
    "ADMISSION_NAMES",
    "AdmissionController",
    "MaxInFlightAdmission",
    "TokenBucketAdmission",
    "UnboundedAdmission",
    "make_admission",
]


class AdmissionController:
    """Abstract admission policy (see module docstring for contract)."""

    #: Registry name (set by concrete policies).
    name: str = "abstract"

    def __init__(self, env: Environment):
        self.env = env
        #: Completed admissions (diagnostics).
        self.admitted = 0

    @property
    def bound(self) -> Optional[int]:
        """Hard cap on concurrent in-flight workflows (None: unbounded)."""
        return None

    def admit(self, tenant: str) -> Generator:
        """Process: yield until ``tenant`` may start one workflow.

        Returns an opaque token for :meth:`release`.
        """
        raise NotImplementedError

    def release(self, token) -> None:
        """Hand back a slot acquired by :meth:`admit` (no-op default)."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class UnboundedAdmission(AdmissionController):
    """Admit every submission immediately (no cap, no pacing)."""

    name = "unbounded"

    def admit(self, tenant: str) -> Generator:
        self.admitted += 1
        return None
        yield  # pragma: no cover - makes this a generator


class MaxInFlightAdmission(AdmissionController):
    """Global FIFO semaphore: at most ``limit`` workflows in flight."""

    name = "max_in_flight"

    def __init__(self, env: Environment, limit: int = 4):
        super().__init__(env)
        if limit <= 0:
            raise ValueError("max_in_flight limit must be positive")
        self._slots = Resource(env, capacity=limit)

    @property
    def bound(self) -> Optional[int]:
        return self._slots.capacity

    @property
    def in_flight(self) -> int:
        return self._slots.count

    def admit(self, tenant: str) -> Generator:
        request = self._slots.request()
        yield request
        self.admitted += 1
        return request

    def release(self, token) -> None:
        if token is not None:
            self._slots.release(token)


class TokenBucketAdmission(AdmissionController):
    """Per-tenant token bucket (GCRA virtual scheduling), FIFO per tenant.

    Each tenant owns an independent bucket of capacity ``burst`` tokens
    refilled at ``rate`` tokens/second; one admission costs one token.
    The implementation reserves the admission instant *before* waiting
    (the GCRA theoretical-arrival-time update), so simultaneous
    submissions from one tenant chain deterministically instead of all
    seeing the same bucket level.
    """

    name = "token_bucket"

    def __init__(
        self, env: Environment, rate: float = 1.0, burst: int = 1
    ):
        super().__init__(env)
        if rate <= 0:
            raise ValueError("token rate must be positive")
        if burst < 1:
            raise ValueError("token burst must be >= 1")
        self.rate = float(rate)
        self.burst = int(burst)
        #: Tenant -> theoretical arrival time of its next admission.
        self._tat: Dict[str, float] = {}

    def admit(self, tenant: str) -> Generator:
        period = 1.0 / self.rate
        tolerance = (self.burst - 1) * period
        now = self.env.now
        tat = self._tat.get(tenant, float("-inf"))
        admit_at = max(now, tat - tolerance)
        self._tat[tenant] = max(tat, admit_at) + period
        if admit_at > now:
            yield self.env.timeout(admit_at - now)
        self.admitted += 1
        return None


#: name -> controller class.  Knobs: ``max_in_flight`` takes ``limit``,
#: ``token_bucket`` takes ``rate`` and ``burst``.
ADMISSIONS = {
    UnboundedAdmission.name: UnboundedAdmission,
    MaxInFlightAdmission.name: MaxInFlightAdmission,
    TokenBucketAdmission.name: TokenBucketAdmission,
}

#: Recognized values of the ``admission`` switch, in a stable order.
ADMISSION_NAMES = ("unbounded", "max_in_flight", "token_bucket")


def make_admission(
    name: str, env: Environment, **knobs
) -> AdmissionController:
    """Build an admission controller by registry name.

    ``knobs`` go to the controller's constructor; a knob the policy does
    not accept raises ``TypeError`` (the config/CLI layer's
    ``from_workload_args`` gives friendlier errors).
    """
    try:
        factory = ADMISSIONS[name]
    except KeyError:
        raise ValueError(
            f"unknown admission policy {name!r}; expected one of "
            f"{ADMISSION_NAMES}"
        ) from None
    return factory(env, **knobs)
