"""Deterministic workflow-instance generation from a workload spec.

The generator is the bridge between a declarative
:class:`~repro.workload.spec.WorkloadSpec` and the runnable plan the
:class:`~repro.workload.runner.WorkloadRunner` drives: one
:class:`WorkflowInstance` per submission, carrying the namespaced DAG,
the tenant's data origin and -- in open-loop mode -- the precomputed
arrival offset.

Determinism contract (property-tested in ``tests/workload``): the same
spec and seed produce the same arrival times, the same
tenant -> application assignment and, downstream, bit-for-bit identical
:class:`~repro.workload.result.WorkloadResult` metrics.  Arrival draws
use one named RNG stream *per tenant* (``workload/<tenant>``), so adding
a tenant never shifts another tenant's arrivals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.util.rng import RngStreams
from repro.workload.spec import TenantSpec, WorkloadSpec
from repro.workflow.dag import Workflow

__all__ = ["WorkflowInstance", "arrival_offsets", "generate_instances"]


@dataclass(frozen=True)
class WorkflowInstance:
    """One planned workflow submission."""

    tenant: str
    application: str
    index: int
    #: Run tag and key namespace (``tenant/index``): prefixes every
    #: file/task key and tags every op record of this instance.
    namespace: str
    #: The namespaced DAG to execute.
    workflow: Workflow
    #: Input staging site (``None``: engine default).
    input_site: Optional[str]
    #: Seconds from workload start to arrival (open-loop); ``None`` in
    #: closed-loop mode, where the tenant's completion drives the next
    #: submission.
    arrival_offset: Optional[float] = None


def arrival_offsets(
    tenant: TenantSpec, mode: str, rng: np.random.Generator
) -> List[Optional[float]]:
    """Per-instance arrival offsets for one tenant.

    Closed-loop: all ``None`` (completion-driven).  Open-loop: the
    explicit trace when given, otherwise the cumulative sum of
    exponential inter-arrival gaps at ``arrival_rate`` -- a Poisson
    process drawn from the tenant's own RNG stream.
    """
    if mode == "closed":
        return [None] * tenant.n_instances
    if tenant.arrival_times is not None:
        return [float(t) for t in sorted(tenant.arrival_times)]
    gaps = rng.exponential(
        scale=1.0 / tenant.arrival_rate, size=tenant.n_instances
    )
    return [float(t) for t in np.cumsum(gaps)]


def generate_instances(
    spec: WorkloadSpec,
) -> Dict[str, List[WorkflowInstance]]:
    """The full submission plan: tenant name -> ordered instances.

    Workflows are built (and namespaced) eagerly so the plan is
    inspectable before anything runs; building touches no RNG, so plan
    construction itself never perturbs simulation streams.
    """
    spec.validate()
    streams = RngStreams(seed=spec.seed)
    plan: Dict[str, List[WorkflowInstance]] = {}
    for tenant in spec.tenants:
        offsets = arrival_offsets(
            tenant, spec.mode, streams.get(f"workload/{tenant.name}")
        )
        plan[tenant.name] = [
            WorkflowInstance(
                tenant=tenant.name,
                application=tenant.application,
                index=i,
                namespace=f"{tenant.name}/{i}",
                workflow=tenant.build_workflow(i),
                input_site=tenant.input_site,
                arrival_offset=offset,
            )
            for i, offset in enumerate(offsets)
        ]
    return plan
