"""Pluggable multi-site task scheduling.

Turns the workflow engine's placement step into a swappable
:class:`PlacementPolicy`: five concrete policies (``round_robin``,
``locality`` -- the bit-for-bit-compatible default -- ``load_balanced``,
``bandwidth_aware`` and ``hybrid``) observe the cluster through a
:class:`ClusterView` and are selected by name via
:func:`make_scheduler`, ``Deployment(scheduler=...)``,
``MetadataConfig.scheduler`` or the ``--scheduler`` CLI flag.

See ``docs/scheduling.md`` for policy semantics, knobs and guidance.
"""

from repro.scheduling.base import ClusterView, PlacementPolicy, TenantContext
from repro.scheduling.policies import (
    BandwidthAwarePolicy,
    HybridPolicy,
    LoadBalancedPolicy,
    LocalityPolicy,
    RoundRobinPolicy,
    SCHEDULERS,
    SCHEDULER_NAMES,
    make_scheduler,
)

__all__ = [
    "BandwidthAwarePolicy",
    "ClusterView",
    "HybridPolicy",
    "LoadBalancedPolicy",
    "LocalityPolicy",
    "PlacementPolicy",
    "RoundRobinPolicy",
    "SCHEDULERS",
    "SCHEDULER_NAMES",
    "TenantContext",
    "make_scheduler",
]
