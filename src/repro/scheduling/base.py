"""Scheduler interface: the placement contract and the cluster view.

The paper's engine scheduler (Section III-D) "takes care to schedule the
task close to the data production nodes".  This package turns that one
hard-coded heuristic into a first-class, swappable axis of the
experiment space: a :class:`PlacementPolicy` decides, for every ready
task, which worker VM runs it, and the workflow engine delegates all
placement to the injected policy -- the same way
``bandwidth_model="slots"|"fair"`` made WAN sharing swappable at the
network layer.

A policy sees the cluster through a :class:`ClusterView`: the deployment
fleet, live per-VM queue depths, the topology's link parameters, the
network's load-aware transfer-time estimator and the storage layer's
file locations.  Everything a policy may consult is deterministic and
RNG-free, so placement never perturbs the simulation's random streams --
two runs with the same seed and policy place identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

if TYPE_CHECKING:  # typing only: keep the package import-cycle free
    from repro.cloud.deployment import Deployment
    from repro.cloud.vm import VirtualMachine
    from repro.storage.transfer import TransferService
    from repro.workflow.dag import Task, Workflow

__all__ = ["ClusterView", "PlacementPolicy", "TenantContext"]


@dataclass(frozen=True)
class TenantContext:
    """Identity of the tenant whose task is being placed.

    ``quota`` is the tenant's admission share where one exists (the
    token-bucket refill rate, or the in-flight cap under semaphore
    admission); ``None`` means uncapped.  Single-workflow runs have no
    tenant, so policies must tolerate ``cluster.placing_tenant is None``.
    """

    name: str
    quota: Optional[float] = None


class ClusterView:
    """What a placement policy is allowed to observe.

    Wraps the deployment (fleet, topology, network) plus the engine's
    live per-VM pending-task counters and the transfer service (for the
    data-side ground truth of where file replicas live).  The view is
    shared between the engine and its policy: load counters mutate as
    tasks start and finish, so concurrent ready tasks placed in sequence
    each see the placements made just before them.
    """

    def __init__(
        self,
        deployment: "Deployment",
        transfer: "TransferService",
        vm_load: Dict[str, int],
    ):
        self.deployment = deployment
        self.transfer = transfer
        #: VM name -> number of tasks currently assigned (running or
        #: staging inputs).  Owned by the engine; policies read it.
        self.vm_load = vm_load
        #: Tenant whose task is being placed *right now*; set by the
        #: engine around each ``place()`` call on the workload surface,
        #: ``None`` on single-workflow runs.
        self.placing_tenant: Optional[TenantContext] = None
        #: Tenant name -> tasks currently in flight (placed, not yet
        #: complete).  Owned by the engine; policies and elasticity
        #: controllers read it for per-tenant backlog visibility.
        self.tenant_load: Dict[str, int] = {}

    # -- fleet -----------------------------------------------------------

    @property
    def env(self):
        return self.deployment.env

    @property
    def network(self):
        return self.deployment.network

    @property
    def topology(self):
        return self.deployment.topology

    @property
    def sites(self) -> List[str]:
        return self.deployment.sites

    @property
    def workers(self) -> List["VirtualMachine"]:
        return self.deployment.workers

    def workers_at(self, site: str) -> List["VirtualMachine"]:
        return self.deployment.workers_at(site)

    # -- load ------------------------------------------------------------

    def load_of(self, vm: "VirtualMachine") -> int:
        return self.vm_load[vm.name]

    def site_load(self, site: str) -> int:
        """Total queued/running tasks across the site's workers."""
        return sum(
            self.vm_load[vm.name] for vm in self.deployment.workers_at(site)
        )

    def idle_vms(self, site: str) -> List["VirtualMachine"]:
        """Workers at ``site`` with no task assigned, name-sorted."""
        return sorted(
            (
                vm
                for vm in self.deployment.workers_at(site)
                if self.vm_load[vm.name] == 0
            ),
            key=lambda vm: vm.name,
        )

    def least_loaded_vm(self, site: str) -> "VirtualMachine":
        """The least-loaded worker at ``site`` (fleet-wide fallback when
        the site hosts none -- tiny deployments), ties broken by name."""
        vms = self.deployment.workers_at(site)
        if not vms:
            vms = self.deployment.workers
        return min(vms, key=lambda vm: (self.vm_load[vm.name], vm.name))

    # -- data ------------------------------------------------------------

    def locations_of(self, file_name: str) -> List[str]:
        """Sites currently holding a replica of ``file_name``."""
        return self.transfer.locations_of(file_name)

    def estimated_transfer_time(
        self, src: str, dst: str, size: int, weight: Optional[float] = None
    ) -> float:
        """Predicted delivery time of ``size`` bytes given current load.

        Under the fair bandwidth model this reflects the share a new
        flow would get *right now* (water-filling with a probe flow, via
        :meth:`FlowNetwork.estimate_rate
        <repro.cloud.flow.FlowNetwork.estimate_rate>`); under the slot
        model it falls back to the static ``latency + size/bandwidth``
        figure.  Jitter-free and RNG-pure either way.  ``weight``
        defaults to the transfer service's bulk-flow weight -- the one
        the engine's fetches will actually ride at.
        """
        if weight is None:
            weight = self.transfer.default_weight
        return self.network.estimated_transfer_time(
            src, dst, size, weight=weight
        )


class PlacementPolicy:
    """Abstract task-placement policy.

    Subclasses implement :meth:`place`; the lifecycle hooks are optional
    and default to no-ops.  Policies may keep internal state (cursors,
    pending-transfer backlogs) but must stay deterministic and RNG-free:
    equal histories must yield equal placements.
    """

    #: Registry name (set by concrete policies).
    name: str = "abstract"

    def place(
        self,
        task: "Task",
        workflow: "Workflow",
        parent_sites: List[str],
        cluster: ClusterView,
    ) -> "VirtualMachine":
        """Pick the worker VM for a ready ``task``.

        ``parent_sites`` are the sites where the task's parents ran,
        index-aligned with ``workflow.parents(task)`` (empty for root
        tasks).  Must return a VM from ``cluster.workers``.
        """
        raise NotImplementedError

    def on_task_placed(
        self,
        task: "Task",
        vm: "VirtualMachine",
        cluster: ClusterView,
    ) -> None:
        """Called right after ``task`` was assigned to ``vm``."""

    def on_inputs_staged(
        self,
        task: "Task",
        vm: "VirtualMachine",
        cluster: ClusterView,
    ) -> None:
        """Called once ``task``'s inputs are materialized at ``vm``'s
        site, before its compute phase."""

    def on_task_complete(
        self,
        task: "Task",
        vm: "VirtualMachine",
        cluster: ClusterView,
    ) -> None:
        """Called when ``task`` finished on ``vm`` (even on failure)."""

    # -- shared helpers ---------------------------------------------------

    @staticmethod
    def input_bytes_by_site(
        task: "Task",
        workflow: "Workflow",
        parent_sites: List[str],
    ) -> Dict[str, float]:
        """Input bytes produced per parent site (the locality weight).

        Mirrors the original engine heuristic: each parent contributes
        the total size of its outputs (floored at one byte, so zero-byte
        producers still vote) to the site it ran at.
        """
        weight: Dict[str, float] = {}
        parents = workflow.parents(task)
        for p, site in zip(parents, parent_sites):
            produced = sum(f.size for f in p.outputs) or 1
            weight[site] = weight.get(site, 0.0) + produced
        return weight

    @staticmethod
    def _source_like_storage(
        sources: List[str], size: int, site: str, cluster: ClusterView
    ) -> str:
        """The replica the storage layer's fetch would pick right now.

        Mirrors ``TransferService._pick_source``: load-aware estimated
        delivery time under the fair bandwidth model, static min-latency
        under slots (where every transfer gets the full link bandwidth,
        so proximity is the whole story).  ``sources`` must be sorted
        for a deterministic tie-break.
        """
        if cluster.network.bandwidth_model == "fair":
            return min(
                sources,
                key=lambda src: cluster.estimated_transfer_time(
                    src, site, size
                ),
            )
        return min(
            sources, key=lambda src: cluster.topology.latency(src, site)
        )

    @classmethod
    def staging_time(
        cls,
        task: "Task",
        site: str,
        cluster: ClusterView,
        pending: Optional[Dict[tuple, float]] = None,
        pending_penalty: float = 1.0,
    ) -> float:
        """Predicted seconds to stage ``task``'s inputs at ``site``.

        For each input the replica source is chosen the way the storage
        layer's fetch will choose it (:meth:`_source_like_storage`), and
        the cost is the estimated delivery time from that source at the
        transfer service's flow weight.  ``pending`` optionally maps a
        directed ``(src, dst)`` site pair to bytes already *committed*
        to that pair by this policy's own recent placements whose
        transfers have not finished staging yet -- scaled by
        ``pending_penalty`` and added to the probe size, so a burst of
        simultaneous placements does not stampede one link before the
        flow network can see any congestion.
        """
        total = 0.0
        for f in task.inputs:
            sources = sorted(cluster.locations_of(f.name))
            if not sources or site in sources:
                continue
            src = cls._source_like_storage(sources, f.size, site, cluster)
            total += cluster.estimated_transfer_time(
                src,
                site,
                f.size
                + (
                    pending_penalty * pending.get((src, site), 0.0)
                    if pending
                    else 0.0
                ),
            )
        return total

    @classmethod
    def best_source(
        cls, file_name: str, size: int, site: str, cluster: ClusterView
    ) -> Optional[str]:
        """The replica site a fetch to ``site`` would most likely use."""
        sources = sorted(cluster.locations_of(file_name))
        if not sources or site in sources:
            return None
        return cls._source_like_storage(sources, size, site, cluster)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"
