"""The concrete placement policies.

Five policies ship with the subsystem, spanning the design space the
multi-site workflow literature argues over:

``round_robin``
    Fleet-wide rotation, blind to data and load.  The baseline every
    locality argument is made against (and the engine's historical
    behaviour for root tasks / with locality disabled).
``locality``
    The paper's Section III-D heuristic, extracted verbatim from the
    engine: run where the most input bytes were produced, spill
    nearest-first when the home site's workers are all busy.  The
    default -- it reproduces the seed experiments bit-for-bit.
``load_balanced``
    Global least-loaded worker, ties broken toward the data (then VM
    name).  Maximizes parallelism; ignores link quality.
``bandwidth_aware``
    Scores every candidate site by the *predicted time to stage the
    task's inputs there* under current congestion -- the fair bandwidth
    model's :meth:`FlowNetwork.estimate_rate
    <repro.cloud.flow.FlowNetwork.estimate_rate>` water-filling probe --
    falling back to the static ``latency + size/bandwidth`` figure under
    the slot model.  A queue term folds in waiting time, and a
    pending-bytes ledger (fed by the placement hooks) stops a burst of
    simultaneous placements from stampeding one fast link before its
    flows open.
``hybrid``
    Locality weighed against queue depth and predicted transfer time
    with tunable coefficients; with the transfer term zeroed it leans
    locality, with the locality term zeroed it approaches
    bandwidth-aware.

All policies are deterministic and RNG-free; see
``docs/scheduling.md`` for knobs and guidance on when each wins.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.scheduling.base import ClusterView, PlacementPolicy

__all__ = [
    "BandwidthAwarePolicy",
    "HybridPolicy",
    "LoadBalancedPolicy",
    "LocalityPolicy",
    "RoundRobinPolicy",
    "SCHEDULERS",
    "SCHEDULER_NAMES",
    "make_scheduler",
]


class RoundRobinPolicy(PlacementPolicy):
    """Rotate over the whole fleet in VM order, ignoring data and load."""

    name = "round_robin"

    def __init__(self):
        self._cursor = 0

    def place(self, task, workflow, parent_sites, cluster):
        vm = cluster.workers[self._cursor % len(cluster.workers)]
        self._cursor += 1
        return vm


class LocalityPolicy(PlacementPolicy):
    """The paper's data-locality heuristic (the historical default).

    Prefer the site where the most input bytes were produced, but
    *spill* to other sites (nearest first) when every VM there is
    already busy -- locality must not serialize a wide parallel stage
    onto one site's workers.  Root tasks round-robin across the fleet.
    This is a verbatim extraction of the engine's original ``_place``;
    it reproduces the seed experiments bit-for-bit.
    """

    name = "locality"

    def __init__(self):
        self._rr_cursor = 0

    def place(self, task, workflow, parent_sites, cluster):
        if parent_sites:
            weight = self.input_bytes_by_site(task, workflow, parent_sites)
            home = max(weight.items(), key=lambda kv: kv[1])[0]
            # Candidate order: data weight desc, then proximity to the
            # data-heavy site, so spilled tasks stay cheap to feed.
            candidates = sorted(
                cluster.sites,
                key=lambda s: (
                    -weight.get(s, 0.0),
                    cluster.topology.latency(home, s),
                ),
            )
            for site in candidates:
                idle = cluster.idle_vms(site)
                if idle:
                    return idle[0]
            # Everyone is busy: queue behind the least-loaded site,
            # biased toward locality via candidate order.
            site = min(
                (s for s in candidates if cluster.workers_at(s)),
                key=lambda s: cluster.site_load(s)
                / len(cluster.workers_at(s)),
            )
            return cluster.least_loaded_vm(site)
        vm = cluster.workers[self._rr_cursor % len(cluster.workers)]
        self._rr_cursor += 1
        return vm


class LoadBalancedPolicy(PlacementPolicy):
    """Global least-loaded worker, ties broken toward the data."""

    name = "load_balanced"

    def place(self, task, workflow, parent_sites, cluster):
        weight = self.input_bytes_by_site(task, workflow, parent_sites)
        return min(
            cluster.workers,
            key=lambda vm: (
                cluster.load_of(vm),
                -weight.get(vm.site, 0.0),
                vm.name,
            ),
        )


class BandwidthAwarePolicy(PlacementPolicy):
    """Place where the task's inputs arrive (and its turn comes) soonest.

    Every site hosting workers is scored with::

        score = staging + (site_load / n_workers) * (compute + staging)

    where ``staging`` is the predicted seconds to move the task's inputs
    to the site from their best replicas *given current congestion*
    (fair model: a water-filling probe via ``FlowNetwork.estimate_rate``
    that sees every active flow and all site egress/ingress caps; slot
    model: the static per-link figure) and the second term approximates
    queueing delay -- each task already queued at the site is assumed to
    cost about what this one will.  The lowest-scoring site wins; within
    it, an idle VM (name order) or the least-loaded one.

    ``pending_penalty`` scales a ledger of input bytes committed by this
    policy's own recent placements whose transfers have not *finished
    staging* yet (claimed in ``on_task_placed``, released in
    ``on_inputs_staged``; per directed site pair).  A simultaneous
    fan-out is placed in one simulation instant -- before any flow
    opens -- so without the ledger every task would see the same
    uncongested estimate and stampede the fastest link.  ``0`` disables
    the ledger; values above 1 make the policy more spread-happy.
    """

    name = "bandwidth_aware"

    def __init__(self, pending_penalty: float = 1.0):
        if pending_penalty < 0:
            raise ValueError("pending_penalty must be >= 0")
        self.pending_penalty = float(pending_penalty)
        #: (src site, dst site) -> bytes committed but not yet complete.
        self._pending: Dict[Tuple[str, str], float] = {}
        #: task_id -> the ledger claims to release on completion.
        self._claims: Dict[str, List[Tuple[Tuple[str, str], int]]] = {}

    def _score(self, task, site, cluster: ClusterView) -> float:
        staging = self.staging_time(
            task, site, cluster, self._pending, self.pending_penalty
        )
        per_worker = cluster.site_load(site) / len(cluster.workers_at(site))
        return staging + per_worker * (task.compute_time + staging)

    def place(self, task, workflow, parent_sites, cluster):
        site = min(
            (s for s in cluster.sites if cluster.workers_at(s)),
            key=lambda s: (self._score(task, s, cluster), s),
        )
        idle = cluster.idle_vms(site)
        return idle[0] if idle else cluster.least_loaded_vm(site)

    def on_task_placed(self, task, vm, cluster):
        claims: List[Tuple[Tuple[str, str], int]] = []
        for f in task.inputs:
            src = self.best_source(f.name, f.size, vm.site, cluster)
            if src is None:
                continue
            pair = (src, vm.site)
            self._pending[pair] = self._pending.get(pair, 0.0) + f.size
            claims.append((pair, f.size))
        if claims:
            self._claims[task.task_id] = claims

    def _release_claims(self, task):
        for pair, size in self._claims.pop(task.task_id, ()):
            remaining = self._pending.get(pair, 0.0) - size
            if remaining > 0:
                self._pending[pair] = remaining
            else:
                self._pending.pop(pair, None)

    def on_inputs_staged(self, task, vm, cluster):
        # The transfers are done (or were local): real flows have come
        # and gone, so the ledger's pessimism is no longer needed.
        self._release_claims(task)

    def on_task_complete(self, task, vm, cluster):
        # Normally a no-op (claims released at staging time); covers
        # tasks whose staging failed mid-flight.
        self._release_claims(task)


class HybridPolicy(BandwidthAwarePolicy):
    """Locality weighed against queue depth and predicted transfer time.

    Scores every site hosting workers with three tunable terms::

        score = transfer_weight * staging
              + load_weight     * (site_load / n_workers) * (compute + staging)
              + locality_weight * remote_fraction * round_trip(home, site)

    ``staging`` and the queue term are exactly the bandwidth-aware
    policy's (including its pending-bytes ledger); the locality term
    charges sites holding few of the task's input bytes a metadata-
    affinity penalty proportional to the round trip to the data-heavy
    *home* site -- a proxy for the cross-site registry chatter
    (scratch-entry reads against parent keys) that made the paper
    schedule "close to the data production nodes".  Root tasks have no
    home, so only the first two terms act.

    With ``transfer_weight=0, load_weight=0`` the policy collapses to
    pure data affinity; with ``locality_weight=0`` it is bandwidth-aware
    placement.  The defaults (1, 1, 1) favor the transfer/queue terms on
    bulky workflows and the locality term on chatty small-file ones.
    """

    name = "hybrid"

    def __init__(
        self,
        locality_weight: float = 1.0,
        load_weight: float = 1.0,
        transfer_weight: float = 1.0,
        pending_penalty: float = 1.0,
    ):
        super().__init__(pending_penalty=pending_penalty)
        for label, w in (
            ("locality_weight", locality_weight),
            ("load_weight", load_weight),
            ("transfer_weight", transfer_weight),
        ):
            if w < 0:
                raise ValueError(f"{label} must be >= 0")
        self.locality_weight = float(locality_weight)
        self.load_weight = float(load_weight)
        self.transfer_weight = float(transfer_weight)

    def place(self, task, workflow, parent_sites, cluster):
        weight = self.input_bytes_by_site(task, workflow, parent_sites)
        total = sum(weight.values())
        home = (
            max(weight.items(), key=lambda kv: kv[1])[0] if weight else None
        )

        def score(site: str) -> float:
            staging = self.staging_time(
                task, site, cluster, self._pending, self.pending_penalty
            )
            per_worker = cluster.site_load(site) / len(
                cluster.workers_at(site)
            )
            s = self.transfer_weight * staging
            s += self.load_weight * per_worker * (
                task.compute_time + staging
            )
            if home is not None and total > 0:
                remote_fraction = 1.0 - weight.get(site, 0.0) / total
                s += (
                    self.locality_weight
                    * remote_fraction
                    * cluster.network.round_trip(home, site)
                )
            return s

        site = min(
            (s for s in cluster.sites if cluster.workers_at(s)),
            key=lambda s: (score(s), s),
        )
        idle = cluster.idle_vms(site)
        return idle[0] if idle else cluster.least_loaded_vm(site)


#: name -> policy factory.  Factories accept the policy's knobs as
#: keyword arguments and return a fresh, stateless-history instance.
SCHEDULERS = {
    RoundRobinPolicy.name: RoundRobinPolicy,
    LocalityPolicy.name: LocalityPolicy,
    LoadBalancedPolicy.name: LoadBalancedPolicy,
    BandwidthAwarePolicy.name: BandwidthAwarePolicy,
    HybridPolicy.name: HybridPolicy,
}

#: Recognized values of the ``scheduler`` switch, in a stable order.
SCHEDULER_NAMES = (
    "locality",
    "round_robin",
    "load_balanced",
    "bandwidth_aware",
    "hybrid",
)


def make_scheduler(name: str, **knobs) -> PlacementPolicy:
    """Build a placement policy by registry name.

    ``knobs`` are passed to the policy's constructor; passing a knob the
    policy does not accept raises ``TypeError`` (use the config/CLI
    layer's validation for friendlier errors).
    """
    try:
        factory = SCHEDULERS[name]
    except KeyError:
        raise ValueError(
            f"unknown scheduler {name!r}; expected one of {SCHEDULER_NAMES}"
        ) from None
    return factory(**knobs)
