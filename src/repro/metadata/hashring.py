"""DHT-style placement: which site owns a metadata key.

Two partitioners are provided:

- :class:`ModuloPartitioner` -- the textbook ``hash(key) % n_sites``
  scheme.  Simple and perfectly uniform, but re-maps nearly every key
  when a site joins or leaves.
- :class:`ConsistentHashRing` -- consistent hashing with virtual nodes.
  This is the scheme the repository uses by default: the paper's
  Section VIII explicitly calls out metadata-server *volatility* (elastic
  clouds adding/removing nodes) as the failure mode of naive hashing,
  and consistent hashing bounds migration to ~1/n of keys.

Hashes are computed with BLAKE2b (stable across processes and Python
versions, unlike the built-in ``hash``) so experiment placement is fully
deterministic.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Sequence, Tuple

__all__ = ["ConsistentHashRing", "ModuloPartitioner", "stable_hash"]


def stable_hash(value: str, salt: str = "") -> int:
    """A deterministic 64-bit hash of a string."""
    h = hashlib.blake2b(
        value.encode("utf-8"), digest_size=8, salt=salt.encode()[:16] or b""
    )
    return int.from_bytes(h.digest(), "big")


class ModuloPartitioner:
    """``hash(key) % n`` placement over a fixed, ordered site list."""

    def __init__(self, sites: Sequence[str]):
        if not sites:
            raise ValueError("need at least one site")
        if len(set(sites)) != len(sites):
            raise ValueError("duplicate sites")
        self.sites: Tuple[str, ...] = tuple(sites)

    def site_for(self, key: str) -> str:
        """The site responsible for ``key``."""
        return self.sites[stable_hash(key) % len(self.sites)]

    def __len__(self) -> int:
        return len(self.sites)


class ConsistentHashRing:
    """Consistent hashing over sites, with virtual nodes for balance.

    >>> ring = ConsistentHashRing(["a", "b", "c"], virtual_nodes=64)
    >>> ring.site_for("file-42") in {"a", "b", "c"}
    True

    Adding or removing a site re-maps only the keys whose ring arc
    changed hands -- about ``1/n`` of the keyspace (property-tested in
    ``tests/metadata/test_hashring.py``).
    """

    def __init__(self, sites: Iterable[str], virtual_nodes: int = 64):
        if virtual_nodes <= 0:
            raise ValueError("virtual_nodes must be positive")
        self.virtual_nodes = virtual_nodes
        self._ring: List[Tuple[int, str]] = []
        self._hashes: List[int] = []
        self._sites: List[str] = []
        for site in sites:
            self.add_site(site)
        if not self._sites:
            raise ValueError("need at least one site")

    # -- membership ------------------------------------------------------------

    @property
    def sites(self) -> List[str]:
        return list(self._sites)

    def add_site(self, site: str) -> None:
        """Join a site: insert its virtual nodes onto the ring."""
        if site in self._sites:
            raise ValueError(f"site {site!r} already on ring")
        self._sites.append(site)
        for v in range(self.virtual_nodes):
            point = stable_hash(f"{site}#{v}")
            idx = bisect.bisect(self._hashes, point)
            self._hashes.insert(idx, point)
            self._ring.insert(idx, (point, site))

    def remove_site(self, site: str) -> None:
        """Leave: drop the site's virtual nodes; its arcs fall to successors."""
        if site not in self._sites:
            raise KeyError(f"site {site!r} not on ring")
        self._sites.remove(site)
        keep = [(h, s) for (h, s) in self._ring if s != site]
        self._ring = keep
        self._hashes = [h for h, _ in keep]

    # -- placement ---------------------------------------------------------------

    def site_for(self, key: str) -> str:
        """The site whose arc contains ``key``'s hash point."""
        if not self._ring:
            raise RuntimeError("empty ring")
        point = stable_hash(key)
        idx = bisect.bisect(self._hashes, point)
        if idx == len(self._ring):
            idx = 0  # wrap around
        return self._ring[idx][1]

    def preference_list(self, key: str, n: int) -> List[str]:
        """The first ``n`` *distinct* sites clockwise from the key's point.

        Used for replica placement extensions (e.g. k-way replication
        ablations); ``preference_list(key, 1)[0] == site_for(key)``.
        """
        if n <= 0:
            raise ValueError("n must be positive")
        if not self._ring:
            raise RuntimeError("empty ring")
        point = stable_hash(key)
        start = bisect.bisect(self._hashes, point)
        result: List[str] = []
        for i in range(len(self._ring)):
            _, site = self._ring[(start + i) % len(self._ring)]
            if site not in result:
                result.append(site)
                if len(result) == n:
                    break
        return result

    def load_distribution(self, keys: Iterable[str]) -> Dict[str, int]:
        """How many of ``keys`` land on each site (balance diagnostics)."""
        counts = {site: 0 for site in self._sites}
        for key in keys:
            counts[self.site_for(key)] += 1
        return counts

    def __len__(self) -> int:
        return len(self._sites)

    def __contains__(self, site: str) -> bool:
        return site in self._sites

    def __repr__(self) -> str:
        return (
            f"<ConsistentHashRing sites={self._sites} "
            f"vnodes={self.virtual_nodes}>"
        )
