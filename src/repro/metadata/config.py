"""Tunables of the metadata service, with calibrated defaults.

Defaults are calibrated so the simulated service reproduces the *shapes*
of the paper's figures (see DESIGN.md Section 5): a single registry
instance saturates in the low hundreds of ops/s (the Fig. 5/7
centralized bottleneck), remote ops cost 1-2 orders of magnitude more
than local ones (Fig. 1), and the sync agent of the replicated strategy
falls behind past ~32 nodes (Fig. 7/8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cloud.network import BANDWIDTH_MODELS
from repro.scheduling import SCHEDULER_NAMES
from repro.util.units import MS

__all__ = ["MetadataConfig"]


@dataclass
class MetadataConfig:
    """Configuration shared by all strategies.

    Attributes
    ----------
    service_time:
        Registry-side processing time of one basic cache operation
        (get/put), seconds.  An Azure Managed Cache Basic instance
        handled on the order of a few hundred ops/s.
    client_overhead:
        Client-side per-operation cost (SDK serialization, web-service
        envelope) paid before the protocol's first RPC.  Calibrated so
        per-op floors approach the paper's measured per-op times.
    service_concurrency:
        Concurrent requests one registry instance can process.
    merge_entry_time:
        Per-entry cost of applying a batched merge at a registry (batch
        puts are cheaper per entry than individual client puts).
    entry_size:
        Serialized size of one registry entry on the wire, bytes.
    request_size / response_size:
        Fixed envelope sizes for metadata RPCs, bytes.
    sync_period:
        Replicated strategy: the synchronization agent's polling period.
    hybrid_sync_replication:
        Hybrid strategy write mode.  ``False`` (default) is the Section
        III-D lazy scheme: the home-site copy is propagated
        asynchronously in batches (low write latency, an
        eventual-visibility window at the home site).  ``True`` follows
        the Section IV-D prototype narrative instead: store locally,
        then synchronously store at the DHT home before the write
        completes.  The Fig. 10 experiment uses the synchronous mode
        (it reproduces the paper's modest workflow-level gains); the
        ablation bench compares both.
    replication_flush_interval / replication_batch_size:
        Lazy hybrid mode only: replicas are pushed to their DHT home
        either every ``flush_interval`` seconds or as soon as
        ``batch_size`` updates accumulate, whichever first.
    read_retry_interval / read_retry_backoff / read_retry_max_delay /
    read_max_retries:
        Polling behaviour when a read *requires* the entry (workflow
        dependency) but the responsible instance does not have it yet
        (e.g. not yet synchronized).  Exponential backoff capped at
        ``read_retry_max_delay`` per attempt, bounded attempts.
    virtual_nodes:
        Virtual nodes per site on the consistent hash ring.
    write_lookup:
        Where the existence-check read of a write happens (Section IV:
        "a write operation actually consists of a look-up read ...
        followed by the actual write").  ``False`` (default): the check
        is part of the server-side upsert, one RPC per write.  ``True``:
        the client issues an explicit look-up RPC first, doubling the
        WAN cost of remote writes (ablation knob).
    home_site:
        Site hosting the centralized registry / the sync agent; default
        (None) is the first site of the deployment.
    bandwidth_model:
        WAN bandwidth sharing model used when an experiment builds the
        deployment from this config: ``None`` (deployment default, i.e.
        ``"slots"``), ``"slots"`` or ``"fair"``.  See
        ``docs/network-model.md`` for semantics and trade-offs.
    site_egress_bw / site_ingress_bw:
        Fair model only: uniform per-site aggregate egress/ingress WAN
        caps (bytes/second) applied to every site of the deployment an
        experiment builds from this config; ``None`` leaves sites
        uncapped.
    rpc_flow_weight:
        Fair model only: flow weight of metadata RPC legs (hot path)
        relative to bulk data transfers.  Weighted max-min gives a
        weight-w flow w times a weight-1 flow's share at any shared
        bottleneck.
    transfer_flow_weight:
        Fair model only: default flow weight of storage-layer bulk
        transfers (data provisioning).
    scheduler:
        Task-placement policy the workflow engine uses when an
        experiment builds it from this config: ``None`` (engine
        default, i.e. ``"locality"``) or one of
        ``repro.scheduling.SCHEDULER_NAMES``.  See
        ``docs/scheduling.md``.
    hybrid_locality_weight / hybrid_load_weight / hybrid_transfer_weight:
        ``scheduler="hybrid"`` only: coefficients of the hybrid
        policy's locality, queue-depth and predicted-transfer-time
        terms.
    bw_pending_penalty:
        ``scheduler="bandwidth_aware"`` or ``"hybrid"`` only: scale of
        the pending-bytes ledger that pessimises staging estimates for
        links this policy just committed transfers to (0 disables it).
    admission:
        Admission-control policy the workload runner uses when built
        from this config: ``None`` (runner default, i.e.
        ``"unbounded"``) or one of
        ``repro.workload.ADMISSION_NAMES``.  See ``docs/workloads.md``.
    max_in_flight:
        ``admission="max_in_flight"`` only: the global cap on
        concurrently executing workflows.
    token_rate / token_burst:
        ``admission="token_bucket"`` only: per-tenant admission rate
        (workflows/second) and burst allowance.
    """

    service_time: float = 3 * MS
    service_concurrency: int = 1
    client_overhead: float = 50 * MS
    merge_entry_time: float = 1 * MS
    entry_size: int = 256
    request_size: int = 128
    response_size: int = 256

    sync_period: float = 2.0
    hybrid_sync_replication: bool = False
    replication_flush_interval: float = 0.25
    replication_batch_size: int = 64

    read_retry_interval: float = 0.25
    read_retry_backoff: float = 1.5
    read_retry_max_delay: float = 2.0
    read_max_retries: int = 600

    virtual_nodes: int = 64
    write_lookup: bool = False
    home_site: Optional[str] = None
    bandwidth_model: Optional[str] = None
    site_egress_bw: Optional[float] = None
    site_ingress_bw: Optional[float] = None
    rpc_flow_weight: float = 1.0
    transfer_flow_weight: float = 1.0
    scheduler: Optional[str] = None
    hybrid_locality_weight: float = 1.0
    hybrid_load_weight: float = 1.0
    hybrid_transfer_weight: float = 1.0
    bw_pending_penalty: float = 1.0
    admission: Optional[str] = None
    max_in_flight: Optional[int] = None
    token_rate: Optional[float] = None
    token_burst: int = 1

    # -- deprecated shims --------------------------------------------------
    # The flag-folding classmethods below predate the declarative
    # scenario API (``repro.scenario``); cross-field validation now
    # lives in the spec tree and these delegate to
    # ``repro.scenario.spec.config_from_specs``.  They keep their old
    # signatures and semantics for external callers, but new code
    # should build a ``ScenarioSpec`` (or call ``config_from_specs``
    # directly).

    @staticmethod
    def _deprecated(name: str) -> None:
        import warnings

        warnings.warn(
            f"MetadataConfig.{name} is deprecated; build a "
            "repro.scenario.ScenarioSpec (or use "
            "repro.scenario.config_from_specs) instead",
            DeprecationWarning,
            stacklevel=3,
        )

    @classmethod
    def from_network_args(
        cls,
        bandwidth_model: Optional[str],
        egress_cap_mb: Optional[float] = None,
        ingress_cap_mb: Optional[float] = None,
        rpc_flow_weight: float = 1.0,
    ) -> Optional["MetadataConfig"]:
        """Deprecated: build a validated config from CLI-level WAN knobs.

        Thin shim over the ``repro.scenario`` spec path: caps are given
        in megabytes/second and converted to bytes/second; returns
        ``None`` when no model is pinned (keep the deployment
        defaults); raises :class:`ValueError` when fair-only knobs are
        combined with a non-fair model.
        """
        cls._deprecated("from_network_args")
        # Imported lazily: repro.scenario sits above this module in the
        # layering (its spec embeds workload specs, which import the
        # engine stack), so a top-level import would be circular.
        from repro.scenario.spec import NetworkSpec, config_from_specs

        return config_from_specs(
            network=NetworkSpec(
                bandwidth_model=bandwidth_model,
                egress_cap_mb=egress_cap_mb,
                ingress_cap_mb=ingress_cap_mb,
                rpc_flow_weight=rpc_flow_weight,
            )
        )

    @classmethod
    def from_scheduler_args(
        cls,
        scheduler: Optional[str],
        hybrid_locality_weight: float = 1.0,
        hybrid_load_weight: float = 1.0,
        hybrid_transfer_weight: float = 1.0,
        bw_pending_penalty: float = 1.0,
        base: Optional["MetadataConfig"] = None,
    ) -> Optional["MetadataConfig"]:
        """Deprecated: fold validated scheduler knobs into a config.

        Thin shim over the ``repro.scenario`` spec path: returns
        ``base`` unchanged (possibly ``None``) when no scheduler is
        pinned, and raises :class:`ValueError` when policy-specific
        knobs are combined with a different policy.
        """
        cls._deprecated("from_scheduler_args")
        from repro.scenario.spec import SchedulerSpec, config_from_specs

        return config_from_specs(
            scheduler=SchedulerSpec(
                name=scheduler,
                hybrid_locality_weight=hybrid_locality_weight,
                hybrid_load_weight=hybrid_load_weight,
                hybrid_transfer_weight=hybrid_transfer_weight,
                bw_pending_penalty=bw_pending_penalty,
            ),
            base=base,
        )

    @classmethod
    def from_workload_args(
        cls,
        admission: Optional[str],
        max_in_flight: Optional[int] = None,
        token_rate: Optional[float] = None,
        token_burst: Optional[int] = None,
        base: Optional["MetadataConfig"] = None,
    ) -> Optional["MetadataConfig"]:
        """Deprecated: fold validated workload knobs into a config.

        Thin shim over the ``repro.scenario`` spec path: returns
        ``base`` unchanged (possibly ``None``) when no admission policy
        is pinned, and raises :class:`ValueError` when policy-specific
        knobs are combined with a different policy.
        """
        cls._deprecated("from_workload_args")
        from repro.scenario.spec import config_from_specs

        return config_from_specs(
            admission=admission,
            max_in_flight=max_in_flight,
            token_rate=token_rate,
            token_burst=token_burst,
            base=base,
        )

    def validate(self) -> None:
        if self.service_time <= 0:
            raise ValueError("service_time must be positive")
        if self.service_concurrency <= 0:
            raise ValueError("service_concurrency must be positive")
        if self.client_overhead < 0:
            raise ValueError("client_overhead must be >= 0")
        if self.merge_entry_time < 0:
            raise ValueError("merge_entry_time must be >= 0")
        if self.sync_period <= 0:
            raise ValueError("sync_period must be positive")
        if self.replication_flush_interval <= 0:
            raise ValueError("replication_flush_interval must be positive")
        if self.replication_batch_size <= 0:
            raise ValueError("replication_batch_size must be positive")
        if self.read_max_retries < 0:
            raise ValueError("read_max_retries must be >= 0")
        if self.read_retry_backoff < 1.0:
            raise ValueError("read_retry_backoff must be >= 1")
        if self.read_retry_max_delay < self.read_retry_interval:
            raise ValueError(
                "read_retry_max_delay must be >= read_retry_interval"
            )
        if self.virtual_nodes <= 0:
            raise ValueError("virtual_nodes must be positive")
        if self.bandwidth_model is not None and (
            self.bandwidth_model not in BANDWIDTH_MODELS
        ):
            raise ValueError(
                f"bandwidth_model must be None or one of {BANDWIDTH_MODELS}"
            )
        if self.site_egress_bw is not None and self.site_egress_bw <= 0:
            raise ValueError("site_egress_bw must be positive")
        if self.site_ingress_bw is not None and self.site_ingress_bw <= 0:
            raise ValueError("site_ingress_bw must be positive")
        if self.rpc_flow_weight <= 0:
            raise ValueError("rpc_flow_weight must be positive")
        if self.transfer_flow_weight <= 0:
            raise ValueError("transfer_flow_weight must be positive")
        if self.scheduler is not None and (
            self.scheduler not in SCHEDULER_NAMES
        ):
            raise ValueError(
                f"scheduler must be None or one of {SCHEDULER_NAMES}"
            )
        for label in (
            "hybrid_locality_weight",
            "hybrid_load_weight",
            "hybrid_transfer_weight",
            "bw_pending_penalty",
        ):
            if getattr(self, label) < 0:
                raise ValueError(f"{label} must be >= 0")
        if self.admission is not None:
            # Imported lazily: repro.workload sits above this module in
            # the layering (its runner imports the engine, which imports
            # this config), so a top-level import would be circular.
            from repro.workload.admission import ADMISSION_NAMES

            if self.admission not in ADMISSION_NAMES:
                raise ValueError(
                    f"admission must be None or one of {ADMISSION_NAMES}"
                )
        if self.max_in_flight is not None and self.max_in_flight <= 0:
            raise ValueError("max_in_flight must be positive")
        if self.token_rate is not None and self.token_rate <= 0:
            raise ValueError("token_rate must be positive")
        if self.token_burst < 1:
            raise ValueError("token_burst must be >= 1")
