"""The Architecture Controller (Section V): plug-and-play strategy switch.

The desired strategy "is provided as a parameter and can be dynamically
modified as new jobs are executed".  The controller owns the strategy
registry, instantiates strategies against a deployment, and supports
swapping strategies between jobs, including migrating already-published
metadata into the new layout (a full re-partition -- the expensive
operation the paper's related-work section warns about, measurable here).
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Type

from repro.sim import Environment
from repro.cloud.deployment import Deployment
from repro.cloud.network import Network
from repro.metadata.config import MetadataConfig
from repro.metadata.entry import RegistryEntry
from repro.metadata.strategies import (
    CentralizedStrategy,
    DecentralizedStrategy,
    HybridStrategy,
    KReplicatedStrategy,
    MetadataStrategy,
    RelationalDBStrategy,
    ReplicatedStrategy,
    SubtreePartitionedStrategy,
)

__all__ = ["ArchitectureController", "StrategyName", "STRATEGIES"]


class StrategyName:
    """Canonical strategy identifiers (as used in reports and figures)."""

    CENTRALIZED = "centralized"
    REPLICATED = "replicated"
    DECENTRALIZED = "decentralized"
    HYBRID = "hybrid"

    #: Paper-figure aliases: DN = decentralized non-replicated,
    #: DR = decentralized replicated.
    ALIASES: Dict[str, str] = {
        "dn": DECENTRALIZED,
        "dr": HYBRID,
        "decentralized-non-replicated": DECENTRALIZED,
        "decentralized-replicated": HYBRID,
        "baseline": CENTRALIZED,
    }

    @classmethod
    def canonical(cls, name: str) -> str:
        name = name.strip().lower()
        return cls.ALIASES.get(name, name)

    @classmethod
    def all(cls) -> List[str]:
        return [
            cls.CENTRALIZED,
            cls.REPLICATED,
            cls.DECENTRALIZED,
            cls.HYBRID,
        ]


STRATEGIES: Dict[str, Type[MetadataStrategy]] = {
    StrategyName.CENTRALIZED: CentralizedStrategy,
    StrategyName.REPLICATED: ReplicatedStrategy,
    StrategyName.DECENTRALIZED: DecentralizedStrategy,
    StrategyName.HYBRID: HybridStrategy,
    # Related-work comparison strategies (Section VIII) and extensions;
    # not part of StrategyName.all() so the paper's figures stay 4-way.
    "subtree": SubtreePartitionedStrategy,
    "relational-db": RelationalDBStrategy,
    "k-replicated": KReplicatedStrategy,
}


class ArchitectureController:
    """Creates, holds and swaps the active metadata strategy."""

    def __init__(
        self,
        deployment: Deployment,
        strategy: str = StrategyName.CENTRALIZED,
        config: Optional[MetadataConfig] = None,
    ):
        self.deployment = deployment
        self.env: Environment = deployment.env
        self.network: Network = deployment.network
        self.config = config or MetadataConfig()
        self._active: MetadataStrategy = self._build(strategy)

    # -- strategy management --------------------------------------------------------

    @staticmethod
    def register(name: str, cls: Type[MetadataStrategy]) -> None:
        """Add a custom strategy to the plug-and-play registry."""
        if not issubclass(cls, MetadataStrategy):
            raise TypeError(f"{cls!r} is not a MetadataStrategy")
        STRATEGIES[StrategyName.canonical(name)] = cls

    def _build(self, name: str) -> MetadataStrategy:
        canonical = StrategyName.canonical(name)
        try:
            cls = STRATEGIES[canonical]
        except KeyError:
            raise ValueError(
                f"unknown strategy {name!r}; available: {sorted(STRATEGIES)}"
            ) from None
        return cls(
            self.env, self.network, self.deployment.sites, self.config
        )

    @property
    def strategy(self) -> MetadataStrategy:
        """The currently active strategy."""
        return self._active

    def switch(self, name: str, migrate: bool = True) -> Generator:
        """Process: swap the active strategy, optionally migrating entries.

        Migration re-publishes every known entry through the *new*
        strategy's write path from the entry's origin site (or the first
        site when unknown), paying the full cost of re-partitioning --
        the paper's argument for why strategy choice should match the
        workload up front.
        """
        old = self._active
        old.shutdown()
        new = self._build(name)
        if migrate:
            seen: Dict[str, RegistryEntry] = {}
            for registry in old.registries.values():
                for key in registry.cache.keys():
                    entry = registry.cache.get(key)
                    if entry is None:
                        continue
                    seen[key] = (
                        entry
                        if key not in seen
                        else seen[key].merged_with(entry)
                    )
            for key in sorted(seen):
                entry = seen[key]
                origin = (
                    entry.origin_site
                    if entry.origin_site in self.deployment.sites
                    else self.deployment.sites[0]
                )
                yield from new.write(origin, entry)
        self._active = new
        return new

    # -- convenience proxies ----------------------------------------------------------

    def write(
        self, site: str, entry: RegistryEntry, run: str = ""
    ) -> Generator:
        result = yield from self._active.write(site, entry, run=run)
        return result

    def read(
        self,
        site: str,
        key: str,
        require_found: bool = False,
        run: str = "",
    ) -> Generator:
        result = yield from self._active.read(
            site, key, require_found, run=run
        )
        return result

    def shutdown(self) -> None:
        self._active.shutdown()

    def __repr__(self) -> str:
        return f"<ArchitectureController active={self._active.name}>"
