"""Operation accounting shared by all strategies.

Every client-visible metadata operation produces an op record with its
timing and distance class; :class:`OpStats` aggregates them and derives
the quantities the paper's figures report: per-node execution time
(Fig. 5), completion-progress curves (Fig. 6), aggregate throughput
(Fig. 7) and time-to-complete-N-ops (Fig. 8).

Storage is *columnar*: appending an operation on the simulation hot path
(:meth:`OpStats.record`) pushes scalars onto parallel lists instead of
allocating a per-op :class:`OpRecord` object -- at hundreds of thousands
of ops per scenario the object-per-op design dominated the metadata
strategies' profile.  The record-object view is still available:
``stats.records`` materializes :class:`OpRecord` objects lazily, exactly
once per record (the materialized prefix is cached, so object identity
is stable across accesses and appends).  All derived metrics read the
columns directly and compute the same floats, in the same order, as the
original record-object formulation.
"""

from __future__ import annotations

from dataclasses import dataclass
import enum
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["OpKind", "OpRecord", "OpStats"]


class OpKind(enum.Enum):
    READ = "read"
    WRITE = "write"
    DELETE = "delete"


@dataclass(frozen=True)
class OpRecord:
    """One completed metadata operation, as seen by the client node."""

    kind: OpKind
    key: str
    site: str  # site of the issuing node
    started_at: float
    finished_at: float
    #: Whether all service legs stayed inside the issuing site.
    local: bool
    #: Whether the entry was found (reads) / created fresh (writes).
    found: bool = True
    #: Number of retries performed before completion (replicated reads).
    retries: int = 0
    #: Originating workflow run tag ("" for ops issued outside a run).
    #: Concurrent workflows interleave their records in one shared
    #: strategy, so per-run attribution must be carried on the record
    #: itself rather than recovered from list positions.
    run: str = ""

    @property
    def latency(self) -> float:
        return self.finished_at - self.started_at

    def __post_init__(self):
        if self.finished_at < self.started_at:
            raise ValueError("operation finished before it started")


#: Column names, in :meth:`OpStats.record` argument order.
_COLUMNS = (
    "_kind",
    "_key",
    "_site",
    "_started",
    "_finished",
    "_local",
    "_found",
    "_retries",
    "_run",
)


class OpStats:
    """Append-only, column-backed collection of op records plus metrics."""

    __slots__ = _COLUMNS + ("_cache",)

    def __init__(self) -> None:
        self._kind: List[OpKind] = []
        self._key: List[str] = []
        self._site: List[str] = []
        self._started: List[float] = []
        self._finished: List[float] = []
        self._local: List[bool] = []
        self._found: List[bool] = []
        self._retries: List[int] = []
        self._run: List[str] = []
        #: Materialized :class:`OpRecord` prefix (lazy, identity-stable).
        self._cache: List[OpRecord] = []

    # -- appending ----------------------------------------------------------

    def record(
        self,
        kind: OpKind,
        key: str,
        site: str,
        started_at: float,
        finished_at: float,
        local: bool,
        found: bool = True,
        retries: int = 0,
        run: str = "",
    ) -> None:
        """Append one operation without allocating a record object.

        The hot-path twin of :meth:`add`: nine scalar appends.  The
        object view (``stats.records``) materializes lazily on demand.
        """
        if finished_at < started_at:
            raise ValueError("operation finished before it started")
        self._kind.append(kind)
        self._key.append(key)
        self._site.append(site)
        self._started.append(started_at)
        self._finished.append(finished_at)
        self._local.append(local)
        self._found.append(found)
        self._retries.append(retries)
        self._run.append(run)

    def add(self, record: OpRecord) -> None:
        """Append an already-built :class:`OpRecord` (object identity kept)."""
        cache = self._materialize()
        self._kind.append(record.kind)
        self._key.append(record.key)
        self._site.append(record.site)
        self._started.append(record.started_at)
        self._finished.append(record.finished_at)
        self._local.append(record.local)
        self._found.append(record.found)
        self._retries.append(record.retries)
        self._run.append(record.run)
        cache.append(record)

    # -- record-object view ---------------------------------------------------

    def _materialize(self) -> List[OpRecord]:
        cache = self._cache
        n = len(self._kind)
        if len(cache) < n:
            for i in range(len(cache), n):
                cache.append(
                    OpRecord(
                        self._kind[i],
                        self._key[i],
                        self._site[i],
                        self._started[i],
                        self._finished[i],
                        self._local[i],
                        self._found[i],
                        self._retries[i],
                        self._run[i],
                    )
                )
        return cache

    @property
    def records(self) -> List[OpRecord]:
        """All operations as :class:`OpRecord` objects.

        Materialized lazily and cached, so repeated access (and access
        interleaved with appends) always yields the *same* objects for
        the same operations.  Mutating the returned list is not
        supported; assign to ``records`` to replace the contents.
        """
        return self._materialize()

    @records.setter
    def records(self, value: Sequence[OpRecord]) -> None:
        value = list(value)
        self._kind = [r.kind for r in value]
        self._key = [r.key for r in value]
        self._site = [r.site for r in value]
        self._started = [r.started_at for r in value]
        self._finished = [r.finished_at for r in value]
        self._local = [r.local for r in value]
        self._found = [r.found for r in value]
        self._retries = [r.retries for r in value]
        self._run = [r.run for r in value]
        self._cache = value

    def __len__(self) -> int:
        return len(self._kind)

    # -- basic aggregates -------------------------------------------------------

    @property
    def count(self) -> int:
        return len(self._kind)

    def count_by_kind(self, kind: OpKind) -> int:
        return sum(1 for k in self._kind if k is kind)

    @property
    def local_fraction(self) -> float:
        """Fraction of operations served fully locally."""
        if not self._kind:
            return 0.0
        return sum(1 for l in self._local if l) / len(self._local)

    def mean_latency(self, kind: Optional[OpKind] = None) -> float:
        lats = self._latencies(kind)
        return float(np.mean(lats)) if lats else 0.0

    def latency_percentile(self, q: float, kind: Optional[OpKind] = None) -> float:
        lats = self._latencies(kind)
        return float(np.percentile(lats, q)) if lats else 0.0

    def _latencies(self, kind: Optional[OpKind]) -> List[float]:
        started, finished = self._started, self._finished
        if kind is None:
            return [f - s for s, f in zip(started, finished)]
        return [
            finished[i] - started[i]
            for i, k in enumerate(self._kind)
            if k is kind
        ]

    @property
    def total_retries(self) -> int:
        return sum(self._retries)

    # -- figure-level metrics -------------------------------------------------------

    def makespan(self) -> float:
        """Time from the first op start to the last op completion."""
        if not self._kind:
            return 0.0
        return max(self._finished) - min(self._started)

    def throughput(self) -> float:
        """Aggregate completed operations per second (Fig. 7 metric)."""
        span = self.makespan()
        return len(self._kind) / span if span > 0 else 0.0

    def completion_times(self) -> np.ndarray:
        """Sorted completion timestamps."""
        return np.sort(np.array(self._finished))

    def progress_curve(self, percents: Sequence[float]) -> List[Tuple[float, float]]:
        """(percent-complete, time) pairs -- the Fig. 6 representation.

        ``percents`` are in (0, 100]; time is measured from the first op
        start.
        """
        if not self._kind:
            return [(p, 0.0) for p in percents]
        times = self.completion_times()
        t0 = min(self._started)
        out = []
        for p in percents:
            if not 0 < p <= 100:
                raise ValueError(f"percent {p} outside (0, 100]")
            idx = max(0, int(np.ceil(p / 100 * len(times))) - 1)
            out.append((p, float(times[idx] - t0)))
        return out

    def per_site_mean_completion(self) -> Dict[str, float]:
        """Mean completion time per issuing site (centrality analysis)."""
        by_site: Dict[str, List[float]] = {}
        for site, finished in zip(self._site, self._finished):
            by_site.setdefault(site, []).append(finished)
        return {s: float(np.mean(v)) for s, v in by_site.items()}

    def for_run(self, run: str) -> "OpStats":
        """The sub-collection of records tagged with workflow ``run``.

        This is the concurrency-safe replacement for slicing
        ``records[ops_before:]``: interleaved workflows append to one
        shared list, so positional slices misattribute ops while tag
        filtering cannot lose or double-count them.  Column-level
        filtering: no record objects are materialized.
        """
        idx = [i for i, r in enumerate(self._run) if r == run]
        out = OpStats()
        for col in _COLUMNS:
            src = getattr(self, col)
            setattr(out, col, [src[i] for i in idx])
        return out

    def tail_for_run(self, start: int, run: str) -> "OpStats":
        """Records at index ``start`` onward tagged with ``run``.

        The engine's per-execution snapshot: ``start`` is the record
        count captured when the run began (records appended before that
        instant cannot carry its tag), so only the run's own window of
        the shared list is scanned -- attribution stays linear in a long
        workload instead of quadratic.  Column-level filtering: no
        record objects are materialized.
        """
        runs = self._run
        idx = [i for i in range(start, len(runs)) if runs[i] == run]
        out = OpStats()
        for col in _COLUMNS:
            src = getattr(self, col)
            setattr(out, col, [src[i] for i in idx])
        return out

    def runs(self) -> Dict[str, int]:
        """Record count per run tag (untagged ops under ``""``)."""
        out: Dict[str, int] = {}
        for r in self._run:
            out[r] = out.get(r, 0) + 1
        return out

    def merge(self, other: "OpStats") -> "OpStats":
        merged = OpStats()
        for col in _COLUMNS:
            setattr(merged, col, getattr(self, col) + getattr(other, col))
        return merged

    def __repr__(self) -> str:
        return f"<OpStats n={len(self._kind)}>"
