"""Operation accounting shared by all strategies.

Every client-visible metadata operation produces an :class:`OpRecord`
with its timing and distance class; :class:`OpStats` aggregates them and
derives the quantities the paper's figures report: per-node execution
time (Fig. 5), completion-progress curves (Fig. 6), aggregate throughput
(Fig. 7) and time-to-complete-N-ops (Fig. 8).
"""

from __future__ import annotations

from dataclasses import dataclass
import enum
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["OpKind", "OpRecord", "OpStats"]


class OpKind(enum.Enum):
    READ = "read"
    WRITE = "write"
    DELETE = "delete"


@dataclass(frozen=True)
class OpRecord:
    """One completed metadata operation, as seen by the client node."""

    kind: OpKind
    key: str
    site: str  # site of the issuing node
    started_at: float
    finished_at: float
    #: Whether all service legs stayed inside the issuing site.
    local: bool
    #: Whether the entry was found (reads) / created fresh (writes).
    found: bool = True
    #: Number of retries performed before completion (replicated reads).
    retries: int = 0
    #: Originating workflow run tag ("" for ops issued outside a run).
    #: Concurrent workflows interleave their records in one shared
    #: strategy, so per-run attribution must be carried on the record
    #: itself rather than recovered from list positions.
    run: str = ""

    @property
    def latency(self) -> float:
        return self.finished_at - self.started_at

    def __post_init__(self):
        if self.finished_at < self.started_at:
            raise ValueError("operation finished before it started")


class OpStats:
    """Append-only collection of op records plus derived metrics."""

    def __init__(self) -> None:
        self.records: List[OpRecord] = []

    def add(self, record: OpRecord) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    # -- basic aggregates -------------------------------------------------------

    @property
    def count(self) -> int:
        return len(self.records)

    def count_by_kind(self, kind: OpKind) -> int:
        return sum(1 for r in self.records if r.kind is kind)

    @property
    def local_fraction(self) -> float:
        """Fraction of operations served fully locally."""
        if not self.records:
            return 0.0
        return sum(1 for r in self.records if r.local) / len(self.records)

    def mean_latency(self, kind: Optional[OpKind] = None) -> float:
        lats = [
            r.latency
            for r in self.records
            if kind is None or r.kind is kind
        ]
        return float(np.mean(lats)) if lats else 0.0

    def latency_percentile(self, q: float, kind: Optional[OpKind] = None) -> float:
        lats = [
            r.latency
            for r in self.records
            if kind is None or r.kind is kind
        ]
        return float(np.percentile(lats, q)) if lats else 0.0

    @property
    def total_retries(self) -> int:
        return sum(r.retries for r in self.records)

    # -- figure-level metrics -------------------------------------------------------

    def makespan(self) -> float:
        """Time from the first op start to the last op completion."""
        if not self.records:
            return 0.0
        start = min(r.started_at for r in self.records)
        end = max(r.finished_at for r in self.records)
        return end - start

    def throughput(self) -> float:
        """Aggregate completed operations per second (Fig. 7 metric)."""
        span = self.makespan()
        return len(self.records) / span if span > 0 else 0.0

    def completion_times(self) -> np.ndarray:
        """Sorted completion timestamps."""
        return np.sort(np.array([r.finished_at for r in self.records]))

    def progress_curve(self, percents: Sequence[float]) -> List[Tuple[float, float]]:
        """(percent-complete, time) pairs -- the Fig. 6 representation.

        ``percents`` are in (0, 100]; time is measured from the first op
        start.
        """
        if not self.records:
            return [(p, 0.0) for p in percents]
        times = self.completion_times()
        t0 = min(r.started_at for r in self.records)
        out = []
        for p in percents:
            if not 0 < p <= 100:
                raise ValueError(f"percent {p} outside (0, 100]")
            idx = max(0, int(np.ceil(p / 100 * len(times))) - 1)
            out.append((p, float(times[idx] - t0)))
        return out

    def per_site_mean_completion(self) -> Dict[str, float]:
        """Mean completion time per issuing site (centrality analysis)."""
        by_site: Dict[str, List[float]] = {}
        for r in self.records:
            by_site.setdefault(r.site, []).append(r.finished_at)
        return {s: float(np.mean(v)) for s, v in by_site.items()}

    def for_run(self, run: str) -> "OpStats":
        """The sub-collection of records tagged with workflow ``run``.

        This is the concurrency-safe replacement for slicing
        ``records[ops_before:]``: interleaved workflows append to one
        shared list, so positional slices misattribute ops while tag
        filtering cannot lose or double-count them.
        """
        out = OpStats()
        out.records = [r for r in self.records if r.run == run]
        return out

    def runs(self) -> Dict[str, int]:
        """Record count per run tag (untagged ops under ``""``)."""
        out: Dict[str, int] = {}
        for r in self.records:
            out[r.run] = out.get(r.run, 0) + 1
        return out

    def merge(self, other: "OpStats") -> "OpStats":
        merged = OpStats()
        merged.records = self.records + other.records
        return merged

    def __repr__(self) -> str:
        return f"<OpStats n={len(self.records)}>"
