"""A metadata registry instance: the per-site service process.

One :class:`MetadataRegistry` models the deployed cache service of one
datacenter (Section V): a bounded-concurrency server in front of a
:class:`~repro.metadata.cache.CacheManager`.  All state changes pay
service time inside the server's slot queue, which is what produces the
contention effects at the heart of the evaluation (a centralized
instance saturating under 32+ concurrent clients; sync-agent merge
batches stalling client operations).

The registry exposes *server-side* generators (``serve_get`` etc.) that
strategy code wraps in :meth:`repro.cloud.network.Network.rpc` calls, so
every client operation pays: request latency + queueing + service time +
response latency.
"""

from __future__ import annotations

from typing import Generator, List, Optional

from repro.sim import Environment, Resource, Timeout
from repro.cloud.network import Network
from repro.metadata.cache import CacheManager
from repro.metadata.config import MetadataConfig
from repro.metadata.entry import RegistryEntry

__all__ = ["MetadataRegistry"]


class MetadataRegistry:
    """The metadata service instance of one site."""

    def __init__(
        self,
        env: Environment,
        site: str,
        config: Optional[MetadataConfig] = None,
        name: Optional[str] = None,
    ):
        self.env = env
        self.site = site
        self.config = config or MetadataConfig()
        self.config.validate()
        self.name = name or f"registry-{site}"
        self.cache = CacheManager(name=self.name)
        self._server = Resource(env, capacity=self.config.service_concurrency)
        # -- service statistics
        self.ops_served = 0
        self.entries_merged = 0
        self.busy_time = 0.0
        # Observability: slot-wait events under "registry" (the queueing
        # at a saturated instance is the paper's central contention
        # effect, so it gets first-class tracing).
        tr = getattr(env, "tracer", None)
        self._tracer = tr
        self._trace_reg = tr is not None and tr.enabled and tr.wants("registry")
        self._h_wait = (
            tr.metrics.histogram("registry.slot_wait_s")
            if self._trace_reg
            else None
        )

    # -- internal: pay service time inside a server slot -------------------------

    def _service(self, duration: float) -> Generator:
        server = self._server
        req = server.try_acquire()
        if req is None:
            with server.request() as req:
                enqueued = self.env.now
                yield req
                if self._trace_reg:
                    wait = self.env.now - enqueued
                    self._tracer.emit(
                        "registry", "slot_wait",
                        site=self.site, wait=wait,
                        queue=len(server.queue),
                    )
                    self._h_wait.add(wait)
                start = self.env.now
                yield Timeout(self.env, duration)
                self.busy_time += self.env.now - start
        else:
            # Uncontended: the slot was claimed synchronously, so the op
            # pays only its service timeout (no same-instant grant hop).
            try:
                start = self.env.now
                yield Timeout(self.env, duration)
                self.busy_time += self.env.now - start
            finally:
                server._release(req)
        self.ops_served += 1

    # -- server-side operations ---------------------------------------------------

    def serve_get(self, key: str) -> Generator:
        """Look up ``key``; returns the entry or ``None``."""
        yield from self._service(self.config.service_time)
        return self.cache.get(key)

    def serve_put(
        self,
        entry: RegistryEntry,
        expected_version: Optional[int] = None,
    ) -> Generator:
        """Store ``entry``; returns the stored (version-bumped) entry.

        May raise :class:`~repro.metadata.entry.VersionConflict` under
        optimistic concurrency, which propagates to the RPC caller.
        """
        yield from self._service(self.config.service_time)
        return self.cache.put(entry, expected_version)

    def serve_delete(self, key: str) -> Generator:
        """Delete ``key``; returns whether it existed."""
        yield from self._service(self.config.service_time)
        return self.cache.delete(key)

    def serve_merge_batch(self, entries: List[RegistryEntry]) -> Generator:
        """Apply a batch of propagated updates (lazy-update delivery).

        Batch merges occupy the server for ``merge_entry_time`` per
        entry -- cheaper per entry than client puts, but a large batch
        still blocks client operations behind it, which is the mechanism
        degrading the replicated strategy at scale (Figs. 7 and 8).
        """
        if entries:
            yield from self._service(
                self.config.merge_entry_time * len(entries)
            )
            for entry in entries:
                self.cache.merge(entry)
            self.entries_merged += len(entries)
        return len(entries)

    def serve_updates_since(self, cursor: int) -> Generator:
        """Return (updates, new_cursor) for the synchronization agent.

        Service time scales with the batch handed back (the instance has
        to serialize each entry).
        """
        updates, new_cursor = self.cache.updates_since(cursor)
        cost = self.config.service_time + self.config.merge_entry_time * len(
            updates
        )
        yield from self._service(cost)
        return updates, new_cursor

    # -- convenience for client-side invocation -----------------------------------

    def rpc_get(self, network: Network, from_site: str, key: str) -> Generator:
        """Client-side helper: full RPC for a get."""
        result = yield from network.rpc(
            from_site,
            self.site,
            self.serve_get(key),
            request_size=self.config.request_size,
            response_size=self.config.response_size,
        )
        return result

    def rpc_put(
        self,
        network: Network,
        from_site: str,
        entry: RegistryEntry,
        expected_version: Optional[int] = None,
    ) -> Generator:
        result = yield from network.rpc(
            from_site,
            self.site,
            self.serve_put(entry, expected_version),
            request_size=self.config.request_size
            + entry.serialized_size(),
            response_size=self.config.response_size,
        )
        return result

    def rpc_merge_batch(
        self, network: Network, from_site: str, entries: List[RegistryEntry]
    ) -> Generator:
        size = sum(e.serialized_size() for e in entries)
        result = yield from network.rpc(
            from_site,
            self.site,
            self.serve_merge_batch(entries),
            request_size=self.config.request_size + size,
            response_size=self.config.response_size,
        )
        return result

    # -- introspection ---------------------------------------------------------------

    @property
    def queue_length(self) -> int:
        return len(self._server.queue)

    @property
    def max_queue_length(self) -> int:
        return self._server.max_queue_len

    def utilization(self, horizon: Optional[float] = None) -> float:
        elapsed = horizon if horizon is not None else self.env.now
        if elapsed <= 0:
            return 0.0
        return self.busy_time / (elapsed * self.config.service_concurrency)

    def __contains__(self, key: str) -> bool:
        return key in self.cache

    def __len__(self) -> int:
        return len(self.cache)

    def __repr__(self) -> str:
        return f"<MetadataRegistry {self.site} entries={len(self)}>"
