"""Registry entries: the fundamental metadata storage unit (Section V).

An entry carries only what a workflow needs to *locate* a file -- its
unique key and the set of locations holding replicas -- deliberately
dropping POSIX-style attributes (permissions etc.) the paper observes
are never used during workflow execution.  Entries are versioned to
support the cache tier's optimistic concurrency model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Optional, Tuple

__all__ = ["RegistryEntry", "VersionConflict"]


class VersionConflict(Exception):
    """Optimistic-concurrency failure: the entry changed under the writer."""

    def __init__(self, key: str, expected: int, actual: int):
        super().__init__(
            f"version conflict on {key!r}: expected {expected}, found {actual}"
        )
        self.key = key
        self.expected = expected
        self.actual = actual


@dataclass(frozen=True)
class RegistryEntry:
    """One immutable version of a file's metadata.

    Attributes
    ----------
    key:
        Unique identifier -- for workflow files, the file name.
    locations:
        Sites (datacenter names) currently holding the file data.
    size:
        File size in bytes (0 for the empty marker files used by the
        synthetic benchmarks, matching Section VI-A).
    version:
        Monotonic per-key version, managed by the cache tier.
    origin_site:
        Site where this version was created; used by the sync agent to
        avoid echoing updates back to their producer.
    created_at:
        Simulated creation timestamp (consistency-window accounting).
    attributes:
        Optional small extension dict -- the paper notes the registry
        scope "can be easily extended by defining different types of
        Registry Entries".
    """

    key: str
    locations: FrozenSet[str] = frozenset()
    size: int = 0
    version: int = 0
    origin_site: str = ""
    created_at: float = 0.0
    attributes: Optional[Tuple[Tuple[str, Any], ...]] = None

    def __post_init__(self):
        if not self.key:
            raise ValueError("entry key must be non-empty")
        if self.size < 0:
            raise ValueError("entry size must be >= 0")
        if self.version < 0:
            raise ValueError("entry version must be >= 0")
        # Normalize locations to a frozenset for hashability/equality.
        if not isinstance(self.locations, frozenset):
            object.__setattr__(self, "locations", frozenset(self.locations))

    # -- derived -----------------------------------------------------------

    def evolve(self, **changes: Any) -> "RegistryEntry":
        """A copy with ``changes`` applied (fast ``dataclasses.replace``).

        Entries are copied on every write and every lazy-propagation
        merge, which made ``dataclasses.replace`` (it re-runs
        ``__init__`` through a signature-inspecting shim) a measurable
        line in the scenario profiles.  The source entry already passed
        ``__post_init__``, so the only revalidation the changed fields
        need is the location normalization -- everything else either
        cannot become invalid here or is validated by the caller
        (versions come from the registry's monotonic counter).
        """
        clone = object.__new__(RegistryEntry)
        state = dict(self.__dict__)
        state.update(changes)
        locations = state["locations"]
        if not isinstance(locations, frozenset):
            state["locations"] = frozenset(locations)
        clone.__dict__.update(state)
        return clone

    def with_location(self, site: str) -> "RegistryEntry":
        """A copy that also lists ``site`` as holding the file."""
        return self.evolve(locations=self.locations | {site})

    def with_version(self, version: int) -> "RegistryEntry":
        return self.evolve(version=version)

    def merged_with(self, other: "RegistryEntry") -> "RegistryEntry":
        """Merge two versions of the same key (location-set union).

        Registry entries form a join-semilattice under location union
        with max-version: this is what makes lazy propagation safe --
        merges commute, so replicas converge regardless of delivery
        order (eventual consistency, Section III-D).
        """
        if other.key != self.key:
            raise ValueError(f"cannot merge {self.key!r} with {other.key!r}")
        newer = self if self.version >= other.version else other
        return newer.evolve(
            locations=self.locations | other.locations,
            version=max(self.version, other.version),
        )

    def serialized_size(self, base: int = 64) -> int:
        """Rough wire size: envelope + key + one slot per location."""
        return base + len(self.key) + 16 * len(self.locations)

    def get_attribute(self, name: str, default: Any = None) -> Any:
        for k, v in self.attributes or ():
            if k == name:
                return v
        return default

    @staticmethod
    def make_attributes(mapping: Dict[str, Any]) -> Tuple[Tuple[str, Any], ...]:
        """Freeze a dict into the tuple form ``attributes`` expects."""
        return tuple(sorted(mapping.items()))

    def __str__(self) -> str:
        locs = ",".join(sorted(self.locations)) or "-"
        return f"{self.key}@v{self.version}[{locs}]"
