"""Replicated metadata on each site (Section IV-B).

A local registry instance in every datacenter, so *every* client
operation is local and fast.  A single synchronization agent iteratively
queries all instances for updates and propagates them to the rest of the
set.  The trade-offs the paper observes, both reproduced here:

- reads of entries written at *another* site block until the agent's
  next cycle makes them locally visible (eventual consistency) -- hence
  the strategy suits workflows with low metadata rates (few, very large
  files), and is penalized by metadata-intensive ones;
- the lone sequential agent, plus the merge batches it injects into
  every instance, becomes a bottleneck as the node count grows past ~32
  (Figs. 7 and 8).
"""

from __future__ import annotations

from typing import Generator, List, Optional

from repro.sim import Environment
from repro.cloud.network import Network
from repro.metadata.config import MetadataConfig
from repro.metadata.consistency import SyncAgent
from repro.metadata.entry import RegistryEntry
from repro.metadata.registry import MetadataRegistry
from repro.metadata.strategies.base import MetadataStrategy

__all__ = ["ReplicatedStrategy"]


class ReplicatedStrategy(MetadataStrategy):
    """Per-site registry replicas + one synchronization agent."""

    name = "replicated"

    def __init__(
        self,
        env: Environment,
        network: Network,
        sites: List[str],
        config: Optional[MetadataConfig] = None,
    ):
        super().__init__(env, network, sites, config)
        self.registries = {
            site: MetadataRegistry(env, site, self.config) for site in self.sites
        }
        agent_site = self.config.home_site or self.sites[0]
        self.agent = SyncAgent(
            env,
            network,
            self.registries,
            self.config,
            agent_site=agent_site,
            tracker=self.tracker,
        )

    def _do_write(self, site: str, entry: RegistryEntry) -> Generator:
        """All writes are local; the agent propagates them lazily."""
        registry = self.registries[site]
        entry = entry.with_location(site) if site not in entry.locations else entry
        # Stamp origin so the agent can filter echoes when polling.
        if entry.origin_site != site:
            entry = type(entry)(
                key=entry.key,
                locations=entry.locations,
                size=entry.size,
                version=entry.version,
                origin_site=site,
                created_at=self.env.now,
                attributes=entry.attributes,
            )
        stored = yield from self._client_write(site, registry, entry)
        self.tracker.on_created(entry.key)
        return stored, True

    def _do_read(self, site: str, key: str) -> Generator:
        """All reads are local; misses surface the consistency window."""
        registry = self.registries[site]
        entry = yield from registry.rpc_get(self.network, site, key)
        return entry, True

    def _do_delete(self, site: str, key: str) -> Generator:
        existed = yield from self.network.rpc(
            site,
            site,
            self.registries[site].serve_delete(key),
            request_size=self.config.request_size,
            response_size=self.config.response_size,
        )
        return existed, True

    def flush(self) -> Generator:
        """Wait until the agent has propagated everything written so far."""
        while self.agent.lag > 0 or self.tracker.pending > 0:
            yield self.env.timeout(self.config.sync_period / 2)

    def shutdown(self) -> None:
        self.agent.stop()
