"""The strategy interface every metadata management scheme implements.

A strategy answers exactly two questions for the client side:

- **write**: given the issuing node's site and a new entry, which
  registry instance(s) must be contacted, in which order, and which
  updates may be deferred?
- **read**: given the issuing site and a key, where is the entry looked
  up, and what happens on a miss?

Terminology is the paper's (Section IV): a *read* queries the metadata
registry for an entry; a *write* publishes a new entry and "actually
consists of a look-up read operation to verify whether the entry already
exists, followed by the actual write".

All strategy methods are simulation processes (generators); callers
``yield from`` them.  Every completed client operation is recorded in
:attr:`MetadataStrategy.stats`.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional

from repro.sim import Environment, Timeout
from repro.cloud.network import Network
from repro.metadata.config import MetadataConfig
from repro.obs import NULL_TRACER
from repro.metadata.consistency import ConsistencyTracker
from repro.metadata.entry import RegistryEntry
from repro.metadata.registry import MetadataRegistry
from repro.metadata.stats import OpKind, OpStats

__all__ = ["MetadataStrategy", "ReadMissError"]


class ReadMissError(Exception):
    """A required read exhausted its retries without finding the entry."""

    def __init__(self, key: str, site: str, retries: int):
        super().__init__(
            f"entry {key!r} not visible from {site} after {retries} retries"
        )
        self.key = key
        self.site = site
        self.retries = retries


class MetadataStrategy:
    """Base class wiring registries, the network and op accounting."""

    #: Human-readable strategy identifier (used in reports and figures).
    name: str = "abstract"

    def __init__(
        self,
        env: Environment,
        network: Network,
        sites: List[str],
        config: Optional[MetadataConfig] = None,
    ):
        if not sites:
            raise ValueError("need at least one site")
        self.env = env
        self.network = network
        self.sites = list(sites)
        self.config = config or MetadataConfig()
        self.config.validate()
        self.stats = OpStats()
        self.tracker = ConsistencyTracker(env)
        self.registries: Dict[str, MetadataRegistry] = {}
        # Observability: client-op events under "registry", with
        # per-kind latency histograms feeding the metrics plane (their
        # quantiles mirror OpStats.latency_percentile within the
        # documented sketch error).
        tr = getattr(env, "tracer", None) or NULL_TRACER
        self._tracer = tr
        self._trace_ops = tr.enabled and tr.wants("registry")
        if self._trace_ops:
            self._h_op = tr.metrics.histogram("ops.latency_s")
            self._h_read = tr.metrics.histogram("ops.read_latency_s")
            self._h_write = tr.metrics.histogram("ops.write_latency_s")
        else:
            self._h_op = self._h_read = self._h_write = None

    def _trace_op(
        self, kind: str, key: str, site: str, start: float,
        local: bool, retries: int = 0,
    ) -> None:
        """Emit one completed-op event + histogram samples (traced runs)."""
        latency = self.env.now - start
        self._tracer.emit(
            "registry", "op",
            kind=kind, key=key, site=site,
            latency=latency, local=local, retries=retries,
        )
        self._h_op.add(latency)
        if kind == "read":
            self._h_read.add(latency)
        elif kind == "write":
            self._h_write.add(latency)

    # -- public API ----------------------------------------------------------------

    def write(
        self, site: str, entry: RegistryEntry, run: str = ""
    ) -> Generator:
        """Process: publish ``entry`` from a node at ``site``.

        Returns the stored entry.  Implemented via ``_do_write`` in
        subclasses; this wrapper does the op accounting.  ``run`` tags
        the record with the originating workflow run so concurrent
        workflows sharing this strategy can attribute their ops.
        """
        start = self.env.now
        if self.config.client_overhead > 0:
            yield Timeout(self.env, self.config.client_overhead)
        stored, local = yield from self._do_write(site, entry)
        self.stats.record(
            OpKind.WRITE, entry.key, site, start, self.env.now,
            local, True, 0, run,
        )
        if self._trace_ops:
            self._trace_op("write", entry.key, site, start, local)
        return stored

    def read(
        self,
        site: str,
        key: str,
        require_found: bool = False,
        run: str = "",
    ) -> Generator:
        """Process: look up ``key`` from a node at ``site``.

        ``require_found`` is the workflow-dependency mode: the entry is
        known to exist globally (a producer task published it), so a
        miss means "not visible *here yet*" and the strategy polls with
        exponential backoff until visibility or retry exhaustion.
        Returns the entry, or ``None`` on a plain (allowed) miss.
        """
        start = self.env.now
        if self.config.client_overhead > 0:
            yield Timeout(self.env, self.config.client_overhead)
        retries = 0
        while True:
            entry, local = yield from self._do_read(site, key)
            if entry is not None or not require_found:
                break
            if retries >= self.config.read_max_retries:
                raise ReadMissError(key, site, retries)
            delay = min(
                self.config.read_retry_max_delay,
                self.config.read_retry_interval
                * (self.config.read_retry_backoff**retries),
            )
            yield Timeout(self.env, delay)
            retries += 1
        self.stats.record(
            OpKind.READ, key, site, start, self.env.now,
            local, entry is not None, retries, run,
        )
        if self._trace_ops:
            self._trace_op("read", key, site, start, local, retries)
        return entry

    def delete(self, site: str, key: str, run: str = "") -> Generator:
        """Process: remove ``key``'s metadata (rarely used by workflows)."""
        start = self.env.now
        existed, local = yield from self._do_delete(site, key)
        self.stats.record(
            OpKind.DELETE, key, site, start, self.env.now,
            local, existed, 0, run,
        )
        if self._trace_ops:
            self._trace_op("delete", key, site, start, local)
        return existed

    # -- hooks for subclasses ----------------------------------------------------------

    def _do_write(self, site: str, entry: RegistryEntry) -> Generator:
        """Yield the write protocol; return ``(stored_entry, was_local)``."""
        raise NotImplementedError

    def _do_read(self, site: str, key: str) -> Generator:
        """Yield the read protocol; return ``(entry_or_None, was_local)``."""
        raise NotImplementedError

    def _do_delete(self, site: str, key: str) -> Generator:
        raise NotImplementedError

    # -- shared building blocks ------------------------------------------------------

    def _client_write(
        self,
        from_site: str,
        registry: MetadataRegistry,
        entry: RegistryEntry,
    ) -> Generator:
        """The paper's write protocol against one registry instance:
        existence-check read, then the actual put."""
        if self.config.write_lookup:
            existing = yield from registry.rpc_get(
                self.network, from_site, entry.key
            )
            if existing is not None:
                entry = existing.merged_with(entry)
        stored = yield from registry.rpc_put(self.network, from_site, entry)
        return stored

    def shutdown(self) -> None:
        """Stop background processes (agents, pumps).  Default: none."""

    def flush(self) -> Generator:
        """Process: wait until all deferred propagation has drained.

        Default implementation returns immediately; strategies with lazy
        machinery override it.  Useful at the end of experiments before
        asserting global visibility.
        """
        return
        yield  # pragma: no cover - makes this a generator

    # -- introspection ----------------------------------------------------------------

    def registry_for_display(self) -> Dict[str, int]:
        """Entries per registry instance (diagnostics)."""
        return {site: len(reg) for site, reg in self.registries.items()}

    def total_entries(self) -> int:
        return sum(len(reg) for reg in self.registries.values())

    def __repr__(self) -> str:
        return f"<{type(self).__name__} sites={self.sites}>"
