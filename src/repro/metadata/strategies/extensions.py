"""Comparison strategies from the paper's related-work analysis.

Section VIII discusses the approaches the proposed strategies are
positioned against.  Implementing them makes those arguments
measurable:

- :class:`SubtreePartitionedStrategy` -- namespace subtree partitioning
  (PanFS/NFS-mount style): each top-level directory is pinned to one
  site.  Good locality, but "static partitioning suffers from severe
  bottleneck problems when a single file, directory, or directory
  subtree becomes popular" -- the hot-directory imbalance the
  ``test_ablation_subtree_vs_hashing`` bench quantifies.
- :class:`RelationalDBStrategy` -- the metadata-in-an-RDBMS baseline
  (e.g. Chiron): a centralized store whose per-operation cost carries
  transaction/locking overhead; the paper cites in-memory storage
  outperforming database storage by ~10x on Azure.
- :class:`KReplicatedStrategy` -- an *extension* of the hybrid scheme:
  entries are replicated to the first ``k`` distinct sites clockwise on
  the hash ring (preference list), trading write fan-out for read
  availability.  k=1 degenerates to the decentralized strategy.

All three plug into the :class:`ArchitectureController` registry.
"""

from __future__ import annotations

from typing import Generator, List, Optional

from repro.sim import Environment
from repro.cloud.network import Network
from repro.metadata.config import MetadataConfig
from repro.metadata.entry import RegistryEntry
from repro.metadata.hashring import ConsistentHashRing, stable_hash
from repro.metadata.registry import MetadataRegistry
from repro.metadata.strategies.base import MetadataStrategy

__all__ = [
    "KReplicatedStrategy",
    "RelationalDBStrategy",
    "SubtreePartitionedStrategy",
]


class SubtreePartitionedStrategy(MetadataStrategy):
    """Static namespace-subtree partitioning across sites.

    The *subtree* of a key is its top-level path component (``a/b/c``
    -> ``a``; flat names form their own singleton subtree).  Each
    subtree is statically assigned to a site by a stable hash, so all
    entries under one directory are co-located -- maximal directory
    locality, zero balance guarantees.
    """

    name = "subtree"

    def __init__(
        self,
        env: Environment,
        network: Network,
        sites: List[str],
        config: Optional[MetadataConfig] = None,
    ):
        super().__init__(env, network, sites, config)
        self.registries = {
            site: MetadataRegistry(env, site, self.config) for site in self.sites
        }

    @staticmethod
    def subtree_of(key: str) -> str:
        return key.split("/", 1)[0]

    def site_for(self, key: str) -> str:
        """The site owning the key's subtree."""
        subtree = self.subtree_of(key)
        return self.sites[stable_hash(subtree) % len(self.sites)]

    def _do_write(self, site: str, entry: RegistryEntry) -> Generator:
        owner = self.site_for(entry.key)
        registry = self.registries[owner]
        entry = entry.with_location(site) if site not in entry.locations else entry
        stored = yield from self._client_write(site, registry, entry)
        self.tracker.on_created(entry.key)
        self.tracker.on_fully_visible(entry.key)
        return stored, owner == site

    def _do_read(self, site: str, key: str) -> Generator:
        owner = self.site_for(key)
        entry = yield from self.registries[owner].rpc_get(
            self.network, site, key
        )
        return entry, owner == site

    def _do_delete(self, site: str, key: str) -> Generator:
        owner = self.site_for(key)
        existed = yield from self.network.rpc(
            site,
            owner,
            self.registries[owner].serve_delete(key),
            request_size=self.config.request_size,
            response_size=self.config.response_size,
        )
        return existed, owner == site

    def load_imbalance(self) -> float:
        """Max/mean entries per instance (1.0 = perfectly balanced)."""
        counts = [len(reg) for reg in self.registries.values()]
        mean = sum(counts) / len(counts)
        return max(counts) / mean if mean > 0 else 1.0


class RelationalDBStrategy(MetadataStrategy):
    """Centralized metadata kept in a relational database.

    Same topology as the centralized baseline, but every operation pays
    the transaction overhead factor -- the paper observes in-memory
    storage outperforming database storage by ~10x, and calls the DB
    approach "too heavy for metadata-intensive workloads".
    """

    name = "relational-db"

    #: Service-time multiplier over the in-memory cache (paper ref [24]).
    DB_OVERHEAD_FACTOR = 10.0

    def __init__(
        self,
        env: Environment,
        network: Network,
        sites: List[str],
        config: Optional[MetadataConfig] = None,
    ):
        super().__init__(env, network, sites, config)
        self.home_site = self.config.home_site or self.sites[0]
        db_config = MetadataConfig(
            **{
                **self.config.__dict__,
                "service_time": self.config.service_time
                * self.DB_OVERHEAD_FACTOR,
            }
        )
        self.registry = MetadataRegistry(env, self.home_site, db_config)
        self.registries = {self.home_site: self.registry}

    def _do_write(self, site: str, entry: RegistryEntry) -> Generator:
        entry = entry.with_location(site) if site not in entry.locations else entry
        stored = yield from self._client_write(site, self.registry, entry)
        self.tracker.on_created(entry.key)
        self.tracker.on_fully_visible(entry.key)
        return stored, site == self.home_site

    def _do_read(self, site: str, key: str) -> Generator:
        entry = yield from self.registry.rpc_get(self.network, site, key)
        return entry, site == self.home_site

    def _do_delete(self, site: str, key: str) -> Generator:
        existed = yield from self.network.rpc(
            site,
            self.home_site,
            self.registry.serve_delete(key),
            request_size=self.config.request_size,
            response_size=self.config.response_size,
        )
        return existed, site == self.home_site


class KReplicatedStrategy(MetadataStrategy):
    """DHT placement with a k-site preference-list replication factor.

    Writes store the entry at the first ``k`` distinct sites clockwise
    from the key's hash point (synchronously, nearest first); reads
    probe the preference list starting from the cheapest replica for
    the reading site.  An availability-oriented extension of the
    paper's hybrid scheme (which replicates at the *writer's* site
    instead).
    """

    name = "k-replicated"

    def __init__(
        self,
        env: Environment,
        network: Network,
        sites: List[str],
        config: Optional[MetadataConfig] = None,
        replication_factor: int = 2,
    ):
        super().__init__(env, network, sites, config)
        if replication_factor < 1:
            raise ValueError("replication_factor must be >= 1")
        self.k = min(replication_factor, len(self.sites))
        self.ring = ConsistentHashRing(
            self.sites, virtual_nodes=self.config.virtual_nodes
        )
        self.registries = {
            site: MetadataRegistry(env, site, self.config) for site in self.sites
        }

    def replica_sites(self, key: str) -> List[str]:
        return self.ring.preference_list(key, self.k)

    def _do_write(self, site: str, entry: RegistryEntry) -> Generator:
        entry = entry.with_location(site) if site not in entry.locations else entry
        replicas = self.replica_sites(entry.key)
        # Write nearest replica first so the caller-visible latency is
        # dominated by the closest copy; remaining copies follow
        # synchronously (strong durability variant).
        ordered = sorted(
            replicas,
            key=lambda s: self.network.topology.latency(site, s),
        )
        stored = None
        for target in ordered:
            stored = yield from self._client_write(
                site, self.registries[target], entry
            )
        self.tracker.on_created(entry.key)
        self.tracker.on_fully_visible(entry.key)
        return stored, all(s == site for s in ordered)

    def _do_read(self, site: str, key: str) -> Generator:
        replicas = self.replica_sites(key)
        nearest = min(
            replicas, key=lambda s: self.network.topology.latency(site, s)
        )
        entry = yield from self.registries[nearest].rpc_get(
            self.network, site, key
        )
        return entry, nearest == site

    def _do_delete(self, site: str, key: str) -> Generator:
        existed = False
        local = True
        for target in self.replica_sites(key):
            e = yield from self.network.rpc(
                site,
                target,
                self.registries[target].serve_delete(key),
                request_size=self.config.request_size,
                response_size=self.config.response_size,
            )
            existed = existed or e
            local = local and target == site
        return existed, local
