"""Decentralized, non-replicated metadata (Section IV-C).

A registry instance in every active site, with entries *partitioned*
across them by a DHT: hashing a distinctive attribute of the entry (the
file name) determines the single site storing it.  Contents of the
instances are disjoint shares of the global metadata set.

On average only ``1/n`` of operations are local, but queries are
processed in parallel by ``n`` instances -- trading per-op latency for
aggregate throughput, which is why this strategy's throughput scales
almost linearly with node count (Fig. 7) while the centralized baseline
stays flat.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional

from repro.sim import Environment
from repro.cloud.network import Network
from repro.metadata.config import MetadataConfig
from repro.metadata.entry import RegistryEntry
from repro.metadata.hashring import ConsistentHashRing
from repro.metadata.registry import MetadataRegistry
from repro.metadata.strategies.base import MetadataStrategy

__all__ = ["DecentralizedStrategy"]


class DecentralizedStrategy(MetadataStrategy):
    """DHT-partitioned registries, no replication."""

    name = "decentralized"

    def __init__(
        self,
        env: Environment,
        network: Network,
        sites: List[str],
        config: Optional[MetadataConfig] = None,
    ):
        super().__init__(env, network, sites, config)
        self.ring = ConsistentHashRing(
            self.sites, virtual_nodes=self.config.virtual_nodes
        )
        self.registries = {
            site: MetadataRegistry(env, site, self.config) for site in self.sites
        }
        #: key -> home-site memo.  The ring placement is a pure function
        #: of the key (BLAKE2b hashing, microseconds per lookup) and the
        #: strategy never changes ring membership, so every op after the
        #: first on a key resolves its home with one dict probe.
        self._home_memo: Dict[str, str] = {}

    def home_of(self, key: str) -> str:
        """The DHT home site of a key."""
        home = self._home_memo.get(key)
        if home is None:
            home = self.ring.site_for(key)
            self._home_memo[key] = home
        return home

    def _do_write(self, site: str, entry: RegistryEntry) -> Generator:
        home = self.home_of(entry.key)
        registry = self.registries[home]
        entry = entry.with_location(site) if site not in entry.locations else entry
        stored = yield from self._client_write(site, registry, entry)
        # Partitioned writes are globally visible as soon as stored:
        # every reader hashes to the same single instance.
        self.tracker.on_created(entry.key)
        self.tracker.on_fully_visible(entry.key)
        return stored, home == site

    def _do_read(self, site: str, key: str) -> Generator:
        home = self.home_of(key)
        entry = yield from self.registries[home].rpc_get(
            self.network, site, key
        )
        return entry, home == site

    def _do_delete(self, site: str, key: str) -> Generator:
        home = self.home_of(key)
        existed = yield from self.network.rpc(
            site,
            home,
            self.registries[home].serve_delete(key),
            request_size=self.config.request_size,
            response_size=self.config.response_size,
        )
        return existed, home == site
