"""Decentralized metadata *with local replication* (Section IV-D).

The paper's flagship hybrid: DHT partitioning plus a local replica at
the creating site.

- **Write**: the entry is first stored in the *local* registry instance
  (fast); its hash value is computed, and the entry is lazily pushed to
  the corresponding home site in batches.  When the hash maps to the
  local site, no replication is needed.
- **Read**: a two-step hierarchical lookup -- first the local instance
  (with uniform creation, twice the probability of a hit versus the
  non-replicated scheme), then the DHT home site.

The gain materializes for workflows with sequential (pipeline-like)
stages scheduled close to their producers: consecutive tasks find their
metadata locally and save the up-to-50x-slower remote round trip
(Fig. 3 of the paper).
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional

from repro.sim import Environment
from repro.cloud.network import Network
from repro.metadata.config import MetadataConfig
from repro.metadata.consistency import ReplicationPump
from repro.metadata.entry import RegistryEntry
from repro.metadata.hashring import ConsistentHashRing
from repro.metadata.registry import MetadataRegistry
from repro.metadata.strategies.base import MetadataStrategy

__all__ = ["HybridStrategy"]


class HybridStrategy(MetadataStrategy):
    """DHT-partitioned registries with lazy local replication."""

    name = "hybrid"

    def __init__(
        self,
        env: Environment,
        network: Network,
        sites: List[str],
        config: Optional[MetadataConfig] = None,
    ):
        super().__init__(env, network, sites, config)
        self.ring = ConsistentHashRing(
            self.sites, virtual_nodes=self.config.virtual_nodes
        )
        self.registries = {
            site: MetadataRegistry(env, site, self.config) for site in self.sites
        }
        # Lazy mode runs one replication pump per site; synchronous mode
        # needs none (the home copy is written inline).
        self.pumps: Dict[str, ReplicationPump] = (
            {}
            if self.config.hybrid_sync_replication
            else {
                site: ReplicationPump(
                    env,
                    network,
                    site,
                    self.registries,
                    self.config,
                    tracker=self.tracker,
                )
                for site in self.sites
            }
        )
        #: Reads answered by the local replica (vs. the DHT home).
        self.local_hits = 0
        self.local_misses = 0
        #: key -> home-site memo.  The ring placement is a pure function
        #: of the key (BLAKE2b hashing, microseconds per lookup) and the
        #: strategy never changes ring membership, so every op after the
        #: first on a key resolves its home with one dict probe.
        self._home_memo: Dict[str, str] = {}

    def home_of(self, key: str) -> str:
        home = self._home_memo.get(key)
        if home is None:
            home = self.ring.site_for(key)
            self._home_memo[key] = home
        return home

    def _do_write(self, site: str, entry: RegistryEntry) -> Generator:
        """Local write, then (sync or lazy) replication to the DHT home.

        The default synchronous mode follows the Section IV-D prototype:
        the home-site copy is stored before the write returns.  Lazy
        mode (``config.hybrid_sync_replication = False``) defers it to
        the site's replication pump, trading write latency for an
        eventual-visibility window at the home site (Section III-D).
        """
        local_registry = self.registries[site]
        entry = entry.with_location(site) if site not in entry.locations else entry
        entry = entry.evolve(origin_site=site, created_at=self.env.now)
        stored = yield from self._client_write(site, local_registry, entry)
        self.tracker.on_created(entry.key)
        home = self.home_of(entry.key)
        if home == site:
            # The local site IS the home: nothing to replicate.
            self.tracker.on_fully_visible(entry.key)
            return stored, True
        if self.config.hybrid_sync_replication:
            yield from self._client_write(
                site, self.registries[home], stored
            )
            self.tracker.on_fully_visible(entry.key)
            return stored, False
        self.pumps[site].enqueue(stored, home)
        return stored, True

    def _do_read(self, site: str, key: str) -> Generator:
        """Two-step hierarchical lookup: local replica, then DHT home."""
        local_registry = self.registries[site]
        entry = yield from local_registry.rpc_get(self.network, site, key)
        if entry is not None:
            self.local_hits += 1
            return entry, True
        home = self.home_of(key)
        if home == site:
            # Local *is* the home; the miss is authoritative.
            return None, True
        self.local_misses += 1
        entry = yield from self.registries[home].rpc_get(
            self.network, site, key
        )
        return entry, False

    def _do_delete(self, site: str, key: str) -> Generator:
        """Remove both the local replica (if any) and the home copy."""
        local_existed = yield from self.network.rpc(
            site,
            site,
            self.registries[site].serve_delete(key),
            request_size=self.config.request_size,
            response_size=self.config.response_size,
        )
        home = self.home_of(key)
        home_existed = local_existed
        if home != site:
            home_existed = yield from self.network.rpc(
                site,
                home,
                self.registries[home].serve_delete(key),
                request_size=self.config.request_size,
                response_size=self.config.response_size,
            )
        return local_existed or home_existed, home == site

    @property
    def local_hit_ratio(self) -> float:
        total = self.local_hits + self.local_misses
        return self.local_hits / total if total else 0.0

    def flush(self) -> Generator:
        """Wait until every pump's backlog has drained."""
        while any(p.backlog > 0 for p in self.pumps.values()):
            yield self.env.timeout(self.config.replication_flush_interval)

    def shutdown(self) -> None:
        for pump in self.pumps.values():
            pump.stop()
