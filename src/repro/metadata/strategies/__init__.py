"""The four multi-site metadata management strategies (Section IV)."""

from repro.metadata.strategies.base import MetadataStrategy
from repro.metadata.strategies.centralized import CentralizedStrategy
from repro.metadata.strategies.replicated import ReplicatedStrategy
from repro.metadata.strategies.decentralized import DecentralizedStrategy
from repro.metadata.strategies.hybrid import HybridStrategy
from repro.metadata.strategies.extensions import (
    KReplicatedStrategy,
    RelationalDBStrategy,
    SubtreePartitionedStrategy,
)

__all__ = [
    "CentralizedStrategy",
    "DecentralizedStrategy",
    "HybridStrategy",
    "KReplicatedStrategy",
    "MetadataStrategy",
    "RelationalDBStrategy",
    "ReplicatedStrategy",
    "SubtreePartitionedStrategy",
]
