"""Centralized metadata (Section IV-A) -- the state-of-the-art baseline.

A single registry instance, arbitrarily placed in one datacenter, serves
every node of the multi-site deployment.  Nodes co-located with the
registry enjoy fast local operations; everyone else pays the WAN on
every single metadata access, and all traffic funnels into one bounded
service queue -- the two effects that make this the baseline to beat.
"""

from __future__ import annotations

from typing import Generator, List, Optional

from repro.sim import Environment
from repro.cloud.network import Network
from repro.metadata.config import MetadataConfig
from repro.metadata.entry import RegistryEntry
from repro.metadata.registry import MetadataRegistry
from repro.metadata.strategies.base import MetadataStrategy

__all__ = ["CentralizedStrategy"]


class CentralizedStrategy(MetadataStrategy):
    """One registry instance at ``config.home_site`` serves all sites."""

    name = "centralized"

    def __init__(
        self,
        env: Environment,
        network: Network,
        sites: List[str],
        config: Optional[MetadataConfig] = None,
    ):
        super().__init__(env, network, sites, config)
        self.home_site = self.config.home_site or self.sites[0]
        if self.home_site not in self.sites:
            raise ValueError(
                f"home_site {self.home_site!r} not among sites {self.sites}"
            )
        self.registry = MetadataRegistry(env, self.home_site, self.config)
        self.registries = {self.home_site: self.registry}

    def _do_write(self, site: str, entry: RegistryEntry) -> Generator:
        entry = entry.with_location(site) if site not in entry.locations else entry
        stored = yield from self._client_write(site, self.registry, entry)
        # Centralized writes are immediately globally visible: every
        # reader consults the same instance.
        self.tracker.on_created(entry.key)
        self.tracker.on_fully_visible(entry.key)
        return stored, site == self.home_site

    def _do_read(self, site: str, key: str) -> Generator:
        entry = yield from self.registry.rpc_get(self.network, site, key)
        return entry, site == self.home_site

    def _do_delete(self, site: str, key: str) -> Generator:
        existed = yield from self.network.rpc(
            site,
            self.home_site,
            self.registry.serve_delete(key),
            request_size=self.config.request_size,
            response_size=self.config.response_size,
        )
        return existed, site == self.home_site
