"""Multi-site metadata management -- the paper's core contribution.

This package implements the middleware metadata service of Sections
III-V: versioned in-memory registry entries, a per-site registry built
on a primary/replica cache tier with optimistic concurrency, a DHT
(consistent hash ring) for entry placement, lazy batched cross-site
propagation, and the four management strategies:

- :class:`~repro.metadata.strategies.CentralizedStrategy` (baseline),
- :class:`~repro.metadata.strategies.ReplicatedStrategy` (per-site
  replicas + synchronization agent),
- :class:`~repro.metadata.strategies.DecentralizedStrategy` (DHT
  partitioned, non-replicated),
- :class:`~repro.metadata.strategies.HybridStrategy` (DHT partitioned
  with local replication -- the paper's best performer for
  metadata-intensive workloads).

The :class:`~repro.metadata.controller.ArchitectureController` selects
between strategies at run time, plug-and-play, as in Section V.
"""

from repro.metadata.config import MetadataConfig
from repro.metadata.entry import RegistryEntry, VersionConflict
from repro.metadata.cache import CacheManager, CacheFailure
from repro.metadata.hashring import ConsistentHashRing, ModuloPartitioner
from repro.metadata.registry import MetadataRegistry
from repro.metadata.stats import OpKind, OpRecord, OpStats
from repro.metadata.controller import ArchitectureController, StrategyName
from repro.metadata.strategies import (
    CentralizedStrategy,
    DecentralizedStrategy,
    HybridStrategy,
    MetadataStrategy,
    ReplicatedStrategy,
)

__all__ = [
    "ArchitectureController",
    "CacheFailure",
    "CacheManager",
    "CentralizedStrategy",
    "ConsistentHashRing",
    "DecentralizedStrategy",
    "HybridStrategy",
    "MetadataConfig",
    "MetadataRegistry",
    "MetadataStrategy",
    "ModuloPartitioner",
    "OpKind",
    "OpRecord",
    "OpStats",
    "RegistryEntry",
    "ReplicatedStrategy",
    "StrategyName",
    "VersionConflict",
]
