"""Lazy update propagation and eventual-consistency machinery.

Two propagation mechanisms, one per strategy family:

- :class:`SyncAgent` (replicated strategy, Section IV-B): a single
  dedicated worker that *sequentially* polls every registry instance for
  updates and pushes the merged set to all other instances.  Being a
  lone sequential agent is exactly what makes it a bottleneck past ~32
  nodes (Fig. 7) -- the model preserves that by running the poll/push
  loop as one process whose RPCs serialize.
- :class:`ReplicationPump` (hybrid strategy, Section IV-D): per-site
  queues of freshly written entries, flushed in batches to each entry's
  DHT home site ("lazy metadata updates ... asynchronously propagating
  metadata updates to all replicas after the updates are performed on
  one replica", Section III-D).

:class:`ConsistencyTracker` measures the *inconsistency window*: the
time between an entry's creation and the moment it becomes visible at
every responsible instance.  The paper argues this window is harmless
for workflow workloads; EXPERIMENTS.md quantifies it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional

from repro.sim import Environment, Store
from repro.cloud.network import Network
from repro.metadata.config import MetadataConfig
from repro.metadata.entry import RegistryEntry
from repro.metadata.registry import MetadataRegistry

__all__ = ["ConsistencyTracker", "ReplicationPump", "SyncAgent"]


class ConsistencyTracker:
    """Records creation -> full-visibility delays per entry."""

    def __init__(self, env: Environment):
        self.env = env
        self._created: Dict[str, float] = {}
        self.windows: List[float] = []

    def on_created(self, key: str) -> None:
        # First write wins: the window is measured from initial creation.
        self._created.setdefault(key, self.env.now)

    def on_fully_visible(self, key: str) -> None:
        created = self._created.pop(key, None)
        if created is not None:
            self.windows.append(self.env.now - created)

    @property
    def pending(self) -> int:
        """Entries created but not yet fully propagated."""
        return len(self._created)

    def mean_window(self) -> float:
        return sum(self.windows) / len(self.windows) if self.windows else 0.0

    def max_window(self) -> float:
        return max(self.windows) if self.windows else 0.0


class SyncAgent:
    """The replicated strategy's single synchronization worker.

    Implemented as an Azure worker role in the paper: "It sequentially
    queries the instances for updates and propagates them to the rest of
    the set."  One full cycle = poll each instance, then push each
    instance's fresh updates to every *other* instance, then sleep out
    the remainder of ``sync_period``.
    """

    def __init__(
        self,
        env: Environment,
        network: Network,
        registries: Dict[str, MetadataRegistry],
        config: MetadataConfig,
        agent_site: str,
        tracker: Optional[ConsistencyTracker] = None,
    ):
        if agent_site not in registries:
            raise ValueError(f"agent site {agent_site!r} has no registry")
        self.env = env
        self.network = network
        self.registries = registries
        self.config = config
        self.agent_site = agent_site
        self.tracker = tracker
        self._cursors: Dict[str, int] = {site: 0 for site in registries}
        self.cycles = 0
        self.entries_propagated = 0
        self.last_cycle_duration = 0.0
        self._process = env.process(self._run(), name="sync-agent")
        self._stopped = False

    def stop(self) -> None:
        """Stop the agent at the next safe point."""
        self._stopped = True

    # -- the agent loop -----------------------------------------------------------

    def _run(self) -> Generator:
        while not self._stopped:
            cycle_start = self.env.now
            yield from self._one_cycle()
            self.cycles += 1
            self.last_cycle_duration = self.env.now - cycle_start
            # Sleep out the remainder of the period; if the cycle overran
            # (the degradation regime), start the next one immediately.
            remaining = self.config.sync_period - self.last_cycle_duration
            if remaining > 0:
                yield self.env.timeout(remaining)

    def _one_cycle(self) -> Generator:
        """Poll every instance, then propagate deltas to the others."""
        deltas: Dict[str, List[RegistryEntry]] = {}
        for site, registry in self.registries.items():
            updates, new_cursor = yield from self.network.rpc(
                self.agent_site,
                site,
                registry.serve_updates_since(self._cursors[site]),
                request_size=self.config.request_size,
                response_size=self.config.response_size,
            )
            self._cursors[site] = new_cursor
            # Keep only updates originated at this site to avoid echoing
            # merges back and forth forever.
            deltas[site] = [u for u in updates if u.origin_site == site]

        for target_site, registry in self.registries.items():
            batch = [
                entry
                for src_site, entries in deltas.items()
                if src_site != target_site
                for entry in entries
            ]
            if not batch:
                continue
            yield from registry.rpc_merge_batch(
                self.network, self.agent_site, batch
            )
            self.entries_propagated += len(batch)
            # Note: the cursor is deliberately NOT advanced past the
            # merge we just injected -- client writes may have landed at
            # the target concurrently and must be picked up by the next
            # poll.  Echo suppression is handled by the origin-site
            # filter when polling, not by cursor arithmetic.

        if self.tracker is not None:
            for entries in deltas.values():
                for entry in entries:
                    self.tracker.on_fully_visible(entry.key)

    @property
    def lag(self) -> int:
        """Updates accumulated at instances but not yet propagated."""
        return sum(
            reg.cache.log_length - self._cursors[site]
            for site, reg in self.registries.items()
        )


@dataclass
class _PendingReplica:
    entry: RegistryEntry
    target_site: str
    enqueued_at: float


class ReplicationPump:
    """Per-site lazy replication queues for the hybrid strategy.

    Each site runs one pump process.  Writers enqueue freshly created
    entries; the pump groups them by DHT home site and flushes a batch
    whenever ``replication_batch_size`` entries accumulate or
    ``replication_flush_interval`` elapses, whichever comes first.
    """

    def __init__(
        self,
        env: Environment,
        network: Network,
        site: str,
        registries: Dict[str, MetadataRegistry],
        config: MetadataConfig,
        tracker: Optional[ConsistencyTracker] = None,
    ):
        self.env = env
        self.network = network
        self.site = site
        self.registries = registries
        self.config = config
        self.tracker = tracker
        self._queue: List[_PendingReplica] = []
        self._in_flight = 0
        self._wakeup = Store(env)
        self.batches_flushed = 0
        self.entries_replicated = 0
        self.max_queue_depth = 0
        self._stopped = False
        self._process = env.process(self._run(), name=f"repl-pump-{site}")

    def enqueue(self, entry: RegistryEntry, target_site: str) -> None:
        """Schedule ``entry`` for delivery to its DHT home site."""
        if target_site == self.site:
            raise ValueError("local entries need no replication")
        self._queue.append(
            _PendingReplica(entry, target_site, self.env.now)
        )
        self.max_queue_depth = max(self.max_queue_depth, len(self._queue))
        if len(self._queue) >= self.config.replication_batch_size:
            # Nudge the pump if it is sleeping on the flush interval.
            if len(self._wakeup.items) == 0:
                self._wakeup.put(True)

    def stop(self) -> None:
        self._stopped = True
        if len(self._wakeup.items) == 0:
            self._wakeup.put(True)

    @property
    def backlog(self) -> int:
        """Entries awaiting delivery, including batches in flight."""
        return len(self._queue) + self._in_flight

    def _run(self) -> Generator:
        while not self._stopped:
            # Wait for either the flush interval or a batch-full nudge.
            timeout = self.env.timeout(self.config.replication_flush_interval)
            nudge = self._wakeup.get()
            yield timeout | nudge
            if not nudge.triggered:
                nudge.cancel()
            if self._queue:
                yield from self._flush()
        # Drain on shutdown so no update is lost.
        if self._queue:
            yield from self._flush()

    def _flush(self) -> Generator:
        """Send all queued entries, one batch RPC per destination site."""
        pending, self._queue = self._queue, []
        self._in_flight += len(pending)
        by_target: Dict[str, List[_PendingReplica]] = {}
        for item in pending:
            by_target.setdefault(item.target_site, []).append(item)
        for target_site, items in sorted(by_target.items()):
            registry = self.registries[target_site]
            yield from registry.rpc_merge_batch(
                self.network, self.site, [i.entry for i in items]
            )
            self.batches_flushed += 1
            self.entries_replicated += len(items)
            self._in_flight -= len(items)
            if self.tracker is not None:
                for i in items:
                    self.tracker.on_fully_visible(i.entry.key)
