"""The in-memory cache tier backing each registry instance.

Models the managed-cache service of Section V: a dedicated cache layer,
separate from the application VMs, providing

- a flat key-value namespace (DHT-friendly -- no directory trees),
- **optimistic concurrency**: puts carry the expected version and fail
  with :class:`VersionConflict` if the entry moved underneath (no locks,
  exploiting the write-once/read-many workflow pattern),
- **high availability** through a primary + replica pair: if the primary
  fails, the replica is promoted and a fresh replica is repopulated,
  exactly as the paper describes for the standard cache tier.

The cache is a pure state container -- service *time* is charged by
:class:`~repro.metadata.registry.MetadataRegistry`, which queues
requests in front of this store.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.metadata.entry import RegistryEntry, VersionConflict

__all__ = ["CacheFailure", "CacheManager"]


class CacheFailure(Exception):
    """Raised when both primary and replica are unavailable."""


class _CacheInstance:
    """One physical cache process: a dict plus an append-only update log."""

    def __init__(self) -> None:
        self.data: Dict[str, RegistryEntry] = {}
        # Monotonic log of applied updates, enabling cursor-based "give me
        # everything since X" pulls by the synchronization agent.
        self.log: List[RegistryEntry] = []
        self.alive = True

    def snapshot(self) -> Dict[str, RegistryEntry]:
        return dict(self.data)


class CacheManager:
    """Primary/replica cache pair with optimistic concurrency.

    All mutating operations are applied to the primary and mirrored to
    the replica synchronously (intra-DC mirroring is cheap; the paper's
    HA cache tier does the same transparently).
    """

    def __init__(self, name: str = "cache"):
        self.name = name
        self._primary = _CacheInstance()
        self._replica = _CacheInstance()
        self.failovers = 0
        self.conflicts = 0

    # -- basic operations ----------------------------------------------------

    def get(self, key: str) -> Optional[RegistryEntry]:
        """Look up an entry; ``None`` if absent."""
        return self._live().data.get(key)

    def put(
        self,
        entry: RegistryEntry,
        expected_version: Optional[int] = None,
    ) -> RegistryEntry:
        """Insert/update an entry under optimistic concurrency.

        The put is a *merging upsert*: the paper's write protocol is a
        look-up read (does the entry exist?) followed by the actual
        write, so publishing a file from a second site must extend the
        location set, never drop the first site.  The server performs
        that check-and-merge here (one client RPC); clients with
        ``write_lookup`` enabled additionally probe first.

        ``expected_version`` of ``None`` means unconditional upsert;
        otherwise the put only succeeds if the stored version matches
        (optimistic concurrency).  Returns the entry as stored, with a
        bumped version.
        """
        store = self._live()
        current = store.data.get(entry.key)
        current_version = current.version if current is not None else 0
        if expected_version is not None and current_version != expected_version:
            self.conflicts += 1
            raise VersionConflict(entry.key, expected_version, current_version)
        merged = entry if current is None else current.merged_with(entry)
        stored = merged.with_version(current_version + 1)
        self._apply(stored)
        return stored

    def merge(self, entry: RegistryEntry) -> RegistryEntry:
        """Apply a propagated update: location-union/max-version merge.

        Merging is idempotent and commutative (see
        :meth:`RegistryEntry.merged_with`), the property that makes the
        lazy update scheme converge.
        """
        current = self._live().data.get(entry.key)
        stored = entry if current is None else current.merged_with(entry)
        self._apply(stored)
        return stored

    def delete(self, key: str) -> bool:
        """Remove an entry; returns whether it existed."""
        store = self._live()
        existed = key in store.data
        if existed:
            del store.data[key]
            if self._replica.alive:
                self._replica.data.pop(key, None)
        return existed

    def _apply(self, entry: RegistryEntry) -> None:
        p = self._live()
        p.data[entry.key] = entry
        p.log.append(entry)
        if p is self._primary and self._replica.alive:
            self._replica.data[entry.key] = entry
            self._replica.log.append(entry)

    # -- log access (for the synchronization agent) ---------------------------

    @property
    def log_length(self) -> int:
        return len(self._live().log)

    def updates_since(self, cursor: int) -> Tuple[List[RegistryEntry], int]:
        """Entries appended after ``cursor``; returns (batch, new_cursor)."""
        log = self._live().log
        if cursor < 0:
            raise ValueError("cursor must be >= 0")
        return list(log[cursor:]), len(log)

    # -- failure / HA ---------------------------------------------------------

    def fail_primary(self) -> None:
        """Kill the primary; promote the replica and rebuild a new one.

        Mirrors the paper's HA description: "If a failure occurs with
        the primary cache, the replica cache is automatically promoted
        to primary and a new replica is created and populated."
        """
        if not self._replica.alive:
            self._primary.alive = False
            raise CacheFailure(f"{self.name}: both instances down")
        self._primary = self._replica
        self._replica = _CacheInstance()
        self._replica.data = self._primary.snapshot()
        self._replica.log = list(self._primary.log)
        self.failovers += 1

    def fail_replica(self) -> None:
        """Kill the replica; a new empty one is created and repopulated."""
        self._replica = _CacheInstance()
        self._replica.data = self._primary.snapshot()
        self._replica.log = list(self._primary.log)
        self.failovers += 1

    def _live(self) -> _CacheInstance:
        if self._primary.alive:
            return self._primary
        raise CacheFailure(f"{self.name}: primary down and not failed over")

    # -- introspection ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._live().data)

    def __contains__(self, key: str) -> bool:
        return key in self._live().data

    def keys(self) -> Iterator[str]:
        return iter(self._live().data)

    def is_consistent_with_replica(self) -> bool:
        """HA invariant check: primary and replica hold identical data."""
        return self._primary.data == self._replica.data

    def __repr__(self) -> str:
        return f"<CacheManager {self.name} entries={len(self)}>"
