"""Deterministic random-number streams.

Experiments must be exactly reproducible and, crucially, *independent
across components*: adding a jitter draw in the network model must not
shift the sequence of file names drawn by a reader node.  We therefore
give every component its own named ``numpy`` Generator, derived from the
experiment master seed via SeedSequence spawning (the recommended
collision-resistant scheme).
"""

from __future__ import annotations

import zlib
from typing import Dict

import numpy as np

__all__ = ["RngStreams", "derive_seed"]


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a stable 32-bit sub-seed from a master seed and a label.

    Uses CRC32 of the label (stable across processes and Python versions,
    unlike ``hash``) folded into the master seed.
    """
    return (master_seed ^ zlib.crc32(name.encode("utf-8"))) & 0xFFFFFFFF


class RngStreams:
    """A registry of named, independent random generators.

    >>> streams = RngStreams(seed=42)
    >>> net = streams.get("network")
    >>> reader = streams.get("reader-3")
    >>> streams.get("network") is net   # same name -> same stream
    True
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return (creating if needed) the generator for ``name``."""
        if name not in self._streams:
            ss = np.random.SeedSequence(
                entropy=self.seed, spawn_key=(zlib.crc32(name.encode()),)
            )
            self._streams[name] = np.random.default_rng(ss)
        return self._streams[name]

    def reset(self) -> None:
        """Drop all streams; subsequent ``get`` calls start fresh."""
        self._streams.clear()

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def __repr__(self) -> str:
        return f"<RngStreams seed={self.seed} streams={len(self._streams)}>"
