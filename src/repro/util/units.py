"""Unit constants and formatting helpers.

Convention across the repository: time is in **seconds**, sizes in
**bytes**, bandwidth in **bytes/second**.
"""

from __future__ import annotations

__all__ = [
    "US",
    "MS",
    "MINUTES",
    "KB",
    "MB",
    "GB",
    "fmt_bytes",
    "fmt_duration",
]

US = 1e-6
MS = 1e-3
MINUTES = 60.0

KB = 1024
MB = 1024 * KB
GB = 1024 * MB


def fmt_bytes(n: float) -> str:
    """Human-readable byte count: ``fmt_bytes(3*MB) == '3.0 MB'``."""
    for unit, div in (("GB", GB), ("MB", MB), ("KB", KB)):
        if abs(n) >= div:
            return f"{n / div:.1f} {unit}"
    return f"{n:.0f} B"


def fmt_duration(seconds: float) -> str:
    """Human-readable duration: ``fmt_duration(90) == '1m30.0s'``."""
    if seconds < 0:
        return "-" + fmt_duration(-seconds)
    if seconds < 1:
        return f"{seconds * 1000:.1f}ms"
    if seconds < 60:
        return f"{seconds:.1f}s"
    minutes, rem = divmod(seconds, 60.0)
    if minutes < 60:
        return f"{int(minutes)}m{rem:04.1f}s"
    hours, minutes = divmod(int(minutes), 60)
    return f"{hours}h{minutes:02d}m{rem:04.1f}s"
