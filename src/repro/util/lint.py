"""Minimal static lint: unused imports.

The container has no third-party linter, so this module implements the
one check the repository enforces in CI (``tests/test_lint.py``): no
module may import a name it never uses.  Dead imports are how drift
accumulates -- a removed feature leaves its imports behind, and the next
reader assumes a dependency that does not exist.

The check is deliberately conservative (AST-based, no name resolution):

- a name counts as *used* if it appears anywhere as an identifier load,
  or as a word inside any string literal (which covers ``__all__``
  re-export lists and string-typed annotations such as
  ``"Generator | Any"``);
- ``__init__.py`` files are skipped entirely: their imports exist to
  re-export the package API;
- ``from __future__`` imports are always considered used.

Run standalone::

    python -m repro.util.lint [path ...]

Exit status: 0 = clean, 1 = findings (printed), 2 = bad path.
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path
from typing import Iterable, List, NamedTuple

__all__ = ["Finding", "check_file", "check_tree", "main"]

_WORD = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")


class Finding(NamedTuple):
    """One unused import: ``path:line: name``."""

    path: str
    line: int
    name: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: unused import '{self.name}'"


def _imported_names(tree: ast.AST) -> List[tuple]:
    out = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                # ``import a.b.c`` binds ``a``; ``import a.b as x`` binds x.
                bound = alias.asname or alias.name.split(".")[0]
                out.append((bound, node.lineno))
        elif isinstance(node, ast.ImportFrom):
            if node.module == "__future__":
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                out.append((alias.asname or alias.name, node.lineno))
    return out


def _used_names(tree: ast.AST) -> set:
    used = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            used.add(node.id)
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            # __all__ entries, doctest text, string annotations.
            used.update(_WORD.findall(node.value))
    return used


def check_file(path: "Path | str") -> List[Finding]:
    """Unused-import findings for one Python source file."""
    path = Path(path)
    tree = ast.parse(path.read_text(), filename=str(path))
    used = _used_names(tree)
    return [
        Finding(str(path), line, name)
        for name, line in _imported_names(tree)
        if name not in used
    ]


def check_tree(root: "Path | str") -> List[Finding]:
    """Findings for every ``*.py`` under ``root`` (``__init__`` exempt)."""
    root = Path(root)
    if not root.exists():
        raise FileNotFoundError(f"lint target {root} does not exist")
    files: Iterable[Path] = (
        [root] if root.is_file() else sorted(root.rglob("*.py"))
    )
    findings: List[Finding] = []
    for f in files:
        if f.name == "__init__.py":
            continue
        findings.extend(check_file(f))
    return findings


def main(argv=None) -> int:
    paths = (argv if argv is not None else sys.argv[1:]) or ["src"]
    findings: List[Finding] = []
    for p in paths:
        try:
            findings.extend(check_tree(p))
        except FileNotFoundError as exc:
            print(f"lint: error: {exc}", file=sys.stderr)
            return 2
    for finding in findings:
        print(finding)
    if not findings:
        print("lint: clean")
    return 1 if findings else 0


if __name__ == "__main__":
    raise SystemExit(main())
