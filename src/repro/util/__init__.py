"""Shared utilities: deterministic RNG streams and unit helpers."""

from repro.util.rng import RngStreams, derive_seed
from repro.util.units import (
    GB,
    KB,
    MB,
    MINUTES,
    MS,
    US,
    fmt_bytes,
    fmt_duration,
)

__all__ = [
    "GB",
    "KB",
    "MB",
    "MINUTES",
    "MS",
    "US",
    "RngStreams",
    "derive_seed",
    "fmt_bytes",
    "fmt_duration",
]
