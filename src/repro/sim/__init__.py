"""Discrete-event simulation kernel.

This package is the execution substrate for the whole reproduction: the
multi-site cloud, the metadata registries, the workflow engine and every
experiment run on top of a simulated clock instead of wall-clock time.
Using virtual time makes WAN latency emulation exact and deterministic
(the paper's testbed latencies become model parameters, not sleeps).

The programming model follows the classic process-based DES style
(generators yielding events), so simulation code reads like sequential
pseudo-code of the distributed protocol it models::

    env = Environment()

    def client(env, registry):
        yield env.timeout(0.5)          # think time
        with registry.request() as req:  # queue at a bounded resource
            yield req
            yield env.timeout(0.001)     # service time

    env.process(client(env, registry))
    env.run()

Public API
----------
- :class:`Environment` -- event loop and virtual clock.
- :class:`Event`, :class:`Timeout`, :class:`Process` -- awaitables.
- :class:`AllOf`, :class:`AnyOf` -- condition events.
- :class:`Interrupt` -- cooperative process interruption.
- :class:`Resource`, :class:`PriorityResource` -- bounded servers with queues.
- :class:`Store`, :class:`FilterStore` -- producer/consumer channels.
- :class:`Container` -- continuous-quantity resource.
"""

from repro.sim.core import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    EventPriority,
    Interrupt,
    Process,
    SimulationError,
    StopSimulation,
    Timeout,
)
from repro.sim.resources import (
    Container,
    FilterStore,
    PreemptivePriorityResource,
    PriorityRequest,
    PriorityResource,
    Preempted,
    Request,
    Resource,
    Store,
)

__all__ = [
    "AllOf",
    "AnyOf",
    "Container",
    "Environment",
    "Event",
    "EventPriority",
    "FilterStore",
    "Interrupt",
    "Preempted",
    "PreemptivePriorityResource",
    "PriorityRequest",
    "PriorityResource",
    "Process",
    "Request",
    "Resource",
    "SimulationError",
    "StopSimulation",
    "Store",
    "Timeout",
]
