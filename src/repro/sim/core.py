"""Core event loop, events and processes for the simulation kernel.

The design mirrors the well-known process-interaction DES architecture:

- an :class:`Environment` owns an event calendar keyed by ``(time,
  priority, sequence)`` so simultaneous events fire in a stable,
  deterministic order;
- an :class:`Event` is a one-shot awaitable that moves through the states
  *pending -> triggered -> processed* and fans out to callbacks;
- a :class:`Process` wraps a Python generator; each ``yield`` suspends the
  process until the yielded event fires, and event values/exceptions are
  sent/thrown back into the generator.

Determinism is a hard requirement here (experiments must be exactly
reproducible), hence the explicit tie-breaking sequence counter and the
absence of any wall-clock or hash-order dependence.

Kernel-level optimizations serve high event-churn workloads (the
flow-level bandwidth model reschedules every affected transfer whenever
a flow starts or finishes):

- ``Event``/``Timeout``/``Process`` declare ``__slots__``;
- calendar entries are lazily deleted: :meth:`Environment.reschedule`
  invalidates the old heap entry in O(1) and pushes a re-keyed one in
  O(log n), instead of rebuilding the heap.  Dead entries are skipped
  (and purged) as they surface, and when more than half the calendar is
  dead the whole queue is compacted in one O(n) pass so rebalance churn
  can never grow the calendar without bound;
- two interchangeable calendar backends sit behind the same
  ``Environment`` API: the default binary heap, and a bucketed calendar
  queue (``Environment(queue="bucket")``) that spreads entries over
  fixed-width time buckets with a small heap per bucket.  Pop order is
  identical by construction (both orders are the total order on the
  ``(time, priority, sequence)`` key), which
  ``tests/sim/test_queue_backends.py`` pins down.

See ``docs/performance.md`` for the profiling workflow these choices
came from.
"""

from __future__ import annotations

import heapq
from heapq import heappop, heappush
from itertools import count
from typing import (
    Any,
    Callable,
    Generator,
    Iterable,
    List,
    Optional,
    Tuple,
)

__all__ = [
    "AllOf",
    "AnyOf",
    "ConditionEvent",
    "Environment",
    "Event",
    "EventPriority",
    "Interrupt",
    "Process",
    "SimulationError",
    "StopSimulation",
    "Timeout",
]

_INF = float("inf")


class SimulationError(Exception):
    """Base class for errors raised by the simulation kernel itself."""


class StopSimulation(Exception):
    """Raised internally to halt :meth:`Environment.run` early.

    Users normally stop a run by passing ``until`` to
    :meth:`Environment.run`; this exception also supports
    :meth:`Environment.exit`-style termination from inside a process.
    """

    def __init__(self, value: Any = None):
        super().__init__(value)
        self.value = value


class EventPriority:
    """Symbolic priorities for same-timestamp event ordering.

    Lower values fire first.  ``URGENT`` is used by the kernel for process
    bootstrapping and interrupts so they preempt normal activity scheduled
    at the same instant; ``NORMAL`` is the default for user events.
    """

    URGENT = 0
    NORMAL = 1
    LOW = 2


# Sentinel distinguishing "no value yet" from a legitimate ``None`` value.
_PENDING = object()


class Event:
    """A one-shot occurrence that other entities can wait on.

    An event starts *pending*.  Calling :meth:`succeed` or :meth:`fail`
    *triggers* it, scheduling it on the environment's calendar; when the
    event loop pops it, the event becomes *processed* and its callbacks run.

    Attributes
    ----------
    env:
        Owning :class:`Environment`.
    callbacks:
        List of callables invoked with the event once processed.  ``None``
        after processing (appending then is an error, caught explicitly).
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "defused", "_entry")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        #: Set when a failed event's exception was delivered to at least one
        #: waiter (or explicitly defused); undelivered failures surface at
        #: the end of the run so errors cannot vanish silently.
        self.defused = False
        #: Live calendar entry while scheduled (lazy-deletion handle).
        self._entry: Optional[list] = None

    # -- state inspection -------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has a value/exception scheduled."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have been executed."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise SimulationError("Event not yet triggered; 'ok' undefined")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception instance for failed events)."""
        if self._value is _PENDING:
            raise SimulationError("Event not yet triggered; no value")
        return self._value

    # -- triggering -------------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self, EventPriority.NORMAL)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception to be thrown into waiters."""
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = False
        self._value = exception
        self.env._schedule(self, EventPriority.NORMAL)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another (callback helper).

        The source event must itself be triggered already; forwarding a
        still-pending event would otherwise read as "failed" (``_ok`` is
        ``None``) and surface as a baffling ``TypeError`` from
        :meth:`fail` receiving the ``_PENDING`` sentinel.
        """
        if event._value is _PENDING:
            raise SimulationError(
                f"cannot forward the state of {event!r}: it has not been "
                "triggered yet"
            )
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(event._value)

    # -- composition ------------------------------------------------------

    def __and__(self, other: "Event") -> "AllOf":
        return AllOf(self.env, [self, other])

    def __or__(self, other: "Event") -> "AnyOf":
        return AnyOf(self.env, [self, other])

    def __repr__(self) -> str:
        state = (
            "processed"
            if self.processed
            else "triggered" if self.triggered else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed simulated delay."""

    __slots__ = ("_delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"Negative delay {delay!r}")
        # Flattened Event.__init__ + triggering: a timeout is born
        # triggered, and this constructor sits on the hottest allocation
        # path in the simulator (every network leg and service time is a
        # Timeout), so it pays to skip the two-level super() chain.
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self.defused = False
        self._delay = delay
        # Inlined Environment._schedule (NORMAL priority): one less call
        # on the single most frequent allocation in the simulator.
        entry = [env.now + delay, 1, next(env._seq), self]
        self._entry = entry
        if env._bucket is None:
            heappush(env._queue, entry)
        else:
            env._bucket.push(entry)
        if env._trace_kernel:
            env.tracer.emit(
                "kernel", "schedule",
                t=entry[0], prio=1, kind="Timeout", depth=len(env._queue),
            )

    def __repr__(self) -> str:
        return f"<Timeout delay={self._delay}>"


class Initialize(Event):
    """Kernel event that starts a freshly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process"):
        self.env = env
        self.callbacks = [process._resume]
        self._value = None
        self._ok = True
        self.defused = False
        # Inlined Environment._schedule (URGENT priority, zero delay).
        entry = [env.now, 0, next(env._seq), self]
        self._entry = entry
        if env._bucket is None:
            heappush(env._queue, entry)
        else:
            env._bucket.push(entry)
        if env._trace_kernel:
            env.tracer.emit(
                "kernel", "schedule",
                t=entry[0], prio=0, kind="Initialize", depth=len(env._queue),
            )


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    The ``cause`` carries arbitrary context (e.g. "preempted", a failed
    node id).  Interrupts are cooperative: the target may catch the
    exception and keep running.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)

    @property
    def cause(self) -> Any:
        return self.args[0]

    def __str__(self) -> str:
        return f"Interrupt({self.args[0]!r})"


class Process(Event):
    """Wraps a generator; the process event fires when the generator ends.

    Yield semantics inside the generator:

    - ``yield some_event`` suspends until the event fires; its value is the
      result of the ``yield`` expression, or the exception is thrown in.
    - ``return value`` (or ``StopIteration``) makes the process event
      succeed with ``value``, waking anything waiting on the process.
    """

    __slots__ = ("_generator", "name", "_target")

    def __init__(self, env: "Environment", generator: Generator, name: str = ""):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        #: The event this process is currently waiting on (None if running
        #: or finished).  Needed for interrupt bookkeeping.
        self._target: Optional[Event] = None
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not terminated."""
        return self._value is _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process as soon as possible.

        Interrupting a dead process is an error; interrupting a process
        that is about to be resumed is safe (the interrupt wins because it
        is scheduled URGENT).
        """
        if not self.is_alive:
            raise SimulationError(f"{self!r} has terminated; cannot interrupt")
        if self._target is self.env.active_process:
            raise SimulationError("A process cannot interrupt itself")
        wakeup = Event(self.env)
        wakeup._ok = False
        wakeup._value = Interrupt(cause)
        wakeup.callbacks = [self._resume]
        self.env._schedule(wakeup, EventPriority.URGENT)
        # Detach from the event we were waiting on: it must no longer
        # resume us when it fires (we might be waiting on something new by
        # then, or be dead).
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
            self._target = None

    def _resume(self, event: Event) -> None:
        """Advance the generator with the fired event's outcome."""
        env = self.env
        env._active_process = self
        self._target = None
        try:
            if event._ok:
                next_target = self._generator.send(event._value)
            else:
                # Exceptions delivered into a process count as handled.
                event.defused = True
                next_target = self._generator.throw(event._value)
        except StopIteration as stop:
            env._active_process = None
            self.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - process crashed
            env._active_process = None
            self.fail(exc)
            return
        env._active_process = None

        if not isinstance(next_target, Event):
            raise SimulationError(
                f"Process {self.name!r} yielded non-event {next_target!r}"
            )
        if next_target.env is not env:
            raise SimulationError(
                f"Process {self.name!r} yielded event from another environment"
            )
        if next_target.callbacks is None:
            # Already processed: resume immediately at the same instant.
            immediate = Event(env)
            immediate._ok = next_target._ok
            immediate._value = next_target._value
            immediate.callbacks = [self._resume]
            env._schedule(immediate, EventPriority.URGENT)
            self._target = immediate
        else:
            next_target.callbacks.append(self._resume)
            self._target = next_target

    def __repr__(self) -> str:
        return f"<Process {self.name!r} {'alive' if self.is_alive else 'done'}>"


class ConditionEvent(Event):
    """Base for events that fire when a predicate over child events holds."""

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self._events: Tuple[Event, ...] = tuple(events)
        self._fired: List[Event] = []
        for ev in self._events:
            if ev.env is not env:
                raise SimulationError("Condition mixes environments")
            if ev.callbacks is None:  # already processed
                self._check(ev)
            else:
                ev.callbacks.append(self._check)
        # An empty condition is trivially satisfied.
        if not self._events and self._value is _PENDING:
            self.succeed({})

    def _predicate(self, fired: int, total: int) -> bool:
        raise NotImplementedError

    def _check(self, event: Event) -> None:
        if self._value is not _PENDING:
            return
        if not event._ok:
            event.defused = True
            self.fail(event._value)
            return
        self._fired.append(event)
        if self._predicate(len(self._fired), len(self._events)):
            self.succeed(self._collect())

    def _collect(self) -> dict:
        """Map each child event that actually *fired* to its value.

        Note: a Timeout carries its value from construction, so "has a
        value" is not the same as "has fired" -- only events whose
        callbacks ran are included.
        """
        return {ev: ev._value for ev in self._fired}


class AllOf(ConditionEvent):
    """Fires when *all* child events have fired (fails fast on failure)."""

    def _predicate(self, fired: int, total: int) -> bool:
        return fired == total


class AnyOf(ConditionEvent):
    """Fires when *any* child event has fired."""

    def _predicate(self, fired: int, total: int) -> bool:
        return fired >= 1


class BucketQueue:
    """A calendar (bucketed) event queue with heap-identical pop order.

    Entries are spread over fixed-width time buckets; each bucket is a
    small binary heap on the full ``(time, priority, seq)`` key and a
    heap of bucket indices tracks the earliest non-empty bucket.  Events
    at non-finite times (the flow model parks stalled transfers at
    ``inf``) live in a dedicated overflow heap that is only consulted
    when every finite bucket has drained.

    Because the bucket index is monotone in time, the minimum entry of
    the earliest non-empty bucket *is* the global minimum, so the pop
    sequence equals the plain heap's for any push/pop interleaving --
    the property that lets the two backends sit behind one
    ``Environment`` API with bit-for-bit identical simulations.
    """

    __slots__ = ("width", "_buckets", "_idx_heap", "_overflow", "_size")

    def __init__(self, width: float = 1.0):
        if not (width > 0):
            raise ValueError(f"bucket width must be positive, got {width!r}")
        self.width = float(width)
        self._buckets: dict = {}
        self._idx_heap: List[int] = []
        self._overflow: List[list] = []
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def push(self, entry: list) -> None:
        when = entry[0]
        if when == _INF or when != when:  # inf or NaN-safe guard
            heappush(self._overflow, entry)
        else:
            idx = int(when / self.width)
            bucket = self._buckets.get(idx)
            if bucket:
                heappush(bucket, entry)
            else:
                # New or drained bucket: (re)announce its index.  A
                # drained bucket's index may still sit in the index heap;
                # duplicates are harmless (skipped when found empty).
                if bucket is None:
                    self._buckets[idx] = [entry]
                else:
                    bucket.append(entry)
                heappush(self._idx_heap, idx)
        self._size += 1

    def _min_bucket(self) -> Optional[list]:
        idx_heap = self._idx_heap
        buckets = self._buckets
        while idx_heap:
            bucket = buckets.get(idx_heap[0])
            if bucket:
                return bucket
            heappop(idx_heap)
        return None

    def peek_entry(self) -> Optional[list]:
        """The minimum entry without removing it (None when empty)."""
        bucket = self._min_bucket()
        if bucket is not None:
            return bucket[0]
        return self._overflow[0] if self._overflow else None

    def pop(self) -> list:
        """Remove and return the minimum entry (IndexError when empty)."""
        bucket = self._min_bucket()
        if bucket is None:
            bucket = self._overflow
        entry = heappop(bucket)
        self._size -= 1
        return entry

    def compact(self) -> None:
        """Drop lazily-deleted entries and rebuild the bucket heaps."""
        alive = 0
        for idx in list(self._buckets):
            bucket = [e for e in self._buckets[idx] if e[3] is not None]
            if bucket:
                heapq.heapify(bucket)
                self._buckets[idx] = bucket
                alive += len(bucket)
            else:
                del self._buckets[idx]
        self._idx_heap = sorted(self._buckets)
        self._overflow = [e for e in self._overflow if e[3] is not None]
        heapq.heapify(self._overflow)
        self._size = alive + len(self._overflow)


#: Compaction is considered once the calendar holds this many entries.
_COMPACT_MIN = 64


class Environment:
    """The event loop: virtual clock plus a deterministic event calendar.

    Calendar entries are mutable 4-slot lists ``[time, priority, seq,
    event]``; cancelling or rescheduling an entry sets its event slot to
    ``None`` (lazy deletion) instead of removing it from the queue.  Dead
    entries are discarded as they surface at the queue head, and
    :meth:`cancel`/:meth:`reschedule` trigger a full O(n) compaction
    whenever more than half of a non-trivial calendar is dead, so heavy
    rebalance churn cannot grow the calendar without bound.

    Parameters
    ----------
    initial_time:
        Starting value of the virtual clock.
    queue:
        Calendar backend: ``"heap"`` (default; a single binary heap) or
        ``"bucket"`` (a calendar queue of fixed-width time buckets --
        see :class:`BucketQueue`).  Both produce identical simulations.
    bucket_width:
        Bucket span in simulated seconds for the ``"bucket"`` backend
        (ignored by ``"heap"``).
    """

    def __init__(
        self,
        initial_time: float = 0.0,
        queue: str = "heap",
        bucket_width: float = 1.0,
    ):
        #: Current simulated time (seconds by convention in this repo).
        #: A plain attribute, not a property: the kernel reads it on
        #: every schedule and the model layers on every op, so the
        #: descriptor overhead was measurable.  Treat it as read-only.
        self.now = float(initial_time)
        if queue == "heap":
            self._queue: Any = []
            self._bucket: Optional[BucketQueue] = None
        elif queue == "bucket":
            self._bucket = BucketQueue(bucket_width)
            self._queue = self._bucket
        else:
            raise ValueError(
                f"unknown queue backend {queue!r}; expected 'heap' or 'bucket'"
            )
        self._seq = count()
        self._dead = 0
        self._active_process: Optional[Process] = None
        #: Observability hook (a ``repro.obs.Tracer``), attached via
        #: :meth:`attach_tracer`; ``None`` while tracing is off.
        #: ``_trace_kernel`` caches ``tracer.wants("kernel")`` as a plain
        #: bool so the hot paths pay one attribute load and a falsy
        #: branch when disabled.
        self.tracer = None
        self._trace_kernel = False
        #: Events dispatched by :meth:`run`/:meth:`step` over this
        #: environment's lifetime -- the cheapest observability counter,
        #: maintained whether or not a tracer is attached.
        self.events_processed = 0

    # -- clock ------------------------------------------------------------

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_process

    @property
    def queue_backend(self) -> str:
        """Which calendar implementation this environment runs on."""
        return "heap" if self._bucket is None else "bucket"

    @property
    def queued(self) -> int:
        """Calendar entries currently held (live + lazily-deleted)."""
        return len(self._queue)

    def attach_tracer(self, tracer) -> None:
        """Hook an observability tracer (``repro.obs.Tracer``) in.

        Must happen before the components under observation are built:
        they cache ``tracer.wants(category)`` booleans at construction.
        The tracer only *records*; it never schedules events or consumes
        randomness, so attaching one cannot change simulated behaviour.
        """
        self.tracer = tracer
        self._trace_kernel = bool(
            tracer is not None and tracer.enabled and tracer.wants("kernel")
        )

    # -- event factories ----------------------------------------------------

    def event(self) -> Event:
        """Create a new pending event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event firing ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Start a new process from ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling ---------------------------------------------------------

    def _schedule(
        self, event: Event, priority: int, delay: float = 0.0
    ) -> None:
        entry = [self.now + delay, priority, next(self._seq), event]
        event._entry = entry
        if self._bucket is None:
            heappush(self._queue, entry)
        else:
            self._bucket.push(entry)
        if self._trace_kernel:
            self.tracer.emit(
                "kernel", "schedule",
                t=entry[0], prio=priority, kind=type(event).__name__,
                depth=len(self._queue),
            )

    def reschedule(
        self,
        event: Event,
        delay: float,
        priority: Optional[int] = None,
    ) -> None:
        """Move a scheduled, not-yet-processed event to fire ``delay`` from now.

        O(log n): the old calendar entry is lazily deleted in place and a
        re-keyed entry is pushed.  This is the primitive the flow-level
        bandwidth model leans on -- every fair-share rebalance reschedules
        the completion of each affected transfer.  The entry's priority
        is preserved unless a new one is given.
        """
        if delay < 0:
            raise ValueError(f"Negative delay {delay!r}")
        entry = event._entry
        if entry is None or entry[3] is None or event.processed:
            raise SimulationError(f"{event!r} is not scheduled; cannot reschedule")
        entry[3] = None  # lazy-delete the stale entry
        self._schedule(event, entry[1] if priority is None else priority, delay)
        if self._trace_kernel:
            self.tracer.emit(
                "kernel", "reschedule",
                old_t=entry[0], t=event._entry[0], depth=len(self._queue),
            )
        self._note_dead()

    def cancel(self, event: Event) -> None:
        """Withdraw a scheduled, not-yet-processed event from the calendar.

        O(1) lazy deletion: the entry stays in the queue but is skipped
        (and purged) when it surfaces.  The event will never fire.
        """
        entry = event._entry
        if entry is None or entry[3] is None or event.processed:
            raise SimulationError(f"{event!r} is not scheduled; cannot cancel")
        entry[3] = None
        event._entry = None
        if self._trace_kernel:
            self.tracer.emit(
                "kernel", "cancel", t=entry[0], depth=len(self._queue)
            )
        self._note_dead()

    def _note_dead(self) -> None:
        """Account one lazily-deleted entry; compact past the 50% mark."""
        self._dead += 1
        size = len(self._queue)
        if size > _COMPACT_MIN and self._dead * 2 > size:
            self._compact()

    def _compact(self) -> None:
        """Drop every dead entry in one pass and restore the heap shape.

        Mutates the existing queue object in place (local aliases held
        by a running :meth:`run` loop stay valid).  Order is unaffected:
        entries are totally ordered by their unique ``(time, priority,
        seq)`` key, so re-heapifying the surviving entries cannot change
        the pop sequence.
        """
        if self._bucket is None:
            queue = self._queue
            queue[:] = [e for e in queue if e[3] is not None]
            heapq.heapify(queue)
        else:
            self._bucket.compact()
        self._dead = 0

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none.

        Purges lazily-deleted entries from the queue head as a side effect.
        """
        queue = self._queue
        if self._bucket is None:
            while queue and queue[0][3] is None:
                heappop(queue)
                self._dead -= 1
            return queue[0][0] if queue else _INF
        while queue:
            entry = queue.peek_entry()
            if entry[3] is not None:
                return entry[0]
            queue.pop()
            self._dead -= 1
        return _INF

    def step(self) -> None:
        """Pop and process exactly one (live) event."""
        queue = self._queue
        if self._bucket is None:
            while queue:
                entry = heappop(queue)
                event = entry[3]
                if event is not None:
                    break
                self._dead -= 1  # lazily-deleted (cancelled or rescheduled)
            else:
                raise SimulationError("No scheduled events")
        else:
            while queue:
                entry = queue.pop()
                event = entry[3]
                if event is not None:
                    break
                self._dead -= 1
            else:
                raise SimulationError("No scheduled events")
        self.now = entry[0]
        self.events_processed += 1
        if self._trace_kernel:
            self.tracer.emit(
                "kernel", "pop",
                t=entry[0], prio=entry[1], depth=len(queue),
            )
        event._entry = None
        callbacks = event.callbacks
        event.callbacks = None
        for cb in callbacks:
            cb(event)
        if not event._ok and not event.defused:
            # A failure nobody waited on: surface it rather than lose it.
            raise event._value

    def run(self, until: Optional[Any] = None) -> Any:
        """Run until the calendar drains, a time is reached, or an event fires.

        Parameters
        ----------
        until:
            ``None`` -- run to exhaustion; a number -- run until that
            simulated time; an :class:`Event` -- run until it fires, and
            return its value (or raise its exception if it failed --
            the same contract whether the event fires during this call
            or had already been processed before it).
        """
        stop_event: Optional[Event] = None
        if until is None:
            deadline = _INF
        elif isinstance(until, Event):
            stop_event = until
            deadline = _INF
            if stop_event.processed:
                # Mirror the post-loop path: a failed 'until' event
                # raises instead of handing back the exception object.
                if not stop_event._ok:
                    raise stop_event._value
                return stop_event._value
        else:
            deadline = float(until)
            if deadline < self.now:
                raise ValueError(
                    f"until={deadline} is in the past (now={self.now})"
                )

        # The loop below is Environment.step() inlined: the entry at the
        # head was already verified live, so popping and dispatching it
        # here avoids a re-peek and a method call per event -- this is
        # the hottest loop in the whole simulator.
        queue = self._queue
        heap_mode = self._bucket is None
        trace = self._trace_kernel
        processed = 0
        # The dispatch count is kept in a local and folded back in the
        # finally block (the loop has three exits: break, early return,
        # raise) -- one C-level int add per event instead of an
        # attribute store, keeping the tracing-off cost unmeasurable.
        try:
            while queue:
                if stop_event is not None and stop_event.callbacks is None:
                    break  # the 'until' event has been processed
                # Inline peek: purge dead entries, read the horizon.
                if heap_mode:
                    entry = queue[0]
                    if entry[3] is None:
                        heappop(queue)
                        self._dead -= 1
                        continue
                else:
                    entry = queue.peek_entry()
                    if entry[3] is None:
                        queue.pop()
                        self._dead -= 1
                        continue
                if entry[0] > deadline:
                    self.now = deadline
                    break
                if heap_mode:
                    heappop(queue)
                else:
                    queue.pop()
                event = entry[3]
                self.now = entry[0]
                processed += 1
                if trace:
                    self.tracer.emit(
                        "kernel", "pop",
                        t=entry[0], prio=entry[1], depth=len(queue),
                    )
                event._entry = None
                callbacks = event.callbacks
                event.callbacks = None
                try:
                    for cb in callbacks:
                        cb(event)
                except StopSimulation as stop:
                    return stop.value
                if not event._ok and not event.defused:
                    # A failure nobody waited on: surface it, don't lose it.
                    raise event._value
            else:
                # Queue drained naturally.
                if stop_event is None and deadline != _INF:
                    self.now = deadline
        finally:
            self.events_processed += processed

        if stop_event is not None:
            if not stop_event.processed:
                raise SimulationError(
                    "Run ended before 'until' event fired (deadlock?)"
                )
            if not stop_event.ok:
                raise stop_event.value
            return stop_event.value
        return None

    def __repr__(self) -> str:
        return f"<Environment t={self.now} queued={len(self._queue)}>"
