"""Core event loop, events and processes for the simulation kernel.

The design mirrors the well-known process-interaction DES architecture:

- an :class:`Environment` owns a binary-heap event calendar keyed by
  ``(time, priority, sequence)`` so simultaneous events fire in a stable,
  deterministic order;
- an :class:`Event` is a one-shot awaitable that moves through the states
  *pending -> triggered -> processed* and fans out to callbacks;
- a :class:`Process` wraps a Python generator; each ``yield`` suspends the
  process until the yielded event fires, and event values/exceptions are
  sent/thrown back into the generator.

Determinism is a hard requirement here (experiments must be exactly
reproducible), hence the explicit tie-breaking sequence counter and the
absence of any wall-clock or hash-order dependence.

Two kernel-level optimizations serve high event-churn workloads (the
flow-level bandwidth model reschedules every affected transfer whenever
a flow starts or finishes):

- ``Event``/``Timeout``/``Process`` declare ``__slots__``;
- calendar entries are lazily deleted: :meth:`Environment.reschedule`
  invalidates the old heap entry in O(1) and pushes a re-keyed one in
  O(log n), instead of rebuilding the heap.  Dead entries are skipped
  (and purged) by ``peek``/``step``.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import (
    Any,
    Callable,
    Generator,
    Iterable,
    List,
    Optional,
    Tuple,
)

__all__ = [
    "AllOf",
    "AnyOf",
    "ConditionEvent",
    "Environment",
    "Event",
    "EventPriority",
    "Interrupt",
    "Process",
    "SimulationError",
    "StopSimulation",
    "Timeout",
]


class SimulationError(Exception):
    """Base class for errors raised by the simulation kernel itself."""


class StopSimulation(Exception):
    """Raised internally to halt :meth:`Environment.run` early.

    Users normally stop a run by passing ``until`` to
    :meth:`Environment.run`; this exception also supports
    :meth:`Environment.exit`-style termination from inside a process.
    """

    def __init__(self, value: Any = None):
        super().__init__(value)
        self.value = value


class EventPriority:
    """Symbolic priorities for same-timestamp event ordering.

    Lower values fire first.  ``URGENT`` is used by the kernel for process
    bootstrapping and interrupts so they preempt normal activity scheduled
    at the same instant; ``NORMAL`` is the default for user events.
    """

    URGENT = 0
    NORMAL = 1
    LOW = 2


# Sentinel distinguishing "no value yet" from a legitimate ``None`` value.
_PENDING = object()


class Event:
    """A one-shot occurrence that other entities can wait on.

    An event starts *pending*.  Calling :meth:`succeed` or :meth:`fail`
    *triggers* it, scheduling it on the environment's calendar; when the
    event loop pops it, the event becomes *processed* and its callbacks run.

    Attributes
    ----------
    env:
        Owning :class:`Environment`.
    callbacks:
        List of callables invoked with the event once processed.  ``None``
        after processing (appending then is an error, caught explicitly).
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "defused", "_entry")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        #: Set when a failed event's exception was delivered to at least one
        #: waiter (or explicitly defused); undelivered failures surface at
        #: the end of the run so errors cannot vanish silently.
        self.defused = False
        #: Live calendar entry while scheduled (lazy-deletion handle).
        self._entry: Optional[list] = None

    # -- state inspection -------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has a value/exception scheduled."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have been executed."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise SimulationError("Event not yet triggered; 'ok' undefined")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception instance for failed events)."""
        if self._value is _PENDING:
            raise SimulationError("Event not yet triggered; no value")
        return self._value

    # -- triggering -------------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self, EventPriority.NORMAL)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception to be thrown into waiters."""
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = False
        self._value = exception
        self.env._schedule(self, EventPriority.NORMAL)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another (callback helper)."""
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(event._value)

    # -- composition ------------------------------------------------------

    def __and__(self, other: "Event") -> "AllOf":
        return AllOf(self.env, [self, other])

    def __or__(self, other: "Event") -> "AnyOf":
        return AnyOf(self.env, [self, other])

    def __repr__(self) -> str:
        state = (
            "processed"
            if self.processed
            else "triggered" if self.triggered else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed simulated delay."""

    __slots__ = ("_delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"Negative delay {delay!r}")
        super().__init__(env)
        self._delay = delay
        self._ok = True
        self._value = value
        env._schedule(self, EventPriority.NORMAL, delay)

    def __repr__(self) -> str:
        return f"<Timeout delay={self._delay}>"


class Initialize(Event):
    """Kernel event that starts a freshly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process"):
        super().__init__(env)
        self._ok = True
        self._value = None
        self.callbacks = [process._resume]
        env._schedule(self, EventPriority.URGENT)


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    The ``cause`` carries arbitrary context (e.g. "preempted", a failed
    node id).  Interrupts are cooperative: the target may catch the
    exception and keep running.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)

    @property
    def cause(self) -> Any:
        return self.args[0]

    def __str__(self) -> str:
        return f"Interrupt({self.args[0]!r})"


class Process(Event):
    """Wraps a generator; the process event fires when the generator ends.

    Yield semantics inside the generator:

    - ``yield some_event`` suspends until the event fires; its value is the
      result of the ``yield`` expression, or the exception is thrown in.
    - ``return value`` (or ``StopIteration``) makes the process event
      succeed with ``value``, waking anything waiting on the process.
    """

    __slots__ = ("_generator", "name", "_target")

    def __init__(self, env: "Environment", generator: Generator, name: str = ""):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        #: The event this process is currently waiting on (None if running
        #: or finished).  Needed for interrupt bookkeeping.
        self._target: Optional[Event] = None
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not terminated."""
        return self._value is _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process as soon as possible.

        Interrupting a dead process is an error; interrupting a process
        that is about to be resumed is safe (the interrupt wins because it
        is scheduled URGENT).
        """
        if not self.is_alive:
            raise SimulationError(f"{self!r} has terminated; cannot interrupt")
        if self._target is self.env.active_process:
            raise SimulationError("A process cannot interrupt itself")
        wakeup = Event(self.env)
        wakeup._ok = False
        wakeup._value = Interrupt(cause)
        wakeup.callbacks = [self._resume]
        self.env._schedule(wakeup, EventPriority.URGENT)
        # Detach from the event we were waiting on: it must no longer
        # resume us when it fires (we might be waiting on something new by
        # then, or be dead).
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
            self._target = None

    def _resume(self, event: Event) -> None:
        """Advance the generator with the fired event's outcome."""
        self.env._active_process = self
        self._target = None
        try:
            if event._ok:
                next_target = self._generator.send(event._value)
            else:
                # Exceptions delivered into a process count as handled.
                event.defused = True
                next_target = self._generator.throw(event._value)
        except StopIteration as stop:
            self.env._active_process = None
            self.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - process crashed
            self.env._active_process = None
            self.fail(exc)
            return
        self.env._active_process = None

        if not isinstance(next_target, Event):
            raise SimulationError(
                f"Process {self.name!r} yielded non-event {next_target!r}"
            )
        if next_target.env is not self.env:
            raise SimulationError(
                f"Process {self.name!r} yielded event from another environment"
            )
        if next_target.callbacks is None:
            # Already processed: resume immediately at the same instant.
            immediate = Event(self.env)
            immediate._ok = next_target._ok
            immediate._value = next_target._value
            immediate.callbacks = [self._resume]
            self.env._schedule(immediate, EventPriority.URGENT)
            self._target = immediate
        else:
            next_target.callbacks.append(self._resume)
            self._target = next_target

    def __repr__(self) -> str:
        return f"<Process {self.name!r} {'alive' if self.is_alive else 'done'}>"


class ConditionEvent(Event):
    """Base for events that fire when a predicate over child events holds."""

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self._events: Tuple[Event, ...] = tuple(events)
        self._fired: List[Event] = []
        for ev in self._events:
            if ev.env is not env:
                raise SimulationError("Condition mixes environments")
            if ev.callbacks is None:  # already processed
                self._check(ev)
            else:
                ev.callbacks.append(self._check)
        # An empty condition is trivially satisfied.
        if not self._events and self._value is _PENDING:
            self.succeed({})

    def _predicate(self, fired: int, total: int) -> bool:
        raise NotImplementedError

    def _check(self, event: Event) -> None:
        if self._value is not _PENDING:
            return
        if not event._ok:
            event.defused = True
            self.fail(event._value)
            return
        self._fired.append(event)
        if self._predicate(len(self._fired), len(self._events)):
            self.succeed(self._collect())

    def _collect(self) -> dict:
        """Map each child event that actually *fired* to its value.

        Note: a Timeout carries its value from construction, so "has a
        value" is not the same as "has fired" -- only events whose
        callbacks ran are included.
        """
        return {ev: ev._value for ev in self._fired}


class AllOf(ConditionEvent):
    """Fires when *all* child events have fired (fails fast on failure)."""

    def _predicate(self, fired: int, total: int) -> bool:
        return fired == total


class AnyOf(ConditionEvent):
    """Fires when *any* child event has fired."""

    def _predicate(self, fired: int, total: int) -> bool:
        return fired >= 1


class Environment:
    """The event loop: virtual clock plus a deterministic event calendar.

    Calendar entries are mutable 4-slot lists ``[time, priority, seq,
    event]``; cancelling or rescheduling an entry sets its event slot to
    ``None`` (lazy deletion) instead of removing it from the heap.  Dead
    entries are discarded as they surface at the heap top.
    """

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: List[list] = []
        self._seq = count()
        self._active_process: Optional[Process] = None

    # -- clock ------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time (seconds by convention in this repo)."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_process

    # -- event factories ----------------------------------------------------

    def event(self) -> Event:
        """Create a new pending event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event firing ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Start a new process from ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling ---------------------------------------------------------

    def _schedule(
        self, event: Event, priority: int, delay: float = 0.0
    ) -> None:
        entry = [self._now + delay, priority, next(self._seq), event]
        event._entry = entry
        heapq.heappush(self._queue, entry)

    def reschedule(
        self,
        event: Event,
        delay: float,
        priority: Optional[int] = None,
    ) -> None:
        """Move a scheduled, not-yet-processed event to fire ``delay`` from now.

        O(log n): the old calendar entry is lazily deleted in place and a
        re-keyed entry is pushed.  This is the primitive the flow-level
        bandwidth model leans on -- every fair-share rebalance reschedules
        the completion of each affected transfer.  The entry's priority
        is preserved unless a new one is given.
        """
        if delay < 0:
            raise ValueError(f"Negative delay {delay!r}")
        entry = event._entry
        if entry is None or entry[3] is None or event.processed:
            raise SimulationError(f"{event!r} is not scheduled; cannot reschedule")
        entry[3] = None  # lazy-delete the stale entry
        self._schedule(event, entry[1] if priority is None else priority, delay)

    def cancel(self, event: Event) -> None:
        """Withdraw a scheduled, not-yet-processed event from the calendar.

        O(1) lazy deletion: the entry stays in the heap but is skipped
        (and purged) when it surfaces.  The event will never fire.
        """
        entry = event._entry
        if entry is None or entry[3] is None or event.processed:
            raise SimulationError(f"{event!r} is not scheduled; cannot cancel")
        entry[3] = None
        event._entry = None

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none.

        Purges lazily-deleted entries from the heap top as a side effect.
        """
        queue = self._queue
        while queue and queue[0][3] is None:
            heapq.heappop(queue)
        return queue[0][0] if queue else float("inf")

    def step(self) -> None:
        """Pop and process exactly one (live) event."""
        while self._queue:
            when, _prio, _seq, event = heapq.heappop(self._queue)
            if event is None:
                continue  # lazily-deleted (cancelled or rescheduled)
            break
        else:
            raise SimulationError("No scheduled events")
        self._now = when
        event._entry = None
        callbacks, event.callbacks = event.callbacks, None
        if callbacks is None:
            return  # cancelled / already processed
        for cb in callbacks:
            cb(event)
        if not event._ok and not event.defused:
            # A failure nobody waited on: surface it rather than lose it.
            raise event._value

    def run(self, until: Optional[Any] = None) -> Any:
        """Run until the calendar drains, a time is reached, or an event fires.

        Parameters
        ----------
        until:
            ``None`` -- run to exhaustion; a number -- run until that
            simulated time; an :class:`Event` -- run until it fires, and
            return its value.
        """
        stop_event: Optional[Event] = None
        if until is None:
            deadline = float("inf")
        elif isinstance(until, Event):
            stop_event = until
            deadline = float("inf")
            if stop_event.processed:
                return stop_event.value
        else:
            deadline = float(until)
            if deadline < self._now:
                raise ValueError(
                    f"until={deadline} is in the past (now={self._now})"
                )

        while self._queue:
            if stop_event is not None and stop_event.processed:
                break
            horizon = self.peek()  # purges dead entries at the heap top
            if not self._queue:
                continue  # only dead entries remained: drained naturally
            if horizon > deadline:
                self._now = deadline
                break
            try:
                self.step()
            except StopSimulation as stop:
                return stop.value
        else:
            # Queue drained naturally.
            if stop_event is None and deadline != float("inf"):
                self._now = deadline

        if stop_event is not None:
            if not stop_event.processed:
                raise SimulationError(
                    "Run ended before 'until' event fired (deadlock?)"
                )
            if not stop_event.ok:
                raise stop_event.value
            return stop_event.value
        return None

    def __repr__(self) -> str:
        return f"<Environment t={self._now} queued={len(self._queue)}>"
