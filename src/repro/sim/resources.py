"""Shared resources for the simulation kernel.

Three families, mirroring the classic DES resource taxonomy:

- :class:`Resource` / :class:`PriorityResource`: bounded number of usage
  slots with a FIFO (or priority) wait queue -- used to model registry
  service concurrency, network link capacity and VM cores.
- :class:`Store` / :class:`FilterStore`: producer/consumer buffers of
  discrete items -- used for message queues and task queues.
- :class:`Container`: continuous quantity (e.g. bytes of cache memory).

Requests are events; acquiring with a ``with`` block guarantees release
even if the holding process crashes or is interrupted::

    with resource.request() as req:
        yield req
        yield env.timeout(service_time)
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from repro.sim.core import Environment, Event

__all__ = [
    "Container",
    "FilterStore",
    "Preempted",
    "PreemptivePriorityResource",
    "PriorityRequest",
    "PriorityResource",
    "Request",
    "Resource",
    "Store",
]


class Preempted(Exception):
    """Cause attached to interrupts raised by preemptive resources."""

    def __init__(self, by: Any, usage_since: float):
        super().__init__(by, usage_since)
        self.by = by
        self.usage_since = usage_since


class Request(Event):
    """A pending claim on one slot of a :class:`Resource`.

    Usable as a context manager so the slot is always released.
    """

    __slots__ = ("resource", "issued_at")

    def __init__(self, resource: "Resource"):
        super().__init__(resource.env)
        self.resource = resource
        #: Simulated time at which the request was issued (for queue stats).
        self.issued_at = resource.env.now
        resource._request(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc_val, exc_tb) -> bool:
        self.cancel()
        return False

    def cancel(self) -> None:
        """Release the slot if held, or withdraw from the wait queue."""
        self.resource._release(self)


class PriorityRequest(Request):
    """A request with a priority; smaller values are served first.

    Ties break by issue order (FIFO within a priority class).
    ``preempt`` only matters for :class:`PreemptivePriorityResource`.
    """

    __slots__ = ("priority", "preempt", "process", "granted_at", "_key")

    def __init__(
        self,
        resource: "PriorityResource",
        priority: int = 0,
        preempt: bool = False,
    ):
        self.priority = priority
        self.preempt = preempt
        #: The process issuing the request (preemption target bookkeeping).
        self.process = resource.env.active_process
        #: Set when the slot is granted (for Preempted.usage_since).
        self.granted_at: float = -1.0
        self._key = (priority,)  # set before super(): _request reads it
        super().__init__(resource)
        self._key = (priority, self.issued_at)


class Release(Event):
    """Immediate event confirming a release (kept for symmetry/testing)."""

    __slots__ = ("request",)

    def __init__(self, resource: "Resource", request: Request):
        super().__init__(resource.env)
        self.request = request
        resource._release(request)
        self.succeed()


class Resource:
    """A bounded set of usage slots with a FIFO wait queue.

    Statistics are tracked for the experiment harness: total waits,
    cumulative waiting time and a high-water mark of queue length let the
    experiments quantify contention at the metadata registries (the
    centralized-bottleneck effect in Figs. 5 and 7).
    """

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self._capacity = capacity
        self.users: List[Request] = []
        self.queue: List[Request] = []
        # -- contention statistics
        self.total_requests = 0
        self.total_wait_time = 0.0
        self.max_queue_len = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def count(self) -> int:
        """Number of slots currently in use."""
        return len(self.users)

    def request(self) -> Request:
        return Request(self)

    def try_acquire(self) -> Optional[Request]:
        """Claim a slot synchronously, or return ``None`` if it would wait.

        Succeeds only when a slot is free *and* nobody is queued (so it
        can never overtake a waiter).  The returned request is already
        granted and processed -- no calendar event is scheduled, which is
        what makes this the hot path for uncontended servers and links:
        the caller pays only its own service/transmission timeout instead
        of an extra same-instant grant hop through the event queue.
        Release exactly like a waited request (``cancel``/``_release`` or
        a ``with`` block).
        """
        if self.queue or len(self.users) >= self._capacity:
            return None
        req = Request.__new__(Request)
        Event.__init__(req, self.env)
        req.resource = self
        req.issued_at = self.env.now
        req._ok = True
        req._value = None
        req.callbacks = None  # granted and processed
        # Mirror the queued path's accounting: the request transits the
        # queue for an instant there, so the high-water mark counts it.
        self.total_requests += 1
        self.max_queue_len = max(self.max_queue_len, len(self.queue) + 1)
        self.users.append(req)
        return req

    def release(self, request: Request) -> Release:
        return Release(self, request)

    # -- internal ----------------------------------------------------------

    def _request(self, request: Request) -> None:
        self.total_requests += 1
        self.queue.append(request)
        self.max_queue_len = max(self.max_queue_len, len(self.queue))
        self._trigger()

    def _release(self, request: Request) -> None:
        if request in self.users:
            self.users.remove(request)
        elif request in self.queue and not request.triggered:
            self.queue.remove(request)
        self._trigger()

    def _trigger(self) -> None:
        # FIFO grants pop from the queue head; the priority variants
        # override this with a selection policy.  This loop runs twice
        # per request on the hottest service paths (registry servers,
        # link slots), so it avoids any selection indirection.
        users = self.users
        queue = self.queue
        now = self.env.now
        while queue and len(users) < self._capacity:
            nxt = queue.pop(0)
            users.append(nxt)
            self.total_wait_time += now - nxt.issued_at
            nxt.succeed()


class PriorityResource(Resource):
    """A :class:`Resource` whose queue is ordered by request priority."""

    def request(self, priority: int = 0) -> PriorityRequest:  # type: ignore[override]
        return PriorityRequest(self, priority)

    def try_acquire(self) -> Optional[Request]:
        # The fast path would hand out a plain Request, which lacks the
        # priority/preemption bookkeeping the selection and eviction
        # policies read off the users list.  Priority resources always
        # take the full request path.
        return None

    def _select(self) -> Optional[Request]:
        if not self.queue:
            return None
        return min(self.queue, key=lambda r: getattr(r, "_key", (0,)))

    def _trigger(self) -> None:
        while len(self.users) < self._capacity:
            nxt = self._select()
            if nxt is None:
                return
            self.queue.remove(nxt)
            self.users.append(nxt)
            self.total_wait_time += self.env.now - nxt.issued_at
            nxt.granted_at = self.env.now
            nxt.succeed()


class PreemptivePriorityResource(PriorityResource):
    """A priority resource where urgent requests may evict slot holders.

    A request issued with ``preempt=True`` that finds all slots taken
    by strictly lower-priority holders (larger priority numbers) evicts
    the worst of them: the victim's process receives an
    :class:`~repro.sim.core.Interrupt` whose cause is a
    :class:`Preempted` record.  Victims may catch it and re-request.
    """

    def request(  # type: ignore[override]
        self, priority: int = 0, preempt: bool = True
    ) -> PriorityRequest:
        return PriorityRequest(self, priority, preempt=preempt)

    def _request(self, request: Request) -> None:
        super()._request(request)
        # Not granted by the normal path: consider eviction.
        if (
            not request.triggered
            and getattr(request, "preempt", False)
            and self.users
        ):
            victim = max(
                self.users,
                key=lambda r: getattr(r, "_key", (float("inf"),)),
            )
            if getattr(victim, "priority", 0) > getattr(
                request, "priority", 0
            ):
                self.users.remove(victim)
                proc = getattr(victim, "process", None)
                if proc is not None and proc.is_alive:
                    proc.interrupt(
                        Preempted(
                            by=getattr(request, "process", None),
                            usage_since=getattr(
                                victim, "granted_at", victim.issued_at
                            ),
                        )
                    )
                self._trigger()


class StorePut(Event):
    __slots__ = ("item",)

    def __init__(self, store: "Store", item: Any):
        super().__init__(store.env)
        self.item = item
        store._put_queue.append(self)
        store._dispatch()


class StoreGet(Event):
    __slots__ = ("_store",)

    def __init__(self, store: "Store"):
        super().__init__(store.env)
        store._get_queue.append(self)
        store._dispatch()

    def cancel(self) -> None:
        """Withdraw a not-yet-satisfied get (e.g. on timeout races)."""
        if not self.triggered:
            try:
                self.env  # keep attribute access explicit
                self_store = self._store  # type: ignore[attr-defined]
            except AttributeError:
                self_store = None
            if self_store is not None and self in self_store._get_queue:
                self_store._get_queue.remove(self)


class FilterStoreGet(StoreGet):
    __slots__ = ("filter",)

    def __init__(self, store: "FilterStore", filter_fn: Callable[[Any], bool]):
        self.filter = filter_fn
        super().__init__(store)


class Store:
    """An unbounded-or-bounded FIFO buffer of Python objects.

    ``put`` blocks only when a finite ``capacity`` is set and full;
    ``get`` blocks while empty.  Used throughout as mailboxes: network
    message queues, task dispatch queues, synchronization-agent inboxes.
    """

    def __init__(self, env: Environment, capacity: float = float("inf")):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.items: List[Any] = []
        self._put_queue: List[StorePut] = []
        self._get_queue: List[StoreGet] = []

    def put(self, item: Any) -> StorePut:
        return StorePut(self, item)

    def get(self) -> StoreGet:
        ev = StoreGet(self)
        ev._store = self  # type: ignore[attr-defined]
        return ev

    def __len__(self) -> int:
        return len(self.items)

    # -- internal ----------------------------------------------------------

    def _do_put(self, event: StorePut) -> bool:
        if len(self.items) < self.capacity:
            self.items.append(event.item)
            event.succeed()
            return True
        return False

    def _do_get(self, event: StoreGet) -> bool:
        if self.items:
            event.succeed(self.items.pop(0))
            return True
        return False

    def _dispatch(self) -> None:
        # Alternate put/get matching until no further progress.
        progress = True
        while progress:
            progress = False
            while self._put_queue and self._do_put(self._put_queue[0]):
                self._put_queue.pop(0)
                progress = True
            while self._get_queue and self._do_get(self._get_queue[0]):
                self._get_queue.pop(0)
                progress = True


class FilterStore(Store):
    """A :class:`Store` whose consumers take the first item matching a
    predicate -- used e.g. to let workers pull only tasks scheduled to
    their own site."""

    def get(self, filter_fn: Callable[[Any], bool] = lambda item: True) -> FilterStoreGet:  # type: ignore[override]
        ev = FilterStoreGet(self, filter_fn)
        ev._store = self  # type: ignore[attr-defined]
        return ev

    def _do_get(self, event: StoreGet) -> bool:
        filt = getattr(event, "filter", lambda item: True)
        for i, item in enumerate(self.items):
            if filt(item):
                self.items.pop(i)
                event.succeed(item)
                return True
        return False

    def _dispatch(self) -> None:
        progress = True
        while progress:
            progress = False
            while self._put_queue and self._do_put(self._put_queue[0]):
                self._put_queue.pop(0)
                progress = True
            # Unlike the FIFO store, later getters may match even when the
            # head getter does not; scan all waiting getters.
            satisfied = []
            for ev in self._get_queue:
                if self._do_get(ev):
                    satisfied.append(ev)
                    progress = True
            for ev in satisfied:
                self._get_queue.remove(ev)


class ContainerPut(Event):
    __slots__ = ("amount",)

    def __init__(self, container: "Container", amount: float):
        if amount <= 0:
            raise ValueError("amount must be positive")
        super().__init__(container.env)
        self.amount = amount
        container._put_queue.append(self)
        container._dispatch()


class ContainerGet(Event):
    __slots__ = ("amount",)

    def __init__(self, container: "Container", amount: float):
        if amount <= 0:
            raise ValueError("amount must be positive")
        super().__init__(container.env)
        self.amount = amount
        container._get_queue.append(self)
        container._dispatch()


class Container:
    """A continuous quantity with blocking put/get (e.g. cache memory)."""

    def __init__(
        self,
        env: Environment,
        capacity: float = float("inf"),
        init: float = 0.0,
    ):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0 <= init <= capacity:
            raise ValueError("init must be within [0, capacity]")
        self.env = env
        self.capacity = capacity
        self._level = init
        self._put_queue: List[ContainerPut] = []
        self._get_queue: List[ContainerGet] = []

    @property
    def level(self) -> float:
        return self._level

    def put(self, amount: float) -> ContainerPut:
        return ContainerPut(self, amount)

    def get(self, amount: float) -> ContainerGet:
        return ContainerGet(self, amount)

    def _dispatch(self) -> None:
        progress = True
        while progress:
            progress = False
            if self._put_queue:
                ev = self._put_queue[0]
                if self._level + ev.amount <= self.capacity:
                    self._level += ev.amount
                    ev.succeed()
                    self._put_queue.pop(0)
                    progress = True
            if self._get_queue:
                ev = self._get_queue[0]
                if ev.amount <= self._level:
                    self._level -= ev.amount
                    ev.succeed()
                    self._get_queue.pop(0)
                    progress = True
