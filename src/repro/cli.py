"""Command-line interface.

::

    python -m repro.cli figures [--quick] [--only fig7]
    python -m repro.cli simulate --strategy dr --nodes 32 --ops 1000
    python -m repro.cli advise --workflow montage --ops 1000
    python -m repro.cli advise --file my_workflow.json
    python -m repro.cli run --workflow montage --strategy dr --export out.json
    python -m repro.cli run --workflow montage --tenants 8 --admission max_in_flight --max-in-flight 4
    python -m repro.cli run --workflow montage --dump-spec scenario.json
    python -m repro.cli run --spec scenario.json
    python -m repro.cli trace fanout_bandwidth_aware --quick --out trace.json
    python -m repro.cli run --workflow montage --tenants 4 --metrics
    python -m repro.cli sweep --scenario paper_synthetic --set "strategy.name=centralized,hybrid"
    python -m repro.cli sweep --scenario paper_synthetic --set "seed=0,1,2,3" --jobs 4 --out runs/
    python -m repro.cli results runs/
    python -m repro.cli diff runs-before/ runs-after/
    python -m repro.cli scenarios
    python -m repro.cli strategies
    python -m repro.cli workloads

Every ``run`` invocation compiles its flags into a declarative
``repro.scenario.ScenarioSpec`` first; ``--dump-spec`` writes that spec
as a JSON artifact and ``--spec`` replays one (see ``docs/scenarios.md``).
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from typing import List, Optional

from repro.analysis.advisor import profile_workflow, recommend_strategy
from repro.cloud.network import BANDWIDTH_MODELS
from repro.elastic import ELASTICITY_NAMES, ELASTICITY_POLICIES
from repro.experiments import (
    run_fig1,
    run_fig3,
    run_fig5,
    run_fig6,
    run_fig7,
    run_fig8,
    run_fig10,
)
from repro.experiments.reporting import render_table
from repro.metadata.controller import STRATEGIES, StrategyName
from repro.scenario import (
    SCENARIOS,
    WORKFLOW_BUILDERS,
    ElasticitySpec,
    NetworkSpec,
    ObservabilitySpec,
    ScenarioSpec,
    SchedulerSpec,
    StrategySpec,
    get_scenario,
    run_sweep,
)
from repro.scheduling import SCHEDULERS, SCHEDULER_NAMES
from repro.workload import (
    ADMISSIONS,
    ADMISSION_NAMES,
    APPLICATION_NAMES,
    APPLICATIONS,
    WorkloadSpec,
)
from repro.workflow.serialization import load_workflow
from repro.workflow.traces import characterize

__all__ = ["main", "build_parser"]

FIGURES = {
    "fig1": lambda quick: run_fig1(
        file_counts=(100, 500, 1000) if quick else (100, 500, 1000, 5000)
    ),
    "fig3": lambda quick: run_fig3(),
    "fig5": lambda quick: run_fig5(
        ops_per_node=(100, 250, 500, 1000) if quick else (500, 1000, 5000, 10000),
        n_nodes=32,
    ),
    "fig6": lambda quick: run_fig6(
        n_nodes=32, ops_per_node=1500 if quick else 5000
    ),
    "fig7": lambda quick: run_fig7(
        node_counts=(8, 16, 32, 64) if quick else (8, 16, 32, 64, 128),
        ops_per_node=500 if quick else 5000,
    ),
    "fig8": lambda quick: run_fig8(
        node_counts=(8, 16, 32, 64) if quick else (8, 16, 32, 64, 128),
        total_ops=8000 if quick else 32000,
    ),
    "fig10": lambda quick: run_fig10(
        scenarios=("SS", "MI") if quick else ("SS", "CI", "MI")
    ),
}

#: The workflow-surface applications (one shared name -> builder map,
#: see ``repro.scenario.spec.WORKFLOW_BUILDERS``).
WORKFLOWS = WORKFLOW_BUILDERS


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    figs = sub.add_parser(
        "figures", help="regenerate the paper's evaluation figures"
    )
    figs.add_argument("--quick", action="store_true")
    figs.add_argument(
        "--only",
        choices=sorted(FIGURES),
        help="run a single figure instead of all",
    )

    sim = sub.add_parser(
        "simulate", help="run the synthetic reader/writer benchmark"
    )
    sim.add_argument(
        "--strategy",
        default="hybrid",
        help="strategy name or alias (dn, dr, baseline, subtree, ...)",
    )
    sim.add_argument("--nodes", type=int, default=32)
    sim.add_argument("--ops", type=int, default=1000)
    sim.add_argument("--seed", type=int, default=0)
    sim.add_argument(
        "--bandwidth-model",
        choices=BANDWIDTH_MODELS,
        default="slots",
        help="WAN bandwidth sharing: concurrency-capped slots (default) "
        "or flow-level hierarchical max-min fair sharing "
        "(docs/network-model.md)",
    )
    sim.add_argument(
        "--egress-cap-mb",
        type=float,
        default=None,
        metavar="MB_PER_S",
        help="fair model only: per-site aggregate outbound WAN cap "
        "(megabytes/s)",
    )
    sim.add_argument(
        "--ingress-cap-mb",
        type=float,
        default=None,
        metavar="MB_PER_S",
        help="fair model only: per-site aggregate inbound WAN cap "
        "(megabytes/s)",
    )
    sim.add_argument(
        "--rpc-flow-weight",
        type=float,
        default=1.0,
        help="fair model only: metadata RPC flow weight vs weight-1 "
        "bulk transfers",
    )

    adv = sub.add_parser(
        "advise", help="characterize a workflow and recommend a strategy"
    )
    target = adv.add_mutually_exclusive_group(required=True)
    target.add_argument("--workflow", choices=sorted(WORKFLOWS))
    target.add_argument("--file", help="path to a workflow JSON document")
    adv.add_argument("--ops", type=int, default=1000)
    adv.add_argument("--nodes", type=int, default=32)

    runp = sub.add_parser(
        "run", help="execute a workflow under a strategy and report"
    )
    rtarget = runp.add_mutually_exclusive_group(required=True)
    rtarget.add_argument("--workflow", choices=sorted(WORKFLOWS))
    rtarget.add_argument("--file", help="path to a workflow JSON document")
    rtarget.add_argument(
        "--spec",
        metavar="FILE",
        help=(
            "run a declarative scenario spec (JSON, as written by "
            "--dump-spec or repro.scenario); replaces the direct flags"
        ),
    )
    runp.add_argument(
        "--dump-spec",
        metavar="PATH",
        help=(
            "compile the flags into a scenario spec, write it as JSON "
            "('-' for stdout) and exit without running"
        ),
    )
    runp.add_argument("--strategy", default="hybrid")
    runp.add_argument("--nodes", type=int, default=32)
    runp.add_argument("--ops", type=int, default=100)
    runp.add_argument("--seed", type=int, default=7)
    runp.add_argument(
        "--export", metavar="PATH", help="write the run result as JSON"
    )
    runp.add_argument(
        "--scheduler",
        choices=SCHEDULER_NAMES,
        default=None,
        help=(
            "task-placement policy (default: locality, the paper's "
            "heuristic); see docs/scheduling.md"
        ),
    )
    runp.add_argument(
        "--hybrid-locality-weight",
        type=float,
        default=1.0,
        help="hybrid scheduler only: locality-term coefficient",
    )
    runp.add_argument(
        "--hybrid-load-weight",
        type=float,
        default=1.0,
        help="hybrid scheduler only: queue-depth-term coefficient",
    )
    runp.add_argument(
        "--hybrid-transfer-weight",
        type=float,
        default=1.0,
        help="hybrid scheduler only: transfer-time-term coefficient",
    )
    runp.add_argument(
        "--bw-pending-penalty",
        type=float,
        default=1.0,
        help=(
            "bandwidth_aware/hybrid schedulers only: pending-bytes "
            "staging pessimism (0 disables)"
        ),
    )
    runp.add_argument(
        "--tenants",
        type=int,
        default=1,
        help=(
            "run a multi-tenant workload: this many tenants submit the "
            "workflow concurrently to one shared deployment (default 1: "
            "single-workflow mode); see docs/workloads.md"
        ),
    )
    runp.add_argument(
        "--instances",
        type=int,
        default=1,
        help="workload mode only: workflow instances per tenant",
    )
    runp.add_argument(
        "--mode",
        choices=("closed", "open"),
        default="closed",
        help=(
            "workload mode only: closed loop (one in flight per tenant, "
            "think time between) or open loop (Poisson arrivals)"
        ),
    )
    runp.add_argument(
        "--think-time",
        type=float,
        default=0.0,
        help="closed-loop workloads only: seconds between submissions",
    )
    runp.add_argument(
        "--arrival-rate",
        type=float,
        default=None,
        help="open-loop workloads only: Poisson arrivals per second",
    )
    runp.add_argument(
        "--admission",
        choices=ADMISSION_NAMES,
        default=None,
        help=(
            "workload mode only: admission control policy "
            "(default: unbounded)"
        ),
    )
    runp.add_argument(
        "--max-in-flight",
        type=int,
        default=None,
        help=(
            "admission max_in_flight only: global cap on concurrently "
            "executing workflows"
        ),
    )
    runp.add_argument(
        "--token-rate",
        type=float,
        default=None,
        help=(
            "admission token_bucket only: per-tenant admissions/second"
        ),
    )
    runp.add_argument(
        "--token-burst",
        type=int,
        default=None,
        help="admission token_bucket only: per-tenant burst allowance",
    )
    runp.add_argument(
        "--elastic",
        choices=ELASTICITY_NAMES,
        default=None,
        help=(
            "enable the elastic provisioning control plane with this "
            "policy (docs/elasticity.md); the fleet then starts at "
            "--nodes and is resized at runtime"
        ),
    )
    runp.add_argument(
        "--elastic-min",
        type=int,
        default=1,
        metavar="N",
        help="elastic only: per-site fleet floor (default 1)",
    )
    runp.add_argument(
        "--elastic-max",
        type=int,
        default=8,
        metavar="N",
        help="elastic only: per-site fleet ceiling (default 8)",
    )
    runp.add_argument(
        "--elastic-lag",
        type=float,
        default=30.0,
        metavar="S",
        help=(
            "elastic only: provisioning lag between ordering a VM and "
            "it becoming placeable (default 30s)"
        ),
    )
    runp.add_argument(
        "--elastic-warmup",
        type=float,
        default=0.0,
        metavar="S",
        help=(
            "elastic only: warm-up window during which a fresh VM "
            "computes degraded (default 0: none)"
        ),
    )
    runp.add_argument(
        "--elastic-interval",
        type=float,
        default=5.0,
        metavar="S",
        help="elastic only: control-loop sampling interval (default 5s)",
    )
    runp.add_argument(
        "--metrics",
        action="store_true",
        help=(
            "run with the metrics plane enabled and print counters and "
            "latency-sketch quantiles after the report "
            "(docs/observability.md); composes with --spec"
        ),
    )
    _RUN_FLAG_DEFAULTS.update(
        {name: runp.get_default(name) for name in _RUN_SPEC_CLASH_FLAGS}
    )

    tracep = sub.add_parser(
        "trace",
        help=(
            "run a scenario with full tracing and export a Chrome "
            "trace-event file (chrome://tracing, Perfetto)"
        ),
    )
    tracep.add_argument(
        "scenario",
        nargs="?",
        help="named scenario to trace (repro.cli scenarios)",
    )
    tracep.add_argument(
        "--spec",
        metavar="FILE",
        help="trace a scenario spec file instead of a named scenario",
    )
    tracep.add_argument(
        "--out",
        metavar="PATH",
        default="trace.json",
        help="Chrome trace-event JSON output path (default: trace.json)",
    )
    tracep.add_argument(
        "--jsonl",
        metavar="PATH",
        help="also write the raw event stream as JSON lines",
    )
    tracep.add_argument(
        "--categories",
        metavar="CAT,CAT",
        default=None,
        help=(
            "comma-separated event categories to record "
            "(default: all; see docs/observability.md)"
        ),
    )
    tracep.add_argument(
        "--quick",
        action="store_true",
        help="trace the CI-sized variant of the scenario",
    )

    analyzep = sub.add_parser(
        "analyze",
        help=(
            "trace a scenario and report where the time went: observed "
            "critical path, attribution buckets, hottest site/link, "
            "SLO verdicts (docs/observability.md)"
        ),
    )
    analyzep.add_argument(
        "scenario",
        nargs="?",
        help="named scenario to analyze (repro.cli scenarios)",
    )
    analyzep.add_argument(
        "--spec",
        metavar="FILE",
        help="analyze a scenario spec file instead of a named scenario",
    )
    analyzep.add_argument(
        "--artifact",
        metavar="FILE",
        help=(
            "render the report from a stored run artifact (must carry "
            "an 'analysis' or 'slo' block) instead of running anything"
        ),
    )
    analyzep.add_argument(
        "--quick",
        action="store_true",
        help="analyze the CI-sized variant of the scenario",
    )
    analyzep.add_argument(
        "--out",
        metavar="PATH",
        help="also write the report to a text file",
    )

    sweep = sub.add_parser(
        "sweep",
        help="run a cartesian grid of scenario-spec overrides",
    )
    source = sweep.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--spec", metavar="FILE", help="base scenario spec (JSON file)"
    )
    source.add_argument(
        "--scenario",
        metavar="NAME",
        help="base scenario from the named registry (repro.cli scenarios)",
    )
    sweep.add_argument(
        "--set",
        dest="overrides",
        action="append",
        default=[],
        metavar="PATH=V1,V2",
        help=(
            "one sweep axis: a dotted spec path with comma-separated "
            "values, e.g. --set strategy.name=centralized,hybrid "
            "(repeatable; axes combine as a cartesian product)"
        ),
    )
    sweep.add_argument(
        "--quick",
        action="store_true",
        help="run each cell at CI-friendly op volumes",
    )
    sweep.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help=(
            "run grid cells in N worker processes (bit-for-bit "
            "identical to serial; default 1)"
        ),
    )
    sweep.add_argument(
        "--out",
        metavar="DIR",
        help=(
            "persist every successful cell as a JSON artifact in a "
            "result store keyed by spec hash + seed (repro.cli results, "
            "repro.cli diff)"
        ),
    )
    sweep.add_argument(
        "--export", metavar="PATH", help="write the sweep table as JSON"
    )

    res = sub.add_parser(
        "results",
        help="list the run artifacts of a result store directory",
    )
    res.add_argument("store", metavar="DIR", help="result store directory")

    diffp = sub.add_parser(
        "diff",
        help=(
            "keyed comparison of two run artifacts or two result-store "
            "directories: metric deltas and changed spec fields"
        ),
    )
    diffp.add_argument(
        "a", metavar="A", help="artifact JSON file or store directory"
    )
    diffp.add_argument(
        "b", metavar="B", help="artifact JSON file or store directory"
    )

    sub.add_parser("strategies", help="list available strategies")
    sub.add_parser(
        "schedulers", help="list available task-placement policies"
    )
    sub.add_parser(
        "workloads",
        help="list workload applications and admission policies",
    )
    sub.add_parser(
        "elasticity",
        help="list elastic autoscaling policies (docs/elasticity.md)",
    )
    sub.add_parser(
        "scenarios",
        help="list the named scenario registry (docs/scenarios.md)",
    )
    return parser


def _resolve_workflow(args):
    if getattr(args, "file", None):
        return load_workflow(args.file)
    return WORKFLOWS[args.workflow](ops_per_task=args.ops)


def _cmd_figures(args) -> int:
    names = [args.only] if args.only else sorted(FIGURES)
    for name in names:
        result = FIGURES[name](args.quick)
        print(f"\n=== {name} ===")
        print(result.render())
    return 0


def _cmd_simulate(args) -> int:
    spec = ScenarioSpec(
        name=f"cli-simulate-{args.strategy}",
        surface="synthetic",
        strategy=StrategySpec(name=args.strategy),
        network=NetworkSpec(
            bandwidth_model=args.bandwidth_model,
            egress_cap_mb=args.egress_cap_mb,
            ingress_cap_mb=args.ingress_cap_mb,
            rpc_flow_weight=args.rpc_flow_weight,
        ),
        ops_per_node=args.ops,
        n_nodes=args.nodes,
        seed=args.seed,
    )
    try:
        result = spec.run()
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(result.render())
    return 0


def _cmd_advise(args) -> int:
    wf = _resolve_workflow(args)
    ch = characterize(wf)
    print(
        render_table(
            ["feature", "value"],
            [
                ["tasks", ch.n_tasks],
                ["files", ch.n_files],
                ["mean file size (B)", ch.mean_file_size],
                ["small-file fraction", f"{ch.small_file_fraction:.0%}"],
                ["ops per task", ch.metadata_ops_per_task],
                ["read/write ratio", ch.read_write_ratio],
                ["dominant pattern", ch.dominant_pattern],
                ["metadata-intensive", ch.is_metadata_intensive()],
            ],
            title=f"characterization: {wf.name}",
        )
    )
    prof = profile_workflow(wf, n_sites=4, n_nodes=args.nodes)
    strategy, reasons = recommend_strategy(prof)
    print(f"\nrecommended strategy: {strategy}")
    for r in reasons:
        print(f"  - {r}")
    return 0


#: ``run`` flags that ``--spec`` replaces; every one must be left at
#: its parser default when a spec file is given (the spec is the
#: single source of truth).  Defaults are captured from the parser
#: itself in :func:`build_parser`, so they can never desync.
_RUN_SPEC_CLASH_FLAGS = (
    "strategy",
    "nodes",
    "ops",
    "seed",
    "scheduler",
    "hybrid_locality_weight",
    "hybrid_load_weight",
    "hybrid_transfer_weight",
    "bw_pending_penalty",
    "tenants",
    "instances",
    "mode",
    "think_time",
    "arrival_rate",
    "admission",
    "max_in_flight",
    "token_rate",
    "token_burst",
    "elastic",
    "elastic_min",
    "elastic_max",
    "elastic_lag",
    "elastic_warmup",
    "elastic_interval",
)
_RUN_FLAG_DEFAULTS: dict = {}


def _spec_from_run_args(args) -> ScenarioSpec:
    """Compile ``run`` flags into a validated :class:`ScenarioSpec`.

    This is the whole point of ``--dump-spec``: the spec *is* the
    invocation, so any flag combination is reproducible from the JSON
    artifact alone.
    """
    if args.tenants <= 0:
        raise ValueError("--tenants must be positive")
    if args.tenants > 1 and getattr(args, "file", None):
        raise ValueError(
            "--tenants applies to built-in applications only "
            "(--workflow), not --file"
        )
    if args.tenants == 1 and (
        args.admission is not None
        or args.instances != 1
        or args.mode != "closed"
        or args.think_time != 0.0
        or args.arrival_rate is not None
    ):
        # Mirrors the experiment runner's --with-workloads guard:
        # silently running a single workflow would masquerade as an
        # admission-controlled multi-tenant run.
        raise ValueError(
            "--admission/--instances/--mode/--think-time/"
            "--arrival-rate require --tenants > 1"
        )
    if args.elastic is None and (
        args.elastic_min != 1
        or args.elastic_max != 8
        or args.elastic_lag != 30.0
        or args.elastic_warmup != 0.0
        or args.elastic_interval != 5.0
    ):
        raise ValueError(
            "--elastic-min/--elastic-max/--elastic-lag/--elastic-warmup/"
            "--elastic-interval require --elastic POLICY"
        )
    elasticity = ElasticitySpec()
    if args.elastic is not None:
        elasticity = ElasticitySpec(
            enabled=True,
            policy=args.elastic,
            interval_s=args.elastic_interval,
            lag_s=args.elastic_lag,
            warmup_s=args.elastic_warmup,
            min_vms_per_site=args.elastic_min,
            max_vms_per_site=args.elastic_max,
        )
    scheduler = SchedulerSpec(
        name=args.scheduler,
        hybrid_locality_weight=args.hybrid_locality_weight,
        hybrid_load_weight=args.hybrid_load_weight,
        hybrid_transfer_weight=args.hybrid_transfer_weight,
        bw_pending_penalty=args.bw_pending_penalty,
    )
    if args.tenants > 1:
        spec = ScenarioSpec(
            name=f"cli-{args.workflow}-x{args.tenants}",
            surface="workload",
            strategy=StrategySpec(name=args.strategy),
            scheduler=scheduler,
            workload=WorkloadSpec.uniform(
                args.tenants,
                applications=(args.workflow,),
                mode=args.mode,
                n_instances=args.instances,
                think_time=args.think_time,
                arrival_rate=args.arrival_rate,
                input_sites=ScenarioSpec().topology.site_names(),
                ops_per_task=args.ops,
                seed=args.seed,
                name=args.workflow,
            ),
            admission=args.admission,
            max_in_flight=args.max_in_flight,
            token_rate=args.token_rate,
            token_burst=args.token_burst,
            elasticity=elasticity,
            n_nodes=args.nodes,
            seed=args.seed,
        )
    else:
        spec = ScenarioSpec(
            name=f"cli-{args.workflow or 'file'}",
            surface="workflow",
            strategy=StrategySpec(name=args.strategy),
            scheduler=scheduler,
            application=args.workflow or "montage",
            workflow_file=getattr(args, "file", None),
            ops_per_task=args.ops,
            elasticity=elasticity,
            n_nodes=args.nodes,
            seed=args.seed,
        )
    spec.validate()
    return spec


def _cmd_run(args) -> int:
    if not _RUN_FLAG_DEFAULTS:
        build_parser()  # populate the clash-check defaults
    try:
        if args.spec:
            clashing = sorted(
                f"--{flag.replace('_', '-')}"
                for flag, default in _RUN_FLAG_DEFAULTS.items()
                if getattr(args, flag) != default
            )
            if clashing:
                raise ValueError(
                    f"--spec replaces the direct run flags ({', '.join(clashing)} "
                    "given); edit the spec file, or sweep overrides with "
                    "`repro.cli sweep --spec ... --set path=value`"
                )
            spec = ScenarioSpec.load(args.spec)
            spec.validate()
        else:
            spec = _spec_from_run_args(args)
    except (ValueError, TypeError, OSError) as exc:
        # TypeError covers hand-edited spec JSON with wrong value types
        # (e.g. a string n_nodes) surfacing from validate().
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.metrics and not spec.observability.enabled:
        spec = spec.replace(observability=ObservabilitySpec(enabled=True))
    if args.dump_spec:
        text = spec.to_json()
        if args.dump_spec == "-":
            print(text)
        else:
            with open(args.dump_spec, "w") as fh:
                fh.write(text + "\n")
            print(f"spec written to {args.dump_spec}")
        return 0
    try:
        result = spec.run()
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(result.render())
    if args.metrics and result.obs is not None:
        print()
        print(_render_obs(result.obs))
    if args.export:
        from repro.analysis.export import export_json

        export_json(result.result, args.export)
        print(f"\nresult written to {args.export}")
    return 0


def _render_obs(obs: dict) -> str:
    """The metrics-plane summary tables of one traced run."""
    parts = []
    events = obs.get("events") or {}
    if events:
        rows = [[cat, n] for cat, n in sorted(events.items())]
        rows.append(["(spans)", obs.get("n_spans", 0)])
        if obs.get("dropped"):
            rows.append(["(dropped)", obs["dropped"]])
        parts.append(
            render_table(
                ["category", "events"], rows, title="trace events"
            )
        )
    metrics = obs.get("metrics") or {}
    counters = metrics.get("counters") or {}
    if counters:
        rows = [[name, v] for name, v in sorted(counters.items())]
        parts.append(render_table(["counter", "value"], rows))
    histograms = metrics.get("histograms") or {}
    if histograms:
        rows = [
            [
                name,
                int(h["count"]),
                f"{h['mean']:.6f}",
                f"{h['p50']:.6f}",
                f"{h['p90']:.6f}",
                f"{h['p99']:.6f}",
            ]
            for name, h in sorted(histograms.items())
        ]
        parts.append(
            render_table(
                ["latency histogram", "n", "mean", "p50", "p90", "p99"],
                rows,
                title="streaming sketches (seconds)",
            )
        )
    return "\n\n".join(parts) if parts else "no metrics recorded"


def _cmd_trace(args) -> int:
    from repro.obs import write_chrome_trace, write_jsonl

    try:
        if bool(args.scenario) == bool(args.spec):
            raise ValueError(
                "trace takes exactly one target: a scenario name or "
                "--spec FILE"
            )
        if args.spec:
            spec = ScenarioSpec.load(args.spec)
        else:
            spec = get_scenario(args.scenario)
        categories = (
            tuple(c.strip() for c in args.categories.split(",") if c.strip())
            if args.categories
            else None
        )
        spec = spec.replace(
            observability=ObservabilitySpec(
                enabled=True, categories=categories
            )
        )
        spec.validate()
        result = spec.run(quick=args.quick)
    except (ValueError, TypeError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    write_chrome_trace(result.tracer, args.out)
    if args.jsonl:
        write_jsonl(result.tracer, args.jsonl)
    obs = result.obs or {}
    total = obs.get("n_events", 0)
    print(
        f"traced {spec.name}: {total} events, "
        f"{obs.get('n_spans', 0)} spans "
        f"({obs.get('dropped', 0)} dropped)"
    )
    print(f"chrome trace written to {args.out}")
    if args.jsonl:
        print(f"event stream written to {args.jsonl}")
    print()
    print(_render_obs(obs))
    return 0


def _render_slo_dict(slo: dict) -> str:
    """The SLO verdict table from an artifact's (or fresh run's)
    serialized ``slo`` block."""
    head = f"SLO verdict: {slo.get('status', '?')}"
    if slo.get("n_violated"):
        head += (
            f" ({slo['n_violated']} rule(s) violated, total debt "
            f"{slo.get('total_debt', 0.0):.3g}"
        )
        first = slo.get("first_violation_at")
        if first is not None:
            head += f", first violation at t={first:.3g}s"
        head += ")"
    rows = []
    for rule in slo.get("rules", []):
        observed = rule.get("observed")
        first = rule.get("first_violation_at")
        rows.append(
            [
                rule.get("rule", "?"),
                rule.get("status", "?"),
                f"{observed:.4g}" if observed is not None else "--",
                f"{rule.get('target', 0.0):.4g}",
                f"{rule.get('debt', 0.0):.4g}",
                f"{first:.4g}" if first is not None else "--",
                rule.get("note", ""),
            ]
        )
    if not rows:
        return head
    return head + "\n" + render_table(
        ["rule", "status", "observed", "target", "debt", "first at", "note"],
        rows,
    )


def _render_analysis(analysis: dict) -> str:
    """The bottleneck report from a serialized ``analysis`` block."""
    parts = []
    buckets = analysis.get("buckets") or {}
    total = sum(buckets.values())
    workflows = analysis.get("workflows") or []
    if buckets and total > 0:
        rows = [
            [bucket, f"{seconds:.3f}", f"{seconds / total:.1%}"]
            for bucket, seconds in sorted(
                buckets.items(), key=lambda kv: -kv[1]
            )
        ]
        top = rows[0][0]
        parts.append(
            render_table(
                ["bucket", "seconds", "share"],
                rows,
                title=(
                    f"time attribution over {len(workflows)} "
                    f"workflow(s) -- bottleneck: {top}"
                ),
            )
        )
    if workflows:
        slowest = max(workflows, key=lambda w: w.get("makespan", 0.0))
        rows = []
        for step in slowest.get("path", []):
            rows.append(
                [
                    step.get("task", "?"),
                    step.get("site", "?"),
                    f"{step.get('start', 0.0):.2f}",
                    f"{step.get('end', 0.0) - step.get('start', 0.0):.2f}",
                    f"{step.get('wait_before', 0.0):.2f}",
                    f"{step.get('compute', 0.0):.2f}",
                    f"{step.get('metadata', 0.0):.2f}",
                    f"{step.get('wan_transfer', 0.0):.2f}",
                ]
            )
        parts.append(
            render_table(
                [
                    "task", "site", "start", "dur (s)", "wait",
                    "compute", "metadata", "transfer",
                ],
                rows,
                title=(
                    f"observed critical path of {slowest.get('run', '?')!r}"
                    f" -- {len(rows)} of {slowest.get('n_tasks', 0)} tasks,"
                    f" makespan {slowest.get('makespan', 0.0):.3f}s"
                ),
            )
        )
    sites = analysis.get("sites") or {}
    if sites:
        rows = [
            [
                key,
                s.get("vms_seen", 0),
                s.get("peak", 0),
                f"{s.get('mean', 0.0):.2f}",
                f"{s.get('busy_s', 0.0):.2f}",
                f"{s.get('idle_fraction', 0.0):.1%}",
            ]
            for key, s in sorted(
                sites.items(), key=lambda kv: -kv[1].get("busy_s", 0.0)
            )
        ]
        parts.append(
            render_table(
                ["site", "vms", "peak", "mean", "busy (s)", "idle"],
                rows,
                title=(
                    "VM occupancy by site -- hottest: "
                    f"{analysis.get('hottest_site') or '-'}"
                ),
            )
        )
    links = analysis.get("links") or {}
    if links:
        ranked = sorted(
            links.items(), key=lambda kv: -kv[1].get("busy_s", 0.0)
        )
        rows = [
            [
                key,
                s.get("n_intervals", 0),
                f"{s.get('bytes', 0.0) / 1e6:.1f}",
                s.get("peak", 0),
                f"{s.get('busy_s', 0.0):.2f}",
                f"{s.get('idle_fraction', 0.0):.1%}",
            ]
            for key, s in ranked[:10]
        ]
        title = (
            "WAN link busy time -- hottest: "
            f"{analysis.get('hottest_link') or '-'}"
        )
        if len(ranked) > 10:
            title += f" (top 10 of {len(ranked)})"
        parts.append(
            render_table(
                ["link", "transfers", "MB", "peak flows", "busy (s)", "idle"],
                rows,
                title=title,
            )
        )
    registry_wait = analysis.get("registry_wait") or {}
    if registry_wait:
        rows = [
            [
                site,
                int(w.get("count", 0)),
                f"{w.get('total_s', 0.0):.3f}",
                f"{w.get('max_s', 0.0):.4f}",
            ]
            for site, w in sorted(
                registry_wait.items(),
                key=lambda kv: -kv[1].get("total_s", 0.0),
            )
        ]
        parts.append(
            render_table(
                ["registry site", "waits", "total (s)", "max (s)"],
                rows,
                title="registry slot-wait pressure",
            )
        )
    if not analysis.get("complete", True):
        parts.append(
            "warning: the tracer dropped events (max_events budget hit);"
            " this analysis is partial"
        )
    if not parts:
        parts.append(
            "no task spans recorded -- nothing to analyze (the "
            "synthetic surface has no workflow tasks)"
        )
    return "\n\n".join(parts)


def _render_capacity_timeline(timeline: dict) -> str:
    """The elastic fleet's placeable-VM step series, per site."""
    rows = [
        [site, f"{t:.2f}", vms]
        for site in sorted(timeline)
        for t, vms in timeline[site]
    ]
    return render_table(
        ["site", "t (s)", "placeable VMs"],
        rows,
        title="capacity timeline (elastic fleet, placeable VMs by site)",
    )


def _render_elastic_dict(el: dict) -> str:
    """The elastic summary from an artifact's serialized block."""
    head = (
        f"elastic policy {el.get('policy', '?')}: "
        f"{el.get('n_scale_ups', 0)} scale-up(s), "
        f"{el.get('n_scale_downs', 0)} scale-down(s); fleet "
        f"{el.get('fleet_initial', 0)} -> peak {el.get('fleet_peak', 0)} "
        f"-> final {el.get('fleet_final', 0)}; "
        f"{el.get('vm_seconds', 0.0):.1f} vm-seconds"
    )
    rows = [
        [f"{a.get('t', 0.0):.2f}", a.get("site", "?"), a.get("delta", 0)]
        for a in el.get("actions", [])
    ]
    if not rows:
        return head
    return head + "\n" + render_table(["t (s)", "site", "delta"], rows)


def _cmd_analyze(args) -> int:
    targets = [
        bool(args.scenario), bool(args.spec), bool(args.artifact)
    ]
    try:
        if sum(targets) != 1:
            raise ValueError(
                "analyze takes exactly one target: a scenario name, "
                "--spec FILE or --artifact FILE"
            )
        if args.artifact:
            with open(args.artifact) as fh:
                doc = json.load(fh)
            analysis = doc.get("analysis")
            slo = doc.get("slo")
            if analysis is None and slo is None:
                raise ValueError(
                    f"{args.artifact} carries no 'analysis' or 'slo' "
                    "block; re-run it traced (repro.cli analyze "
                    "<scenario>) or with an slo spec to get one"
                )
            parts = [
                f"analysis of stored run {doc.get('name', '?')!r} "
                f"(surface {doc.get('surface', '?')}, makespan "
                f"{doc.get('metrics', {}).get('makespan_s', 0.0):.3f}s)"
            ]
            if analysis is not None:
                parts.append(_render_analysis(analysis))
            if doc.get("elastic") is not None:
                parts.append(_render_elastic_dict(doc["elastic"]))
            parts.append(
                _render_slo_dict(slo)
                if slo is not None
                else "SLO: none declared"
            )
            report = "\n\n".join(parts)
        else:
            if args.spec:
                spec = ScenarioSpec.load(args.spec)
            else:
                spec = get_scenario(args.scenario)
            obs = spec.observability
            if not obs.enabled:
                obs = ObservabilitySpec(enabled=True)
            elif obs.categories is not None and (
                "span" not in obs.categories
            ):
                # Critical-path analysis needs spans; widen to all.
                obs = dataclasses.replace(obs, categories=None)
            spec = spec.replace(observability=obs)
            spec.validate()
            result = spec.run(quick=args.quick)
            parts = [
                f"analyzed {spec.name!r} (surface {result.surface}, "
                f"makespan {result.makespan:.3f}s)"
            ]
            if result.analysis is not None:
                parts.append(_render_analysis(result.analysis.to_dict()))
            if result.elastic is not None:
                from repro.obs import capacity_timeline

                parts.append(result.elastic.render())
                timeline = (
                    capacity_timeline(result.tracer)
                    if result.tracer is not None
                    else {}
                )
                if timeline:
                    parts.append(_render_capacity_timeline(timeline))
            parts.append(
                _render_slo_dict(result.slo.to_dict())
                if result.slo is not None
                else "SLO: none declared"
            )
            report = "\n\n".join(parts)
    except (ValueError, TypeError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(report)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(report + "\n")
        print(f"\nreport written to {args.out}")
    return 0


def _cmd_strategies(_args) -> int:
    rows = []
    for name in sorted(STRATEGIES):
        cls = STRATEGIES[name]
        doc = (cls.__doc__ or "").strip().splitlines()[0]
        core = "core" if name in StrategyName.all() else "extension"
        rows.append([name, core, doc])
    print(render_table(["name", "kind", "summary"], rows))
    return 0


def _cmd_schedulers(_args) -> int:
    rows = []
    for name in SCHEDULER_NAMES:
        doc = (SCHEDULERS[name].__doc__ or "").strip().splitlines()[0]
        rows.append([name, doc])
    print(render_table(["name", "summary"], rows))
    return 0


def _cmd_scenarios(_args) -> int:
    rows = []
    for name in sorted(SCENARIOS):
        spec = SCENARIOS[name]
        knobs = [
            spec.strategy.name,
            spec.scheduler.name or "locality",
            spec.network.bandwidth_model or "slots",
            f"{spec.n_nodes}n",
        ]
        if spec.workload is not None:
            knobs.append(f"{spec.workload.n_tenants} tenants")
        if spec.faults:
            knobs.append(f"{len(spec.faults)} faults")
        # Compact capability column: which optional planes the scenario
        # exercises (observability / SLO judgement / elastic fleet).
        caps = "+".join(
            label
            for label, on in (
                ("obs", spec.observability.enabled),
                ("slo", spec.slo is not None and not spec.slo.empty),
                ("elastic", spec.elasticity.enabled),
            )
            if on
        )
        rows.append(
            [
                name,
                spec.surface,
                "/".join(knobs),
                caps or "-",
                spec.description,
            ]
        )
    print(
        render_table(
            ["name", "surface", "key knobs", "caps", "summary"],
            rows,
            title="named scenarios (repro.cli run --spec / repro.cli sweep)",
        )
    )
    return 0


def _parse_sweep_value(text: str):
    """One override value: JSON scalar when it parses, else a string."""
    try:
        return json.loads(text)
    except ValueError:
        return text


def _cmd_sweep(args) -> int:
    try:
        if args.scenario:
            base = get_scenario(args.scenario)
        else:
            base = ScenarioSpec.load(args.spec)
            base.validate()
        axes = {}
        for item in args.overrides:
            path, eq, values = item.partition("=")
            if not eq or not path:
                raise ValueError(
                    f"bad --set {item!r}; expected dotted.path=v1,v2"
                )
            axes[path] = tuple(
                _parse_sweep_value(v) for v in values.split(",")
            )
        if not axes:
            raise ValueError("sweep needs at least one --set axis")
        if args.jobs < 1:
            raise ValueError("--jobs must be >= 1")
        result = run_sweep(base, axes, quick=args.quick, jobs=args.jobs)
    except (ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(result.render())
    errored = result.errored_cells()
    if errored:
        print(
            f"\nwarning: {len(errored)} of {len(result.cells)} cells "
            "errored (marked inline above)",
            file=sys.stderr,
        )
    if args.out:
        from repro.results import ResultStore, current_git_rev

        store = ResultStore(args.out)
        rev = current_git_rev()
        for cell in result.ok_cells():
            store.save(
                cell.result,
                overrides=cell.overrides,
                git_rev=rev,
                wall_time_s=cell.wall_time_s,
            )
        print(
            f"\n{len(result.ok_cells())} artifacts written to "
            f"store {args.out}"
        )
    if args.export:
        doc = {
            "base": base.to_dict(),
            "axes": {k: list(v) for k, v in result.axes.items()},
            "cells": [
                {
                    "overrides": cell.overrides,
                    "makespan": (
                        cell.result.makespan if cell.ok else None
                    ),
                    "error": cell.error,
                }
                for cell in result.cells
            ],
        }
        with open(args.export, "w") as fh:
            json.dump(doc, fh, indent=2)
        print(f"\nsweep written to {args.export}")
    return 0


def _cmd_results(args) -> int:
    from repro.results import ResultStore

    store = ResultStore(args.store)
    docs = store.list()
    if not docs:
        print(f"error: no artifacts in {args.store}", file=sys.stderr)
        return 2
    rows = []
    for doc in docs:
        meta = doc.get("meta") or {}
        wall = meta.get("wall_time_s")
        # Pre-obs / pre-SLO artifacts simply show "-" in these columns.
        obs = doc.get("obs")
        if obs is not None:
            obs_label = f"{obs.get('n_events', 0)} ev"
            if doc.get("analysis") is not None:
                obs_label += "+an"
        else:
            obs_label = "-"
        slo_block = doc.get("slo")
        rows.append(
            [
                doc["key"],
                doc.get("name", "?"),
                doc.get("surface", "?"),
                f"{doc.get('metrics', {}).get('makespan_s', 0.0):.3f}",
                obs_label,
                slo_block.get("status", "?") if slo_block else "-",
                (doc.get("provenance") or {}).get("flow_solver") or "-",
                meta.get("git_rev") or "-",
                f"{wall:.2f}" if wall is not None else "-",
            ]
        )
    print(
        render_table(
            [
                "key", "scenario", "surface", "makespan (s)", "obs",
                "SLO", "flow solver", "rev", "wall (s)",
            ],
            rows,
            title=f"result store {args.store} -- {len(docs)} artifacts",
        )
    )
    return 0


def _cmd_diff(args) -> int:
    import os

    from repro.results import diff_artifacts, diff_stores

    try:
        if os.path.isdir(args.a) and os.path.isdir(args.b):
            print(diff_stores(args.a, args.b).render())
            return 0
        if os.path.isfile(args.a) and os.path.isfile(args.b):
            with open(args.a) as fh:
                doc_a = json.load(fh)
            with open(args.b) as fh:
                doc_b = json.load(fh)
            print(
                diff_artifacts(
                    doc_a, doc_b, a_label=args.a, b_label=args.b
                ).render()
            )
            return 0
        raise ValueError(
            "diff takes two artifact files or two store directories "
            f"(got {args.a!r}, {args.b!r})"
        )
    except (ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _cmd_elasticity(_args) -> int:
    rows = []
    for name in ELASTICITY_NAMES:
        doc = (ELASTICITY_POLICIES[name].__doc__ or "")
        rows.append([name, doc.strip().splitlines()[0]])
    print(
        render_table(
            ["policy", "summary"],
            rows,
            title=(
                "elastic autoscaling policies "
                "(repro.cli run --elastic POLICY; docs/elasticity.md)"
            ),
        )
    )
    return 0


def _cmd_workloads(_args) -> int:
    rows = []
    for name in APPLICATION_NAMES:
        # Builders are lambdas; describe via the built DAG's shape.
        from repro.workload import TenantSpec

        wf = APPLICATIONS[name](TenantSpec(name="probe", application=name))
        rows.append([name, len(wf), len(wf.levels())])
    print(
        render_table(
            ["application", "tasks", "stages"],
            rows,
            title="workload applications",
        )
    )
    print()
    rows = []
    for name in ADMISSION_NAMES:
        doc = (ADMISSIONS[name].__doc__ or "").strip().splitlines()[0]
        rows.append([name, doc])
    print(
        render_table(
            ["admission policy", "summary"],
            rows,
            title="admission control",
        )
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "figures": _cmd_figures,
        "simulate": _cmd_simulate,
        "advise": _cmd_advise,
        "run": _cmd_run,
        "trace": _cmd_trace,
        "analyze": _cmd_analyze,
        "sweep": _cmd_sweep,
        "results": _cmd_results,
        "diff": _cmd_diff,
        "strategies": _cmd_strategies,
        "schedulers": _cmd_schedulers,
        "workloads": _cmd_workloads,
        "elasticity": _cmd_elasticity,
        "scenarios": _cmd_scenarios,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
