"""Elastic provisioning control plane: close the loop from load to capacity.

Every subsystem below this one *observes* -- the tracer records, the
analyzer attributes, the SLO engine judges -- but the VM fleet stays
frozen at construction.  This package is the actuator: an
:class:`ElasticController` samples live signals during a run (per-site
queue depth through the scheduler's ``ClusterView``, workload admission
backlog, accumulating SLO debt) on a fixed control interval and asks a
pluggable :class:`ElasticityPolicy` for scale-up / scale-down actions,
which it executes through the deployment's safe fleet lifecycle APIs
(``Deployment.add_vms`` / ``drain_vms`` / ``retire_vm``) with realistic
friction: **provisioning lag** (capacity lands ``lag_s`` after the
decision), **warm-up cost** (new VMs compute degraded for ``warmup_s``)
and **draining semantics** (a removed VM finishes its placed tasks,
takes no new ones, never strands work).

Policies (select by ``ElasticitySpec.policy`` / ``--elastic``):

- ``threshold``  -- per-site queue-depth hysteresis bands;
- ``slo_debt``   -- scale when projected deadline debt crosses a budget;
- ``predictive`` -- EWMA arrival-rate forecast with trend extrapolation,
  pre-provisions ahead of open-loop ramps.

Everything is deterministic and RNG-free: identical spec + seed replay
an identical action sequence, and a disabled spec constructs nothing,
schedules nothing and draws nothing (existing goldens stay bit-for-bit).
See ``docs/elasticity.md``.
"""

from repro.elastic.controller import ElasticController, ElasticSignals
from repro.elastic.policies import (
    ELASTICITY_NAMES,
    ELASTICITY_POLICIES,
    ElasticityPolicy,
    FleetView,
    PredictivePolicy,
    ScaleAction,
    SignalSnapshot,
    SLODebtPolicy,
    ThresholdPolicy,
    make_elasticity_policy,
)
from repro.elastic.report import ElasticReport

__all__ = [
    "ELASTICITY_NAMES",
    "ELASTICITY_POLICIES",
    "ElasticController",
    "ElasticReport",
    "ElasticSignals",
    "ElasticityPolicy",
    "FleetView",
    "PredictivePolicy",
    "SLODebtPolicy",
    "ScaleAction",
    "SignalSnapshot",
    "ThresholdPolicy",
    "make_elasticity_policy",
]
