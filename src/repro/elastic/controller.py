"""The elastic controller: sample signals, decide, actuate with friction.

:class:`ElasticController` is a background simulation process started
by the scenario runner when ``ElasticitySpec.enabled``.  Every
``interval_s`` it:

1. retires any draining VM whose last placed task has finished
   (closing its vm-seconds ledger entry);
2. samples a :class:`~repro.elastic.policies.SignalSnapshot` from the
   scheduler's ``ClusterView`` and the workload layer's
   :class:`ElasticSignals`;
3. asks its :class:`~repro.elastic.policies.ElasticityPolicy` for
   scale actions and executes them -- scale-ups land ``lag_s`` later
   (and then run degraded for ``warmup_s``); scale-downs remove the
   VMs from the placeable fleet immediately but let placed work finish.

A per-site cooldown (``cooldown_s``) rate-limits actuation on top of
whatever hysteresis the policy applies.  The controller holds no RNG
and samples only deterministic state, so identical spec + seed replay
an identical action sequence; with elasticity disabled it is never
constructed at all.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

from repro.elastic.policies import (
    ElasticityPolicy,
    FleetView,
    SignalSnapshot,
    make_elasticity_policy,
)
from repro.elastic.report import ElasticReport
from repro.obs.trace import NULL_TRACER

__all__ = ["ElasticController", "ElasticSignals"]


class ElasticSignals:
    """Live workload counters the controller samples each interval.

    The workload runner calls the ``on_*`` hooks as instances move
    through submit -> admit -> complete; the controller reads the
    counters and the accrued deadline debt.  Pure bookkeeping: no
    events, no RNG, so attaching one cannot perturb a run.
    """

    __slots__ = (
        "submitted",
        "admitted",
        "completed",
        "waiting_admission",
        "_deadlines",
        "_run_deadline",
        "_due",
        "_accrued_debt",
    )

    def __init__(
        self,
        tenant_deadlines: Mapping[str, float] = (),
        run_deadline_s: Optional[float] = None,
    ):
        self.submitted = 0
        self.admitted = 0
        self.completed = 0
        self.waiting_admission = 0
        self._deadlines = dict(tenant_deadlines)
        self._run_deadline = run_deadline_s
        self._due: Dict[str, float] = {}  # in-flight instance -> due time
        self._accrued_debt = 0.0

    def on_submit(self, key: str, tenant: str, now: float) -> None:
        self.submitted += 1
        self.waiting_admission += 1
        deadline = self._deadlines.get(tenant)
        if deadline is not None:
            self._due[key] = now + deadline

    def on_admit(self) -> None:
        self.admitted += 1
        self.waiting_admission -= 1

    def on_complete(self, key: str, now: float) -> None:
        self.completed += 1
        due = self._due.pop(key, None)
        if due is not None and now > due:
            self._accrued_debt += now - due

    def debt(self, now: float) -> float:
        """Deadline debt accrued by ``now``: closed overshoots of
        completed instances plus the live overshoot of in-flight ones
        (and of the whole run, under a run-level deadline)."""
        debt = self._accrued_debt
        for due in self._due.values():
            if now > due:
                debt += now - due
        if self._run_deadline is not None and now > self._run_deadline:
            debt += now - self._run_deadline
        return debt


class ElasticController:
    """Watches one run and resizes the deployment's fleet.

    Parameters
    ----------
    deployment:
        The fleet to act on (via ``add_vms``/``drain_vms``/``retire_vm``).
    cluster:
        The engine's live :class:`~repro.scheduling.ClusterView` --
        per-site queue depths and per-tenant in-flight counts.
    spec:
        The scenario's ``ElasticitySpec`` (duck-typed; this package
        layers below ``repro.scenario``).
    signals:
        Workload-layer counters; ``None`` on the workflow surface
        (admission backlog and arrival rate then read as zero).
    tracer:
        Scale decisions and VM lifecycle transitions are emitted under
        the ``elastic`` category; ``None`` falls back to the null
        tracer.
    """

    def __init__(
        self,
        deployment,
        cluster,
        spec,
        signals: Optional[ElasticSignals] = None,
        tracer=None,
    ):
        self.deployment = deployment
        self.cluster = cluster
        self.spec = spec
        self.signals = signals
        self.policy: ElasticityPolicy = make_elasticity_policy(
            spec.policy, spec
        )
        self.report = ElasticReport(policy=self.policy.name)
        tr = tracer if tracer is not None else NULL_TRACER
        self._tracer = tr
        self._trace = tr.enabled and tr.wants("elastic")
        self._env = deployment.env
        self._pending: Dict[str, int] = {}  # site -> VMs ordered, in lag
        self._cooldown_until: Dict[str, float] = {}
        self._awaiting_retire: List = []  # draining VMs we watch

    # -- lifecycle --------------------------------------------------------

    def start(self) -> None:
        """Record the baseline fleet and begin the control loop."""
        n = len(self.deployment.workers)
        self.report.fleet_initial = n
        self.report.fleet_peak = n
        if self._trace:
            for site in self.deployment.sites:
                self._tracer.emit(
                    "elastic",
                    "fleet",
                    site=site,
                    vms=len(self.deployment.workers_at(site)),
                )
        self._env.process(self._loop(), name="elastic-controller")

    def _loop(self):
        interval = self.spec.interval_s
        while True:
            yield self._env.timeout(interval)
            self._finalize_drains()
            snap = self._sample()
            fleet = self._fleet_view()
            now = self._env.now
            for action in self.policy.decide(snap, fleet):
                if now < self._cooldown_until.get(action.site, 0.0):
                    continue
                if action.delta > 0:
                    self._order_scale_up(action.site, action.delta)
                else:
                    self._start_drain(action.site, -action.delta)
                self._cooldown_until[action.site] = (
                    now + self.spec.cooldown_s
                )

    # -- sensing ----------------------------------------------------------

    def _sample(self) -> SignalSnapshot:
        sig = self.signals
        now = self._env.now
        return SignalSnapshot(
            now=now,
            site_load={
                site: self.cluster.site_load(site)
                for site in self.deployment.sites
            },
            admission_backlog=sig.waiting_admission if sig else 0,
            submitted_total=sig.submitted if sig else 0,
            slo_debt_s=sig.debt(now) if sig else 0.0,
            tenant_load=dict(self.cluster.tenant_load),
        )

    def _fleet_view(self) -> FleetView:
        return FleetView(
            vms={
                site: len(self.deployment.workers_at(site))
                for site in self.deployment.sites
            },
            pending=dict(self._pending),
            draining={
                site: sum(
                    1 for vm in self.deployment.draining
                    if vm.site == site
                )
                for site in self.deployment.sites
            },
            min_vms=self.spec.min_vms_per_site,
            max_vms=self.spec.max_vms_per_site,
        )

    # -- actuation ---------------------------------------------------------

    def _order_scale_up(self, site: str, count: int) -> None:
        now = self._env.now
        self.report.actions.append((now, site, count))
        self._pending[site] = self._pending.get(site, 0) + count
        if self._trace:
            self._tracer.emit(
                "elastic",
                "scale_up",
                site=site,
                delta=count,
                lag_s=self.spec.lag_s,
            )
        self._env.process(
            self._provision(site, count), name=f"elastic-provision-{site}"
        )

    def _provision(self, site: str, count: int):
        yield self._env.timeout(self.spec.lag_s)
        self.deployment.add_vms(
            site,
            count,
            warm_s=self.spec.warmup_s,
            warmup_factor=self.spec.warmup_factor,
        )
        self._pending[site] -= count
        fleet = len(self.deployment.workers)
        if fleet > self.report.fleet_peak:
            self.report.fleet_peak = fleet
        if self._trace:
            self._tracer.emit(
                "elastic",
                "vm_provisioned",
                site=site,
                delta=count,
                vms=len(self.deployment.workers_at(site)),
            )

    def _start_drain(self, site: str, count: int) -> None:
        now = self._env.now
        drained = self.deployment.drain_vms(site, count)
        self.report.actions.append((now, site, -count))
        self._awaiting_retire.extend(drained)
        if self._trace:
            self._tracer.emit(
                "elastic",
                "scale_down",
                site=site,
                delta=-count,
                vms=len(self.deployment.workers_at(site)),
            )
        # An already-idle VM retires right away instead of waiting one
        # control interval for the next sweep.
        self._finalize_drains()

    def _finalize_drains(self) -> None:
        still_busy = []
        for vm in self._awaiting_retire:
            if self.cluster.vm_load.get(vm.name, 0) == 0:
                self.deployment.retire_vm(vm)
                if self._trace:
                    self._tracer.emit(
                        "elastic",
                        "vm_decommissioned",
                        site=vm.site,
                        vm=vm.name,
                    )
            else:
                still_busy.append(vm)
        self._awaiting_retire = still_busy

    # -- reporting ---------------------------------------------------------

    def finalize(self) -> ElasticReport:
        """Close the ledger at run end and return the report."""
        self._finalize_drains()
        report = self.report
        report.fleet_final = len(self.deployment.workers)
        report.stranded_tasks = sum(
            self.cluster.vm_load.get(vm.name, 0)
            for vm in self.deployment.draining
        )
        report.vm_seconds_by_site = self.deployment.vm_seconds_by_site()
        rates = dict(self.spec.cost_rates)
        by_class: Dict[str, float] = {}
        for site, secs in report.vm_seconds_by_site.items():
            cls = self.deployment.topology.get(site).region.name
            by_class[cls] = by_class.get(cls, 0.0) + secs * rates.get(
                cls, 1.0
            )
        report.cost_by_class = by_class
        return report
