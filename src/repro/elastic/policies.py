"""Elasticity policies: turn signal snapshots into scale actions.

An :class:`ElasticityPolicy` is the decision kernel of the control
plane: every control interval the :class:`~repro.elastic.controller.
ElasticController` hands it a :class:`SignalSnapshot` (what the system
looks like right now) and a :class:`FleetView` (what capacity exists,
what is already ordered, what the spec allows) and gets back a list of
:class:`ScaleAction` deltas.  Policies may keep internal state (EWMA
estimators, debt-rate trackers) but must stay deterministic and
RNG-free: equal snapshot histories must yield equal actions, which is
what makes the replay contract (same spec + seed => same action
sequence) hold.

Capacity math is always done against the *effective* fleet -- placeable
VMs **plus** scale-ups still in their provisioning-lag window --
otherwise a policy re-orders the same VMs every tick until the first
batch lands.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Tuple, Type

__all__ = [
    "ELASTICITY_NAMES",
    "ELASTICITY_POLICIES",
    "ElasticityPolicy",
    "FleetView",
    "PredictivePolicy",
    "SLODebtPolicy",
    "ScaleAction",
    "SignalSnapshot",
    "ThresholdPolicy",
    "make_elasticity_policy",
]


@dataclass(frozen=True)
class SignalSnapshot:
    """One control-interval observation of the running system.

    Attributes
    ----------
    now:
        Simulated time of the sample.
    site_load:
        Site -> tasks currently assigned to its workers (running or
        staging), from the scheduler's ``ClusterView``.
    admission_backlog:
        Workload instances submitted but still waiting for an admission
        token (0 on the workflow surface).
    submitted_total:
        Cumulative workload instances submitted so far (the arrival
        counter the predictive policy differentiates).
    slo_debt_s:
        Deadline debt accrued so far: closed overshoots of completed
        instances plus the live overshoot of in-flight ones.
    tenant_load:
        Tenant -> tasks in flight (empty off the workload surface).
    """

    now: float
    site_load: Mapping[str, int]
    admission_backlog: int = 0
    submitted_total: int = 0
    slo_debt_s: float = 0.0
    tenant_load: Mapping[str, int] = field(default_factory=dict)


@dataclass(frozen=True)
class FleetView:
    """Capacity state + spec bounds, as the policy may see them.

    ``pending`` counts scale-ups ordered but still inside their
    provisioning lag; ``draining`` counts VMs finishing their last
    tasks.  ``effective(site)`` -- placeable + pending -- is the figure
    to compare demand against.
    """

    vms: Mapping[str, int]
    pending: Mapping[str, int]
    draining: Mapping[str, int]
    min_vms: int
    max_vms: int

    def effective(self, site: str) -> int:
        return self.vms.get(site, 0) + self.pending.get(site, 0)

    @property
    def sites(self) -> List[str]:
        return sorted(self.vms)


@dataclass(frozen=True)
class ScaleAction:
    """One fleet delta: add (``delta > 0``) or drain (``delta < 0``)."""

    site: str
    delta: int

    def __post_init__(self):
        if self.delta == 0:
            raise ValueError("ScaleAction delta must be non-zero")


class ElasticityPolicy:
    """Abstract decision kernel; subclasses implement :meth:`decide`.

    ``spec`` is the scenario's ``ElasticitySpec`` (duck-typed: this
    package layers below ``repro.scenario``); policies read their knobs
    off it and never mutate it.
    """

    #: Registry name (set by concrete policies).
    name: str = "abstract"

    def __init__(self, spec):
        self.spec = spec

    def decide(
        self, snap: SignalSnapshot, fleet: FleetView
    ) -> List[ScaleAction]:
        """Actions for this interval (empty list = hold steady)."""
        raise NotImplementedError

    # -- shared helpers ---------------------------------------------------

    def _clamped_delta(self, fleet: FleetView, site: str, want: int) -> int:
        """Clamp a desired delta to the spec's per-site fleet bounds.

        Scale-ups are judged against the *effective* fleet (placeable +
        pending) so capacity is never double-ordered during the lag
        window.  Drains are judged against the *placeable* count alone:
        a pending VM cannot absorb work yet, so counting it toward the
        floor could drain a site's last live worker.
        """
        if want > 0:
            return min(want, fleet.max_vms - fleet.effective(site))
        room = fleet.vms.get(site, 0) - fleet.min_vms
        return -min(-want, max(0, room))

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class ThresholdPolicy(ElasticityPolicy):
    """Queue-depth hysteresis bands, judged per site.

    Scale **up** by ``scale_step`` when a site's tasks-per-effective-VM
    ratio exceeds ``up_threshold``; scale **down** by one when it falls
    below ``down_threshold`` (with the site genuinely quiet: no
    admission backlog credited to it).  The gap between the two bands
    is the hysteresis that keeps the controller from flapping; the
    controller's per-site cooldown adds dwell time on top.

    The admission backlog is folded into demand proportionally (an
    instance stuck at admission is load the engine has not seen yet --
    ignoring it would tell the policy a saturated system is idle).
    """

    name = "threshold"

    def decide(
        self, snap: SignalSnapshot, fleet: FleetView
    ) -> List[ScaleAction]:
        sites = fleet.sites
        # Credit the admission backlog evenly: submission is not yet
        # placed, so no site owns it, but it is demand all the same.
        backlog_share = (
            snap.admission_backlog / len(sites) if sites else 0.0
        )
        actions: List[ScaleAction] = []
        for site in sites:
            effective = fleet.effective(site)
            if effective <= 0:
                continue
            demand = snap.site_load.get(site, 0) + backlog_share
            ratio = demand / effective
            if ratio > self.spec.up_threshold:
                delta = self._clamped_delta(
                    fleet, site, self.spec.scale_step
                )
            elif ratio < self.spec.down_threshold:
                delta = self._clamped_delta(fleet, site, -1)
            else:
                continue
            if delta:
                actions.append(ScaleAction(site, delta))
        return actions


class SLODebtPolicy(ElasticityPolicy):
    """Scale when *projected* deadline debt crosses the budget.

    Tracks the debt growth rate across snapshots and projects it one
    provisioning lag ahead: capacity ordered when the budget is already
    blown arrives too late to defend it.  Scale-up targets the most
    backlogged site; scale-down (one VM from the least backlogged site)
    only once debt has stopped growing and the fleet is quiet, so a
    temporary lull mid-incident does not shed the capacity servicing
    the recovery.
    """

    name = "slo_debt"

    def __init__(self, spec):
        super().__init__(spec)
        self._prev_debt = 0.0
        self._prev_now: float | None = None

    def decide(
        self, snap: SignalSnapshot, fleet: FleetView
    ) -> List[ScaleAction]:
        rate = 0.0
        if self._prev_now is not None and snap.now > self._prev_now:
            rate = (snap.slo_debt_s - self._prev_debt) / (
                snap.now - self._prev_now
            )
        self._prev_debt = snap.slo_debt_s
        self._prev_now = snap.now

        projected = snap.slo_debt_s + max(0.0, rate) * self.spec.lag_s
        sites = fleet.sites
        if not sites:
            return []
        if projected > self.spec.debt_budget_s:
            # Most pressure first: highest load per effective VM.
            site = max(
                sites,
                key=lambda s: (
                    snap.site_load.get(s, 0) / max(1, fleet.effective(s)),
                    s,
                ),
            )
            delta = self._clamped_delta(fleet, site, self.spec.scale_step)
            return [ScaleAction(site, delta)] if delta else []
        if rate <= 0.0 and snap.admission_backlog == 0:
            # Debt stable and nothing queued upstream: shed idle tail.
            for site in sites:
                effective = fleet.effective(site)
                if effective <= 0:
                    continue
                ratio = snap.site_load.get(site, 0) / effective
                if ratio < self.spec.down_threshold:
                    delta = self._clamped_delta(fleet, site, -1)
                    if delta:
                        return [ScaleAction(site, delta)]
        return []


class PredictivePolicy(ElasticityPolicy):
    """EWMA arrival-rate forecast; pre-provisions ahead of ramps.

    Differentiates the cumulative submission counter into an arrival
    rate, smooths it with an EWMA (``ewma_alpha``), extrapolates the
    EWMA's own trend one provisioning lag ahead, and sizes the fleet to
    ``forecast_rate * target_task_s`` vm-equivalents (Little's law with
    the spec's per-instance service-demand estimate).  On an open-loop
    ramp the trend term is what orders capacity *before* the queue
    exists -- the whole point over the reactive policies.
    """

    name = "predictive"

    def __init__(self, spec):
        super().__init__(spec)
        self._prev_submitted: int | None = None
        self._prev_now: float | None = None
        self._ewma: float | None = None
        self._prev_ewma: float | None = None

    def _forecast_rate(self, snap: SignalSnapshot) -> float:
        if self._prev_now is None or snap.now <= self._prev_now:
            self._prev_now = snap.now
            self._prev_submitted = snap.submitted_total
            return 0.0
        dt = snap.now - self._prev_now
        rate = (snap.submitted_total - (self._prev_submitted or 0)) / dt
        self._prev_now = snap.now
        self._prev_submitted = snap.submitted_total
        alpha = self.spec.ewma_alpha
        self._prev_ewma, self._ewma = self._ewma, (
            rate if self._ewma is None else
            alpha * rate + (1 - alpha) * self._ewma
        )
        trend = 0.0
        if self._prev_ewma is not None and dt > 0:
            trend = (self._ewma - self._prev_ewma) / dt
        return max(0.0, self._ewma + max(0.0, trend) * self.spec.lag_s)

    def decide(
        self, snap: SignalSnapshot, fleet: FleetView
    ) -> List[ScaleAction]:
        rate = self._forecast_rate(snap)
        sites = fleet.sites
        if not sites:
            return []
        target_total = math.ceil(rate * self.spec.target_task_s)
        target_total = min(
            max(target_total, self.spec.min_vms_per_site * len(sites)),
            self.spec.max_vms_per_site * len(sites),
        )
        # Spread the target evenly, earlier (name-sorted) sites taking
        # the remainder -- deterministic and topology-agnostic.
        base, extra = divmod(target_total, len(sites))
        actions: List[ScaleAction] = []
        for i, site in enumerate(sites):
            target = base + (1 if i < extra else 0)
            effective = fleet.effective(site)
            want = target - effective
            if want > 0:
                delta = self._clamped_delta(fleet, site, want)
            elif want < 0 and snap.site_load.get(site, 0) < effective:
                # Shrink only while the site is not fully busy, one VM
                # per tick: a forecast dip must not mass-drain a fleet
                # that is still working through its queue.
                delta = self._clamped_delta(fleet, site, -1)
            else:
                continue
            if delta:
                actions.append(ScaleAction(site, delta))
        return actions


ELASTICITY_POLICIES: Dict[str, Type[ElasticityPolicy]] = {
    cls.name: cls
    for cls in (ThresholdPolicy, SLODebtPolicy, PredictivePolicy)
}

ELASTICITY_NAMES: Tuple[str, ...] = tuple(sorted(ELASTICITY_POLICIES))


def make_elasticity_policy(name: str, spec) -> ElasticityPolicy:
    """Instantiate the named policy over an ``ElasticitySpec``."""
    try:
        cls = ELASTICITY_POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown elasticity policy {name!r}; expected one of "
            f"{ELASTICITY_NAMES}"
        ) from None
    return cls(spec)
