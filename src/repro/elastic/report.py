"""The elastic control plane's run summary: actions taken, capacity paid.

An :class:`ElasticReport` rides on ``ScenarioResult.elastic`` and
persists into result artifacts.  Cost is the deployment's vm-seconds
ledger (provision -> decommission per VM, run end for survivors)
priced per **site class** -- the datacenter's region tag -- through the
spec's ``cost_rates`` multipliers (unlisted classes bill at 1.0
vm-second per vm-second), so a Pareto scenario can make geo-distant
capacity literally more expensive than local capacity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

__all__ = ["ElasticReport"]


@dataclass
class ElasticReport:
    """What the autoscaler did and what the fleet cost.

    Attributes
    ----------
    policy:
        Name of the deciding :class:`ElasticityPolicy`.
    actions:
        The decision log, in order: ``(t, site, delta)`` with positive
        deltas for scale-ups (decision time, not arrival time) and
        negative for drains.
    vm_seconds_by_site:
        The deployment's capacity ledger at run end.
    cost_by_class:
        vm-seconds aggregated per site class and priced by the spec's
        ``cost_rates``.
    fleet_initial / fleet_peak / fleet_final:
        Placeable worker counts: at controller start, at the high-water
        mark, and at run end.
    stranded_tasks:
        Tasks still assigned to draining VMs at run end.  Always zero
        under the drain contract; reported so a violation is loud.
    """

    policy: str
    actions: List[Tuple[float, str, int]] = field(default_factory=list)
    vm_seconds_by_site: Dict[str, float] = field(default_factory=dict)
    cost_by_class: Dict[str, float] = field(default_factory=dict)
    fleet_initial: int = 0
    fleet_peak: int = 0
    fleet_final: int = 0
    stranded_tasks: int = 0

    @property
    def vm_seconds(self) -> float:
        return sum(self.vm_seconds_by_site.values())

    @property
    def cost(self) -> float:
        return sum(self.cost_by_class.values())

    @property
    def n_scale_ups(self) -> int:
        return sum(1 for _, _, d in self.actions if d > 0)

    @property
    def n_scale_downs(self) -> int:
        return sum(1 for _, _, d in self.actions if d < 0)

    def to_dict(self) -> Dict[str, object]:
        return {
            "policy": self.policy,
            "actions": [
                {"t": t, "site": site, "delta": delta}
                for t, site, delta in self.actions
            ],
            "n_scale_ups": self.n_scale_ups,
            "n_scale_downs": self.n_scale_downs,
            "vm_seconds": self.vm_seconds,
            "vm_seconds_by_site": dict(self.vm_seconds_by_site),
            "cost": self.cost,
            "cost_by_class": dict(self.cost_by_class),
            "fleet_initial": self.fleet_initial,
            "fleet_peak": self.fleet_peak,
            "fleet_final": self.fleet_final,
            "stranded_tasks": self.stranded_tasks,
        }

    def render(self) -> str:
        lines = [
            f"elastic policy {self.policy}: "
            f"{self.n_scale_ups} scale-up(s), "
            f"{self.n_scale_downs} scale-down(s); fleet "
            f"{self.fleet_initial} -> peak {self.fleet_peak} -> "
            f"final {self.fleet_final}",
            f"  capacity cost: {self.vm_seconds:.1f} vm-seconds"
            + (
                f" ({self.cost:.1f} priced)"
                if self.cost_by_class
                else ""
            ),
        ]
        for t, site, delta in self.actions:
            verb = "add" if delta > 0 else "drain"
            lines.append(f"  t={t:9.2f}s  {verb} {abs(delta)} @ {site}")
        return "\n".join(lines)
