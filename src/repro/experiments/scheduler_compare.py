"""Scheduler comparison: placement policies on a capped fan-out.

The scenario the scheduling subsystem was built for
(``docs/scheduling.md``): a splitter task at the data-origin site
``hub`` fans out bulky intermediate files to a wave of consumers, over
the :func:`~repro.cloud.presets.heterogeneous_fanout_topology` WAN
where proximity and capacity disagree -- the *nearest* spill site sits
behind a narrow pipe, the *distant* ones behind wide pipes (optionally
with a hierarchical egress cap at the hub).

The paper's locality heuristic (Section III-D) spills nearest-first, so
its overflow tasks drag their inputs through the thin link; the
bandwidth-aware policy scores sites by predicted staging time under
current congestion (``FlowNetwork.estimate_rate`` under the fair
bandwidth model, static link figures under slots) and routes around it.
The checked property is the subsystem's acceptance criterion:
bandwidth-aware makespan never exceeds locality makespan here.

Run standalone::

    python -m repro.experiments.scheduler_compare
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.metadata.config import MetadataConfig
from repro.scenario import (
    NetworkSpec,
    ScenarioSpec,
    SchedulerSpec,
    StrategySpec,
    TopologySpec,
    run_sweep,
)
from repro.scheduling import SCHEDULER_NAMES
from repro.experiments.reporting import check, render_table
from repro.util.units import MB
from repro.workflow.dag import Task, Workflow, WorkflowFile

__all__ = [
    "SchedulerCompareResult",
    "fanout_workflow",
    "run_scheduler_compare",
]


def fanout_workflow(
    fan_out: int = 12,
    file_size: int = 24 * MB,
    compute_time: float = 2.0,
    extra_ops: int = 0,
    seed_size: int = 1 * MB,
) -> Workflow:
    """A splitter fanning out ``fan_out`` bulky files to consumers.

    The splitter reads one external ``seed`` input staged at the
    engine's ``input_site``.  Data-*aware* policies (bandwidth_aware,
    hybrid) anchor the splitter there because staging is free on-site;
    data-blind ones (locality's root round-robin, round_robin,
    load_balanced) place it on the fleet's first worker regardless.
    With the scenario default ``input_site="hub"`` both coincide --
    worker 0 lives at the topology's first site -- so every policy
    starts from an identical data layout and the comparison varies
    only the consumer placements.  Moving ``input_site`` elsewhere
    additionally charges the data-blind policies a cross-WAN seed
    fetch (the ``input_site`` knob's purpose).
    """
    if fan_out <= 0:
        raise ValueError("fan_out must be positive")
    wf = Workflow("capped-fanout")
    seed = WorkflowFile("fanout/seed", size=seed_size)
    parts = [
        WorkflowFile(f"fanout/part-{i}", size=file_size)
        for i in range(fan_out)
    ]
    wf.add_task(
        Task(
            "split",
            inputs=[seed],
            outputs=parts,
            compute_time=min(compute_time, 0.5),
            stage="split",
        )
    )
    for i in range(fan_out):
        wf.add_task(
            Task(
                f"consume-{i}",
                inputs=[parts[i]],
                outputs=[WorkflowFile(f"fanout/result-{i}", size=64 * 1024)],
                compute_time=compute_time,
                extra_ops=extra_ops,
                stage="consume",
            )
        )
    return wf


@dataclass
class SchedulerCompareResult:
    """Per-policy makespan and data-movement accounting."""

    policies: Sequence[str]
    n_nodes: int
    bandwidth_model: str
    #: policy -> workflow makespan, seconds.
    makespan: Dict[str, float] = field(default_factory=dict)
    #: policy -> total task time spent waiting on transfers, seconds.
    transfer_time: Dict[str, float] = field(default_factory=dict)
    #: policy -> bytes moved across WAN links.
    wan_bytes: Dict[str, int] = field(default_factory=dict)
    #: policy -> tasks per site (placement shape).
    tasks_per_site: Dict[str, Dict[str, int]] = field(default_factory=dict)

    def properties(self) -> List[str]:
        out: List[str] = []
        if {"bandwidth_aware", "locality"} <= set(self.makespan):
            bw = self.makespan["bandwidth_aware"]
            loc = self.makespan["locality"]
            out.append(
                check(
                    "bandwidth-aware beats (or ties) locality on the "
                    "capped fan-out",
                    bw <= loc,
                    f"bandwidth_aware {bw:.1f}s vs locality {loc:.1f}s",
                )
            )
            out.append(
                check(
                    "bandwidth-aware spends less task time waiting on "
                    "transfers",
                    self.transfer_time["bandwidth_aware"]
                    <= self.transfer_time["locality"],
                    f"{self.transfer_time['bandwidth_aware']:.1f}s vs "
                    f"{self.transfer_time['locality']:.1f}s",
                )
            )
        if {"hybrid", "round_robin"} <= set(self.makespan):
            out.append(
                check(
                    "hybrid beats blind round-robin",
                    self.makespan["hybrid"]
                    <= self.makespan["round_robin"],
                    f"hybrid {self.makespan['hybrid']:.1f}s vs "
                    f"round_robin {self.makespan['round_robin']:.1f}s",
                )
            )
        return out

    def render(self) -> str:
        rows = []
        for p in self.policies:
            rows.append(
                [
                    p,
                    f"{self.makespan[p]:.2f}",
                    f"{self.transfer_time[p]:.2f}",
                    f"{self.wan_bytes[p] / MB:.0f}",
                    " ".join(
                        f"{site}:{n}"
                        for site, n in sorted(
                            self.tasks_per_site[p].items()
                        )
                    ),
                ]
            )
        table = render_table(
            [
                "scheduler",
                "makespan (s)",
                "transfer wait (s)",
                "WAN MB",
                "tasks per site",
            ],
            rows,
            title=(
                f"Scheduler comparison -- capped fan-out, "
                f"{self.n_nodes} nodes, {self.bandwidth_model} model"
            ),
        )
        return table + "\n" + "\n".join(self.properties())


def run_scheduler_compare(
    policies: Sequence[str] = SCHEDULER_NAMES,
    n_nodes: int = 8,
    fan_out: int = 12,
    file_size: int = 24 * MB,
    compute_time: float = 2.0,
    extra_ops: int = 0,
    seed: int = 11,
    bandwidth_model: str = "fair",
    hub_egress_bw: Optional[float] = None,
    strategy: str = "decentralized",
    input_site: str = "hub",
    config: Optional[MetadataConfig] = None,
    jobs: int = 1,
) -> SchedulerCompareResult:
    """Run the capped-link fan-out under each placement policy.

    A spec consumer on the sweep path: one base
    :class:`~repro.scenario.ScenarioSpec` describes the whole setup,
    and :func:`~repro.scenario.run_sweep` runs the one-axis
    ``scheduler.name`` grid -- every cell gets a fresh deployment on a
    freshly-built topology (site caps mutate topologies in place), so
    the only varying factor is placement.  ``jobs=N`` runs policies in
    N worker processes (identical results).  ``hub_egress_bw`` adds a
    hierarchical egress cap at the data origin (fair model only);
    ``config`` supplies :class:`MetadataConfig` defaults the spec's
    own pins override.
    """
    base = ScenarioSpec(
        name="scheduler-compare",
        surface="workflow",
        topology=TopologySpec(
            preset="hetero_fanout",
            hub_egress_mb=(
                hub_egress_bw / MB if hub_egress_bw is not None else None
            ),
        ),
        network=NetworkSpec(bandwidth_model=bandwidth_model),
        strategy=StrategySpec(name=strategy),
        scheduler=SchedulerSpec(input_site=input_site),
        n_nodes=n_nodes,
        seed=seed,
    )
    result = SchedulerCompareResult(
        policies=tuple(policies),
        n_nodes=n_nodes,
        bandwidth_model=bandwidth_model,
    )
    sweep = run_sweep(
        base,
        {"scheduler.name": list(policies)},
        jobs=jobs,
        workflow=fanout_workflow(
            fan_out=fan_out,
            file_size=file_size,
            compute_time=compute_time,
            extra_ops=extra_ops,
        ),
        config_base=config,
    )
    for cell in sweep.cells:
        if cell.error is not None:
            raise RuntimeError(
                f"scheduler {cell.overrides['scheduler.name']!r} "
                f"failed: {cell.error}"
            )
        policy = cell.overrides["scheduler.name"]
        run = cell.result
        res = run.result
        result.makespan[policy] = res.makespan
        result.transfer_time[policy] = res.total_transfer_time
        result.wan_bytes[policy] = run.wan_bytes
        result.tasks_per_site[policy] = res.tasks_per_site()
    return result


if __name__ == "__main__":
    for model in ("fair", "slots"):
        print(run_scheduler_compare(bandwidth_model=model).render())
        print()
