"""Table I: settings for the real-life workflow scenarios.

==================  ===========  ==========  =============
Scenario            Small Scale  Comp. Int.  Metadata Int.
==================  ===========  ==========  =============
Operations / node   100          200         1,000
Computation / node  1 s          5 s         1 s
Total ops BuzzFlow  7,200        14,400      72,000
Total ops Montage   16,000       32,000      150,000*
==================  ===========  ==========  =============

(*) The paper rounds Montage's MI total to 150,000; with the 160 jobs
implied by the SS/CI rows the exact figure is 160,000 -- we keep the
DAG fixed and note the discrepancy in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.workflow.applications import BUZZFLOW_JOBS, MONTAGE_JOBS

__all__ = ["SCENARIOS", "ScenarioSpec"]


@dataclass(frozen=True)
class ScenarioSpec:
    """One column of Table I."""

    name: str
    label: str
    ops_per_task: int
    compute_time: float

    def total_ops(self, n_jobs: int) -> int:
        """Aggregate metadata operations for a workflow of ``n_jobs``."""
        return self.ops_per_task * n_jobs

    @property
    def paper_total_buzzflow(self) -> int:
        return self.ops_per_task * BUZZFLOW_JOBS

    @property
    def paper_total_montage(self) -> int:
        return self.ops_per_task * MONTAGE_JOBS


SCENARIOS: Dict[str, ScenarioSpec] = {
    "SS": ScenarioSpec("SS", "Small Scale", ops_per_task=100, compute_time=1.0),
    "CI": ScenarioSpec(
        "CI", "Computation Intensive", ops_per_task=200, compute_time=5.0
    ),
    "MI": ScenarioSpec(
        "MI", "Metadata Intensive", ops_per_task=1000, compute_time=1.0
    ),
}
