"""Figure 1: cost of remote metadata operations.

"Average time for file-posting metadata operations performed from the
West Europe datacenter, when the metadata server is located within the
same datacenter, the same geographical region and a remote region."

A single client in West Europe posts 100 / 500 / 1000 / 5000 entries to
a lone registry instance placed at increasing distance.  The paper's
property: remote operations take **orders of magnitude** longer than
local ones, and time grows linearly with the number of published files.

This experiment drives a raw :class:`MetadataRegistry` directly (no
strategy middleware), matching the paper's "simple experiment conducted
on the Azure cloud ... isolating the metadata access times".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Sequence

from repro.sim import Environment
from repro.cloud.network import Network
from repro.cloud.presets import azure_4dc_topology
from repro.metadata.config import MetadataConfig
from repro.metadata.entry import RegistryEntry
from repro.metadata.registry import MetadataRegistry
from repro.experiments.reporting import check, render_table

__all__ = ["Fig1Result", "run_fig1", "PAPER_FILE_COUNTS"]

#: X axis of the paper's figure.
PAPER_FILE_COUNTS = (100, 500, 1000, 5000)

#: (client site, registry site) for the three distance classes.
PLACEMENTS = {
    "same site": ("west-europe", "west-europe"),
    "same region": ("west-europe", "north-europe"),
    "distant region": ("west-europe", "east-us"),
}


@dataclass
class Fig1Result:
    """Total posting time per (placement, file count)."""

    file_counts: Sequence[int]
    #: placement label -> list of total times aligned with file_counts.
    times: Dict[str, List[float]] = field(default_factory=dict)

    def ratio(self, n_files: int, far: str, near: str = "same site") -> float:
        """Remote/local slowdown at a given file count."""
        idx = list(self.file_counts).index(n_files)
        near_t = self.times[near][idx]
        return self.times[far][idx] / near_t if near_t > 0 else float("inf")

    def properties(self) -> List[str]:
        """The paper's qualitative claims, each checked on the data."""
        biggest = max(self.file_counts)
        out = [
            check(
                "remote ops are orders of magnitude slower than local",
                self.ratio(biggest, "distant region") >= 10,
                f"{self.ratio(biggest, 'distant region'):.1f}x at "
                f"{biggest} files",
            ),
            check(
                "same-region sits between local and geo-distant",
                self.times["same site"][-1]
                < self.times["same region"][-1]
                < self.times["distant region"][-1],
            ),
        ]
        for label, series in self.times.items():
            monotone = all(a < b for a, b in zip(series, series[1:]))
            out.append(
                check(f"time grows with published files ({label})", monotone)
            )
        return out

    def render(self) -> str:
        rows = []
        for i, n in enumerate(self.file_counts):
            rows.append(
                [n]
                + [self.times[label][i] for label in PLACEMENTS]
            )
        table = render_table(
            ["files"] + list(PLACEMENTS),
            rows,
            title="Fig. 1 -- file-posting time (s) from West Europe",
            float_fmt="{:.2f}",
        )
        return table + "\n" + "\n".join(self.properties())


def run_fig1(
    file_counts: Sequence[int] = PAPER_FILE_COUNTS,
    seed: int = 0,
    config: MetadataConfig | None = None,
) -> Fig1Result:
    """Measure posting times for every placement and file count."""
    cfg = config or MetadataConfig()
    result = Fig1Result(file_counts=tuple(file_counts))
    for label, (client_site, registry_site) in PLACEMENTS.items():
        series: List[float] = []
        for n_files in file_counts:
            env = Environment()
            topo = azure_4dc_topology()
            network = Network(env, topo)
            registry = MetadataRegistry(env, registry_site, cfg)

            def post(n=n_files, site=client_site, reg=registry) -> Generator:
                start = env.now
                for i in range(n):
                    # The paper's posting op: look-up read then write.
                    yield from reg.rpc_get(network, site, f"file{i}")
                    yield from reg.rpc_put(
                        network,
                        site,
                        RegistryEntry(
                            key=f"file{i}", locations=frozenset({site})
                        ),
                    )
                return env.now - start

            proc = env.process(post())
            series.append(env.run(until=proc))
        result.times[label] = series
    return result
