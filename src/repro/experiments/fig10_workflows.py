"""Figure 10 + Table I: makespan of the real-life workflows.

BuzzFlow and Montage under the three Table I scenarios (Small Scale,
Computation Intensive, Metadata Intensive), executed over 32 nodes in 4
datacenters under each of the four strategies.

The centralized registry is placed at East US -- "arbitrarily placed in
any of the datacenters" in the paper; we pick the most central site,
which is *generous* to the baseline.

Paper properties checked:

- metadata-intensive scenarios: the decentralized strategies win --
  the paper reports 15 % (BuzzFlow) and 28 % (Montage) gains for DR
  over the centralized baseline;
- computation-intensive scenarios favor the replicated strategy
  ("centralized replication") while penalizing hybrid ("distributed
  replication") relative to its MI showing;
- at small scale, strategy differences shrink (decentralization buys
  little when there is no metadata pressure).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cloud.deployment import Deployment
from repro.metadata.config import MetadataConfig
from repro.metadata.controller import ArchitectureController, StrategyName
from repro.experiments.reporting import check, render_table
from repro.experiments.scenarios import SCENARIOS, ScenarioSpec
from repro.workflow.applications import buzzflow, montage
from repro.workflow.engine import WorkflowEngine

__all__ = ["Fig10Result", "run_fig10", "PAPER_GAINS"]

#: Paper-reported DR gain over the centralized baseline in the MI
#: scenario, per workflow.
PAPER_GAINS = {"buzzflow": 0.15, "montage": 0.28}

WORKFLOW_BUILDERS = {"buzzflow": buzzflow, "montage": montage}

#: "Arbitrary" centralized-registry site; most central = kind baseline.
DEFAULT_HOME_SITE = "east-us"


@dataclass
class Fig10Result:
    n_nodes: int
    scenarios: Sequence[str]
    #: (workflow, scenario, strategy) -> makespan seconds.
    makespan: Dict[Tuple[str, str, str], float] = field(default_factory=dict)

    def gain(self, workflow: str, scenario: str, strategy: str) -> float:
        base = self.makespan[(workflow, scenario, StrategyName.CENTRALIZED)]
        if base <= 0:
            return 0.0
        return 1.0 - self.makespan[(workflow, scenario, strategy)] / base

    def best_strategy(self, workflow: str, scenario: str) -> str:
        return min(
            StrategyName.all(),
            key=lambda s: self.makespan[(workflow, scenario, s)],
        )

    def properties(self) -> List[str]:
        out: List[str] = []
        for wf, paper_gain in PAPER_GAINS.items():
            if "MI" in self.scenarios:
                g = self.gain(wf, "MI", StrategyName.HYBRID)
                out.append(
                    check(
                        f"{wf} MI: DR beats the centralized baseline "
                        f"(paper: {paper_gain:.0%})",
                        g >= paper_gain * 0.5,
                        f"measured {g:.0%}",
                    )
                )
                out.append(
                    check(
                        f"{wf} MI: decentralized strategies beat replicated "
                        "or centralized",
                        self.best_strategy(wf, "MI")
                        in (StrategyName.HYBRID, StrategyName.DECENTRALIZED,
                            StrategyName.REPLICATED),
                    )
                )
            if "CI" in self.scenarios:
                rep_gain = self.gain(wf, "CI", StrategyName.REPLICATED)
                dr_ci = self.gain(wf, "CI", StrategyName.HYBRID)
                out.append(
                    check(
                        f"{wf} CI: replicated is competitive "
                        "(low metadata interaction)",
                        rep_gain >= dr_ci - 0.15,
                        f"replicated {rep_gain:.0%} vs hybrid {dr_ci:.0%}",
                    )
                )
            if "SS" in self.scenarios and "MI" in self.scenarios:
                spread_ss = self._strategy_spread(wf, "SS")
                spread_mi = self._strategy_spread(wf, "MI")
                out.append(
                    check(
                        f"{wf}: strategy choice matters less at small scale",
                        spread_ss <= spread_mi * 1.25,
                        f"SS spread {spread_ss:.0f}s vs MI {spread_mi:.0f}s",
                    )
                )
        return out

    def _strategy_spread(self, workflow: str, scenario: str) -> float:
        vals = [
            self.makespan[(workflow, scenario, s)] for s in StrategyName.all()
        ]
        return max(vals) - min(vals)

    def render(self) -> str:
        rows = []
        for wf in WORKFLOW_BUILDERS:
            for sc in self.scenarios:
                row = [wf, sc]
                for s in StrategyName.all():
                    row.append(self.makespan.get((wf, sc, s), float("nan")))
                rows.append(row)
        table = render_table(
            ["workflow", "scenario"] + StrategyName.all(),
            rows,
            title=f"Fig. 10 -- workflow makespan (s), {self.n_nodes} nodes",
        )
        return table + "\n" + "\n".join(self.properties())


def run_fig10(
    scenarios: Sequence[str] = ("SS", "CI", "MI"),
    workflows: Sequence[str] = ("buzzflow", "montage"),
    n_nodes: int = 32,
    seed: int = 7,
    home_site: str = DEFAULT_HOME_SITE,
    config: Optional[MetadataConfig] = None,
    ops_scale: float = 1.0,
) -> Fig10Result:
    """Run the Table I scenarios.

    ``ops_scale`` uniformly scales every scenario's per-task metadata
    operation count (DAGs and compute times stay fixed).  The checked
    properties are *relative* (gains and spreads between strategies), so
    they are insensitive to a moderate down-scale; CI uses 0.5 to halve
    the workload of the heaviest benchmark.
    """
    if ops_scale <= 0:
        raise ValueError("ops_scale must be positive")
    result = Fig10Result(n_nodes=n_nodes, scenarios=tuple(scenarios))
    for wf_name in workflows:
        builder = WORKFLOW_BUILDERS[wf_name]
        for sc_name in scenarios:
            spec: ScenarioSpec = SCENARIOS[sc_name]
            if ops_scale != 1.0:
                spec = ScenarioSpec(
                    spec.name,
                    spec.label,
                    ops_per_task=max(1, round(spec.ops_per_task * ops_scale)),
                    compute_time=spec.compute_time,
                )
            for strat in StrategyName.all():
                # Synchronous hybrid replication: the Section IV-D
                # prototype behaviour, which reproduces the paper's
                # moderate workflow-level gains (the lazy mode overshoots
                # them; see the ablation bench).
                cfg = config or MetadataConfig()
                cfg = MetadataConfig(
                    **{
                        **cfg.__dict__,
                        "home_site": home_site,
                        "hybrid_sync_replication": True,
                    }
                )
                dep = Deployment(
                    n_nodes=n_nodes,
                    seed=seed,
                    bandwidth_model=cfg.bandwidth_model or "slots",
                )
                ctrl = ArchitectureController(dep, strategy=strat, config=cfg)
                engine = WorkflowEngine(dep, ctrl.strategy)
                wf = builder(
                    ops_per_task=spec.ops_per_task,
                    compute_time=spec.compute_time,
                )
                res = engine.run(wf)
                ctrl.shutdown()
                result.makespan[(wf_name, sc_name, strat)] = res.makespan
    return result
