"""Experiment harness: one module per table/figure of the evaluation.

Each ``figN_*`` module exposes a ``run(...)`` function returning a
result object with the measured series plus the paper's reference
numbers, and a ``render()`` producing the text table the benchmarks
print.  See DESIGN.md Section 4 for the experiment index and
EXPERIMENTS.md for recorded paper-vs-measured outcomes.
"""

from repro.experiments.scenarios import SCENARIOS, ScenarioSpec
from repro.experiments.synthetic import (
    SyntheticResult,
    run_synthetic_workload,
)
from repro.experiments.fig1_latency import run_fig1
from repro.experiments.fig3_replication import run_fig3
from repro.experiments.fig5_makespan import run_fig5
from repro.experiments.fig6_progress import run_fig6
from repro.experiments.fig7_throughput import run_fig7
from repro.experiments.fig8_scalability import run_fig8
from repro.experiments.fig10_workflows import run_fig10

__all__ = [
    "SCENARIOS",
    "ScenarioSpec",
    "SyntheticResult",
    "run_fig1",
    "run_fig3",
    "run_fig5",
    "run_fig6",
    "run_fig7",
    "run_fig8",
    "run_fig10",
    "run_synthetic_workload",
]
