"""Figure 6: completion progress of the decentralized strategies.

"Percentage of operations completed along time by each of the
decentralized strategies: non-replicated (DN) and with local
replication (DR)", with the centralized average as reference.

Paper properties checked:

- between 20 % and 70 % progress, DR shows a speedup of at least ~1.25x
  over DN (the window that matters for proactive data provisioning);
- the centralized strategy starts reasonably but slows down as the
  registry queue builds, ending far behind the decentralized pair;
- site centrality: the best decentralized per-site completion belongs
  to the most central datacenter (East US) and the worst to the least
  central (South Central US).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cloud.presets import azure_4dc_topology
from repro.metadata.config import MetadataConfig
from repro.metadata.controller import StrategyName
from repro.experiments.reporting import check, render_table
from repro.experiments.synthetic import run_synthetic_workload

__all__ = ["Fig6Result", "run_fig6"]

PROGRESS_PERCENTS = tuple(range(10, 101, 10))


@dataclass
class Fig6Result:
    n_nodes: int
    ops_per_node: int
    percents: Sequence[float]
    #: strategy -> time (s) at each progress percent.
    curves: Dict[str, List[float]] = field(default_factory=dict)
    #: strategy -> site -> mean node completion time.
    site_times: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def speedup(self, lo: float = 20, hi: float = 70) -> float:
        """Mean DN/DR time ratio over the [lo, hi]% progress window."""
        dn = self.curves[StrategyName.DECENTRALIZED]
        dr = self.curves[StrategyName.HYBRID]
        ratios = [
            d / r
            for p, d, r in zip(self.percents, dn, dr)
            if lo <= p <= hi and r > 0
        ]
        return float(np.mean(ratios)) if ratios else 0.0

    def centrality_ordering(self) -> Tuple[str, str]:
        """(best site, worst site) by DR per-site completion time."""
        times = self.site_times[StrategyName.HYBRID]
        best = min(times, key=times.get)
        worst = max(times, key=times.get)
        return best, worst

    def properties(self) -> List[str]:
        topo = azure_4dc_topology()
        best, worst = self.centrality_ordering()
        cen = self.curves[StrategyName.CENTRALIZED]
        dn = self.curves[StrategyName.DECENTRALIZED]
        # "Fairly good start ... reaching up to twice the completion time"
        early_ratio = cen[0] / dn[0] if dn[0] > 0 else 0
        late_ratio = cen[-1] / dn[-1] if dn[-1] > 0 else 0
        return [
            check(
                "DR speedup >= 1.25x over DN in the 20-70% window",
                self.speedup() >= 1.25,
                f"measured {self.speedup():.2f}x",
            ),
            check(
                "centralized falls further behind as the run progresses",
                late_ratio > early_ratio and late_ratio >= 1.2,
                f"{early_ratio:.2f}x early -> {late_ratio:.2f}x late",
            ),
            check(
                "best decentralized site is the most central (East US)",
                best == topo.most_central().name,
                f"best={best}",
            ),
            check(
                "worst decentralized site is the least central (SC US)",
                worst == topo.least_central().name,
                f"worst={worst}",
            ),
        ]

    def render(self) -> str:
        strategies = list(self.curves)
        rows = [
            [p] + [self.curves[s][i] for s in strategies]
            for i, p in enumerate(self.percents)
        ]
        table = render_table(
            ["% done"] + strategies,
            rows,
            title=(
                f"Fig. 6 -- time (s) to reach each completion percentage "
                f"({self.n_nodes} nodes, {self.ops_per_node} ops/node)"
            ),
        )
        return table + "\n" + "\n".join(self.properties())


def run_fig6(
    n_nodes: int = 32,
    ops_per_node: int = 5000,
    seed: int = 0,
    config: Optional[MetadataConfig] = None,
    percents: Sequence[float] = PROGRESS_PERCENTS,
) -> Fig6Result:
    strategies = [
        StrategyName.CENTRALIZED,
        StrategyName.DECENTRALIZED,
        StrategyName.HYBRID,
    ]
    result = Fig6Result(
        n_nodes=n_nodes, ops_per_node=ops_per_node, percents=tuple(percents)
    )
    for strat in strategies:
        run = run_synthetic_workload(
            strat,
            n_nodes=n_nodes,
            ops_per_node=ops_per_node,
            seed=seed,
            config=config,
        )
        result.curves[strat] = [
            t for _, t in run.ops.progress_curve(percents)
        ]
        result.site_times[strat] = run.node_time_by_site()
    return result
