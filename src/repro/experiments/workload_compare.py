"""Multi-tenant workload comparison: strategies x schedulers under contention.

The scenario the workload subsystem was built for
(``docs/workloads.md``): K concurrent tenants submit workflow instances
to *one shared deployment* -- same environment, same network, same
metadata strategy, same placement policy -- and the sweep repeats the
identical workload for every (strategy, scheduler) combination.  This is
where the paper's strategies should actually diverge: a centralized
registry serializes every tenant's metadata traffic through one site,
while the decentralized/hybrid layouts spread it, and the placement
policies decide how much the tenants' data paths collide.

Checked properties (the subsystem's acceptance criteria):

- every tenant's every workflow instance completes in every combination;
- per-workflow op snapshots sum exactly to the strategy's global op
  count -- concurrent runs neither lose nor double-attribute operations;
- when the closed-loop workload runs under ``max_in_flight`` admission,
  the observed peak concurrency never exceeds the bound.

Run standalone::

    python -m repro.experiments.workload_compare
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from repro.experiments.reporting import check, render_table
from repro.metadata.config import MetadataConfig
from repro.scenario import (
    NetworkSpec,
    ScenarioSpec,
    SchedulerSpec,
    StrategySpec,
    TopologySpec,
    run_cells,
)
from repro.workload import WorkloadSpec
from repro.workload.result import WorkloadResult

__all__ = ["WorkloadCompareResult", "run_workload_compare"]

Combo = Tuple[str, str]


@dataclass
class WorkloadCompareResult:
    """Per-(strategy, scheduler) workload outcomes plus property checks."""

    strategies: Sequence[str]
    schedulers: Sequence[str]
    n_tenants: int
    n_instances: int
    mode: str
    admission: str
    results: Dict[Combo, WorkloadResult] = field(default_factory=dict)

    def properties(self) -> list:
        out = []
        expected = self.n_tenants * self.n_instances
        out.append(
            check(
                "every tenant's workflows complete in every combination",
                all(
                    res.n_completed == expected
                    and len(res.tenants()) == self.n_tenants
                    for res in self.results.values()
                ),
                f"{expected} instances x {len(self.results)} combos",
            )
        )
        out.append(
            check(
                "per-workflow op counts sum to the strategy's global "
                "count (no lost/double-attributed ops)",
                all(
                    res.attributed_ops() == res.total_ops
                    for res in self.results.values()
                ),
                "tag-filtered snapshots == global delta",
            )
        )
        bounded = [
            res
            for res in self.results.values()
            if res.admission_bound is not None
        ]
        if bounded:
            out.append(
                check(
                    "admission bound never exceeded",
                    all(
                        res.peak_in_flight <= res.admission_bound
                        for res in bounded
                    ),
                    f"peak <= bound across {len(bounded)} bounded runs",
                )
            )
        return out

    def render(self) -> str:
        rows = []
        for (strategy, scheduler), res in sorted(self.results.items()):
            rows.append(
                [
                    strategy,
                    scheduler,
                    f"{res.makespan:.2f}",
                    f"{res.mean_queue_wait():.2f}",
                    f"{res.slowdown_percentile(50):.2f}",
                    f"{res.slowdown_percentile(95):.2f}",
                    f"{res.jain_fairness():.3f}",
                    f"{res.op_throughput():.0f}",
                ]
            )
        summary = render_table(
            [
                "strategy",
                "scheduler",
                "makespan (s)",
                "queue wait (s)",
                "p50 slowdown",
                "p95 slowdown",
                "Jain",
                "ops/s",
            ],
            rows,
            title=(
                f"Workload comparison -- {self.n_tenants} tenants x "
                f"{self.n_instances} instances, {self.mode} loop, "
                f"{self.admission} admission"
            ),
        )
        details = "\n\n".join(
            res.render() for _, res in sorted(self.results.items())
        )
        return (
            summary
            + "\n\n"
            + details
            + "\n\n"
            + "\n".join(self.properties())
        )


def run_workload_compare(
    strategies: Sequence[str] = ("centralized", "decentralized", "hybrid"),
    schedulers: Sequence[str] = ("locality", "bandwidth_aware"),
    n_tenants: int = 8,
    n_instances: int = 1,
    applications: Sequence[str] = (
        "montage-small",
        "buzzflow-small",
        "scatter",
        "pipeline",
    ),
    mode: str = "closed",
    think_time: float = 0.0,
    arrival_rate: Optional[float] = None,
    admission: str = "max_in_flight",
    max_in_flight: int = 4,
    ops_per_task: int = 8,
    compute_time: float = 0.25,
    n_nodes: int = 16,
    seed: int = 17,
    bandwidth_model: str = "slots",
    spread_inputs: bool = True,
    config: Optional[MetadataConfig] = None,
    jobs: int = 1,
) -> WorkloadCompareResult:
    """Run the identical K-tenant workload under each combination.

    A spec consumer on the sweep path: one base
    :class:`~repro.scenario.ScenarioSpec` carries the shared
    workload/admission description, each (strategy, scheduler) cell is
    a ``replace(...)`` variant, and the grid runs through
    :func:`~repro.scenario.run_cells` -- every combination gets a
    fresh deployment with the same seed and an identically generated
    workload (the workload seed is independent of the deployment's),
    so strategy and placement policy are the only varying factors.
    ``jobs=N`` runs combinations in N worker processes (identical
    results).  ``spread_inputs`` stages tenant inputs round-robin
    across the topology's sites (per-tenant data origins); admission
    knobs apply to every combination alike.
    """
    # A config that already pins an admission policy (e.g. built by the
    # experiment runner's --admission) wins over the scenario default.
    pinned = config is not None and config.admission is not None
    topology = TopologySpec()
    base = ScenarioSpec(
        name="workload-compare",
        surface="workload",
        topology=topology,
        network=NetworkSpec(bandwidth_model=bandwidth_model),
        admission=config.admission if pinned else admission,
        max_in_flight=(
            config.max_in_flight
            if pinned
            else (max_in_flight if admission == "max_in_flight" else None)
        ),
        token_rate=config.token_rate if pinned else None,
        token_burst=(
            config.token_burst
            if pinned and config.admission == "token_bucket"
            else None
        ),
        n_nodes=n_nodes,
        seed=seed,
    )
    admission = base.admission or "unbounded"
    result = WorkloadCompareResult(
        strategies=tuple(strategies),
        schedulers=tuple(schedulers),
        n_tenants=n_tenants,
        n_instances=n_instances,
        mode=mode,
        admission=admission,
    )
    cells = []
    for strategy in strategies:
        for scheduler in schedulers:
            spec = base.replace(
                strategy=StrategySpec(name=strategy),
                scheduler=SchedulerSpec(name=scheduler),
                workload=WorkloadSpec.uniform(
                    n_tenants,
                    applications=applications,
                    mode=mode,
                    n_instances=n_instances,
                    think_time=think_time,
                    arrival_rate=arrival_rate,
                    input_sites=(
                        topology.site_names() if spread_inputs else None
                    ),
                    ops_per_task=ops_per_task,
                    compute_time=compute_time,
                    seed=seed,
                    name=f"{strategy}/{scheduler}",
                ),
            )
            cells.append(({"strategy": strategy, "scheduler": scheduler}, spec))
    for cell in run_cells(cells, jobs=jobs, config_base=config):
        if cell.error is not None:
            raise RuntimeError(
                f"combination {cell.overrides['strategy']}/"
                f"{cell.overrides['scheduler']} failed: {cell.error}"
            )
        combo = (cell.overrides["strategy"], cell.overrides["scheduler"])
        result.results[combo] = cell.result.result
    return result


if __name__ == "__main__":
    print(run_workload_compare().render())
