"""Figure 7: metadata throughput as the number of nodes grows.

8 -> 128 nodes, constant 5,000 ops per node.  Paper properties:

- the decentralized implementations "yield a linearly growing
  throughput, proportional to the number of active nodes", peaking
  around ~1,150 ops/s at 128 nodes;
- the replicated strategy degrades beyond 32 nodes (the single
  synchronization agent becomes a bottleneck);
- the centralized baseline stays essentially flat (single-instance
  service cap).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.metadata.config import MetadataConfig
from repro.metadata.controller import StrategyName
from repro.experiments.reporting import check, render_table
from repro.experiments.synthetic import run_synthetic_workload

__all__ = ["Fig7Result", "run_fig7", "PAPER_NODE_COUNTS"]

PAPER_NODE_COUNTS = (8, 16, 32, 64, 128)


@dataclass
class Fig7Result:
    node_counts: Sequence[int]
    ops_per_node: int
    #: strategy -> throughput (ops/s) per node count.
    throughput: Dict[str, List[float]] = field(default_factory=dict)

    def scaling_ratio(self, strategy: str) -> float:
        """Throughput growth factor from the smallest to largest fleet."""
        series = self.throughput[strategy]
        return series[-1] / series[0] if series[0] > 0 else 0.0

    def properties(self) -> List[str]:
        node_ratio = self.node_counts[-1] / self.node_counts[0]
        dn_scale = self.scaling_ratio(StrategyName.DECENTRALIZED)
        dr_scale = self.scaling_ratio(StrategyName.HYBRID)
        cen_scale = self.scaling_ratio(StrategyName.CENTRALIZED)
        rep = self.throughput[StrategyName.REPLICATED]
        idx32 = list(self.node_counts).index(32) if 32 in self.node_counts else len(rep) // 2
        late_node_growth = self.node_counts[-1] / self.node_counts[idx32]
        # "Degrades" in the paper's sense: past 32 nodes the strategy
        # stops converting nodes into throughput (flat or falling) while
        # the decentralized pair keeps growing.
        rep_degrades = (
            rep[-1] <= rep[idx32] * max(1.0, 0.45 * late_node_growth)
            and rep[-1] < self.throughput[StrategyName.HYBRID][-1]
        )
        return [
            check(
                "decentralized throughput grows ~linearly with nodes",
                dn_scale >= 0.4 * node_ratio,
                f"x{dn_scale:.1f} over x{node_ratio:.0f} nodes",
            ),
            check(
                "hybrid scales like decentralized",
                dr_scale >= 0.4 * node_ratio,
                f"x{dr_scale:.1f}",
            ),
            check(
                "centralized scales clearly sublinearly "
                "(single-instance cap)",
                cen_scale <= 0.6 * node_ratio
                and self.throughput[StrategyName.CENTRALIZED][-1]
                <= 0.55 * self.throughput[StrategyName.DECENTRALIZED][-1],
                f"x{cen_scale:.1f} over x{node_ratio:.0f} nodes",
            ),
            check(
                "replicated stops scaling past ~32 nodes",
                rep_degrades,
                f"peak<=32n {max(rep[: idx32 + 1]):.0f} vs "
                f"128n {rep[-1]:.0f} ops/s",
            ),
            check(
                "decentralized peak in the paper's ballpark (~1150 ops/s)",
                self.throughput[StrategyName.DECENTRALIZED][-1] >= 500,
                f"{self.throughput[StrategyName.DECENTRALIZED][-1]:.0f}"
                " ops/s",
            ),
        ]

    def render(self) -> str:
        from repro.experiments.charts import sparkline

        strategies = list(self.throughput)
        rows = [
            [n] + [self.throughput[s][i] for s in strategies]
            for i, n in enumerate(self.node_counts)
        ]
        table = render_table(
            ["nodes"] + strategies,
            rows,
            title=(
                f"Fig. 7 -- aggregate throughput (ops/s), "
                f"{self.ops_per_node} ops/node"
            ),
        )
        shapes = "\n".join(
            f"  {s:14s} {sparkline(self.throughput[s])}"
            for s in strategies
        )
        return (
            table
            + "\nthroughput shape over node counts:\n"
            + shapes
            + "\n"
            + "\n".join(self.properties())
        )


def run_fig7(
    node_counts: Sequence[int] = PAPER_NODE_COUNTS,
    ops_per_node: int = 5000,
    strategies: Optional[Sequence[str]] = None,
    seed: int = 0,
    config: Optional[MetadataConfig] = None,
) -> Fig7Result:
    strategies = list(strategies or StrategyName.all())
    result = Fig7Result(
        node_counts=tuple(node_counts), ops_per_node=ops_per_node
    )
    for strat in strategies:
        result.throughput[strat] = []
        for n in node_counts:
            run = run_synthetic_workload(
                strat,
                n_nodes=n,
                ops_per_node=ops_per_node,
                seed=seed,
                config=config,
            )
            result.throughput[strat].append(run.throughput)
    return result
