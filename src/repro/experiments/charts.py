"""Terminal charts: render experiment series without a plotting stack.

The benchmark reports are text-first (diff-able, CI-friendly); these
helpers add visual shape to them -- horizontal bar charts for figure
comparisons (Fig. 10-style grouped bars) and line charts for sweeps
(Figs. 5-8) -- using plain Unicode blocks.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

__all__ = ["bar_chart", "line_chart", "sparkline"]

_BLOCKS = " ▁▂▃▄▅▆▇█"
_BAR = "█"
_HALF = "▌"


def bar_chart(
    items: Sequence[Tuple[str, float]],
    width: int = 50,
    title: Optional[str] = None,
    unit: str = "",
) -> str:
    """Horizontal bar chart: one labelled bar per (label, value).

    >>> print(bar_chart([("a", 10), ("b", 5)], width=10))  # doctest: +SKIP
    a │██████████ 10
    b │█████ 5
    """
    if not items:
        return title or ""
    peak = max(v for _, v in items)
    label_w = max(len(label) for label, _ in items)
    lines = [title] if title else []
    for label, value in items:
        if peak <= 0:
            filled = 0
            half = False
        else:
            exact = value / peak * width
            filled = int(exact)
            half = (exact - filled) >= 0.5
        bar = _BAR * filled + (_HALF if half else "")
        lines.append(
            f"{label.ljust(label_w)} │{bar} {value:g}{unit}"
        )
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """A one-line shape summary of a series."""
    if not values:
        return ""
    lo, hi = min(values), max(values)
    span = hi - lo
    if span <= 0:
        return _BLOCKS[4] * len(values)
    out = []
    for v in values:
        idx = int((v - lo) / span * (len(_BLOCKS) - 2)) + 1
        out.append(_BLOCKS[idx])
    return "".join(out)


def line_chart(
    xs: Sequence[float],
    series: Dict[str, Sequence[float]],
    height: int = 12,
    width: Optional[int] = None,
    title: Optional[str] = None,
) -> str:
    """Multi-series scatter/line chart on a character grid.

    Each series gets a distinct marker; the legend maps markers to
    series names.  X positions are spread evenly (categorical axis, as
    in the paper's node-count sweeps).
    """
    if not series or not xs:
        return title or ""
    markers = "ox+*#@%&"
    n = len(xs)
    width = width or max(2 * n, 24)
    all_vals = [v for s in series.values() for v in s]
    lo, hi = min(all_vals), max(all_vals)
    if hi <= lo:
        hi = lo + 1.0
    grid = [[" "] * width for _ in range(height)]
    for si, (name, ys) in enumerate(series.items()):
        m = markers[si % len(markers)]
        for i, y in enumerate(ys):
            col = int(i / max(1, n - 1) * (width - 1))
            row = height - 1 - int((y - lo) / (hi - lo) * (height - 1))
            grid[row][col] = m
    lines = [title] if title else []
    for r, row in enumerate(grid):
        level = hi - (hi - lo) * r / (height - 1)
        lines.append(f"{level:10.1f} ┤{''.join(row)}")
    axis_labels = "".join(
        str(x).ljust(max(1, (width // max(1, n)))) for x in xs
    )[:width]
    lines.append(" " * 11 + "└" + "─" * width)
    lines.append(" " * 12 + axis_labels)
    legend = "  ".join(
        f"{markers[i % len(markers)]}={name}"
        for i, name in enumerate(series)
    )
    lines.append(" " * 12 + legend)
    return "\n".join(lines)
