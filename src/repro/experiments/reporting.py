"""Plain-text reporting: aligned tables and paper-vs-measured summaries.

Every figure experiment renders through these helpers so benchmark
output is uniform and diff-able (EXPERIMENTS.md embeds these tables).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

__all__ = ["check", "render_table", "series_summary"]


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
    float_fmt: str = "{:.1f}",
) -> str:
    """Render an aligned ASCII table."""
    str_rows: List[List[str]] = []
    for row in rows:
        str_rows.append(
            [
                float_fmt.format(c) if isinstance(c, float) else str(c)
                for c in row
            ]
        )
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for r in str_rows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


def check(label: str, condition: bool, detail: str = "") -> str:
    """One paper-property check line: '[ok] ...' or '[MISS] ...'."""
    mark = "ok" if condition else "MISS"
    suffix = f" ({detail})" if detail else ""
    return f"[{mark:4s}] {label}{suffix}"


def series_summary(name: str, xs: Sequence[float], ys: Sequence[float]) -> str:
    """Compact x->y series line for logs."""
    pairs = ", ".join(f"{x:g}:{y:.1f}" for x, y in zip(xs, ys))
    return f"{name}: {pairs}"
