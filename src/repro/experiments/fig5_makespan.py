"""Figure 5: impact of metadata decentralization on makespan.

"Average execution time for a node performing metadata operations", 32
nodes evenly distributed over 4 datacenters, ops per node swept over
500 / 1,000 / 5,000 / 10,000 (half writers, half readers).  The grey
bars of the original figure (aggregate operation counts) are reported
as a column.

Paper properties checked:

- for small settings (<= 500 ops/node) the centralized baseline is an
  acceptable choice (within ~25 % of the best strategy);
- as the op count grows, decentralized strategies win, approaching a
  ~50 % time gain at the high end;
- the two decentralized variants nearly overlap in completion time
  (their difference only shows mid-run -- Fig. 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.metadata.config import MetadataConfig
from repro.metadata.controller import StrategyName
from repro.experiments.reporting import check, render_table
from repro.experiments.synthetic import run_synthetic_workload

__all__ = ["Fig5Result", "run_fig5", "PAPER_OPS_PER_NODE"]

PAPER_OPS_PER_NODE = (500, 1000, 5000, 10000)


@dataclass
class Fig5Result:
    ops_per_node: Sequence[int]
    n_nodes: int
    #: strategy -> mean node execution time per ops count.
    mean_node_time: Dict[str, List[float]] = field(default_factory=dict)
    #: aggregate op counts (the grey bars), aligned with ops_per_node.
    aggregate_ops: List[int] = field(default_factory=list)

    def gain_vs_centralized(self, strategy: str, idx: int = -1) -> float:
        base = self.mean_node_time[StrategyName.CENTRALIZED][idx]
        if base <= 0:
            return 0.0
        return 1.0 - self.mean_node_time[strategy][idx] / base

    def properties(self) -> List[str]:
        dn = self.mean_node_time[StrategyName.DECENTRALIZED]
        dr = self.mean_node_time[StrategyName.HYBRID]
        cen = self.mean_node_time[StrategyName.CENTRALIZED]
        best_dec_small = min(dn[0], dr[0])
        high_gain = max(
            self.gain_vs_centralized(StrategyName.DECENTRALIZED),
            self.gain_vs_centralized(StrategyName.HYBRID),
        )
        overlap = all(
            abs(a - b) / max(a, b) < 0.35 for a, b in zip(dn, dr)
        )
        return [
            check(
                "centralized acceptable at the smallest setting "
                "(paper: ~1 min absolute gain at best)",
                cen[0] - best_dec_small <= 120.0,
                f"decentralization saves only "
                f"{cen[0] - best_dec_small:.0f}s",
            ),
            check(
                "decentralized strategies win as ops grow (paper: ~50%)",
                high_gain >= 0.25,
                f"gain {high_gain:.0%} at {self.ops_per_node[-1]} ops/node",
            ),
            check(
                "both decentralized variants nearly overlap",
                overlap,
            ),
            check(
                "centralized degrades monotonically with load",
                all(a <= b * 1.05 for a, b in zip(cen, cen[1:])),
            ),
        ]

    def render(self) -> str:
        strategies = list(self.mean_node_time)
        rows = []
        for i, n in enumerate(self.ops_per_node):
            rows.append(
                [n, self.aggregate_ops[i]]
                + [self.mean_node_time[s][i] for s in strategies]
            )
        table = render_table(
            ["ops/node", "total ops"] + strategies,
            rows,
            title=(
                f"Fig. 5 -- mean node execution time (s), "
                f"{self.n_nodes} nodes / 4 DCs"
            ),
        )
        from repro.experiments.charts import bar_chart

        final = bar_chart(
            [(s, self.mean_node_time[s][-1]) for s in strategies],
            title=(
                f"node time at {self.ops_per_node[-1]} ops/node (s):"
            ),
            width=40,
        )
        return table + "\n" + final + "\n" + "\n".join(self.properties())


def run_fig5(
    ops_per_node: Sequence[int] = PAPER_OPS_PER_NODE,
    n_nodes: int = 32,
    strategies: Optional[Sequence[str]] = None,
    seed: int = 0,
    config: Optional[MetadataConfig] = None,
) -> Fig5Result:
    strategies = list(strategies or StrategyName.all())
    result = Fig5Result(ops_per_node=tuple(ops_per_node), n_nodes=n_nodes)
    for strat in strategies:
        result.mean_node_time[strat] = []
    result.aggregate_ops = [n * n_nodes for n in ops_per_node]
    for n_ops in ops_per_node:
        for strat in strategies:
            run = run_synthetic_workload(
                strat,
                n_nodes=n_nodes,
                ops_per_node=n_ops,
                seed=seed,
                config=config,
            )
            result.mean_node_time[strat].append(run.mean_node_time)
    return result
