"""Figure 8: completing a fixed 32,000-operation workload as nodes grow.

"We measured the time taken by each approach to complete a constant
number of 32,000 metadata operations."  Adding nodes divides the
per-node share, so time should fall ~linearly for the centralized and
decentralized approaches, "and only a degradation at larger scale for
the replicated strategy."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.metadata.config import MetadataConfig
from repro.metadata.controller import StrategyName
from repro.experiments.reporting import check, render_table
from repro.experiments.synthetic import run_synthetic_workload

__all__ = ["Fig8Result", "run_fig8", "PAPER_TOTAL_OPS"]

PAPER_TOTAL_OPS = 32_000
PAPER_NODE_COUNTS = (8, 16, 32, 64, 128)


@dataclass
class Fig8Result:
    node_counts: Sequence[int]
    total_ops: int
    #: strategy -> completion time per node count.
    completion: Dict[str, List[float]] = field(default_factory=dict)

    def properties(self) -> List[str]:
        dn = self.completion[StrategyName.DECENTRALIZED]
        dr = self.completion[StrategyName.HYBRID]
        rep = self.completion[StrategyName.REPLICATED]
        counts = list(self.node_counts)
        idx32 = counts.index(32) if 32 in counts else len(counts) // 2
        node_growth = counts[-1] / counts[idx32]
        # Degradation, paper-style: past 32 nodes the replicated
        # strategy converts extra nodes into little or no time gain
        # (the agent bottleneck), ending far behind the decentralized
        # pair.
        rep_speedup_late = rep[idx32] / rep[-1] if rep[-1] > 0 else 0
        out = [
            check(
                "decentralized completion time falls as nodes grow",
                all(a >= b * 0.9 for a, b in zip(dn, dn[1:])),
            ),
            check(
                "hybrid completion time falls as nodes grow",
                all(a >= b * 0.9 for a, b in zip(dr, dr[1:])),
            ),
            check(
                "replicated degrades at larger scale (stops converting "
                "nodes into speedup)",
                rep_speedup_late <= 0.6 * node_growth
                and rep[-1] > 2.0 * dr[-1],
                f"x{rep_speedup_late:.1f} speedup over x{node_growth:.0f} "
                f"nodes; {rep[-1]:.0f}s vs hybrid {dr[-1]:.0f}s at "
                f"{counts[-1]} nodes",
            ),
        ]
        return out

    def render(self) -> str:
        strategies = list(self.completion)
        rows = [
            [n] + [self.completion[s][i] for s in strategies]
            for i, n in enumerate(self.node_counts)
        ]
        table = render_table(
            ["nodes"] + strategies,
            rows,
            title=(
                f"Fig. 8 -- completion time (s) of {self.total_ops} "
                "total operations"
            ),
        )
        return table + "\n" + "\n".join(self.properties())


def run_fig8(
    node_counts: Sequence[int] = PAPER_NODE_COUNTS,
    total_ops: int = PAPER_TOTAL_OPS,
    strategies: Optional[Sequence[str]] = None,
    seed: int = 0,
    config: Optional[MetadataConfig] = None,
) -> Fig8Result:
    strategies = list(strategies or StrategyName.all())
    result = Fig8Result(node_counts=tuple(node_counts), total_ops=total_ops)
    for strat in strategies:
        result.completion[strat] = []
        for n in node_counts:
            run = run_synthetic_workload(
                strat,
                n_nodes=n,
                ops_per_node=max(1, total_ops // n),
                seed=seed,
                config=config,
            )
            result.completion[strat].append(run.makespan)
    return result
