"""Run every experiment and emit the full paper-vs-measured report.

Entry point::

    python -m repro.experiments.runner [--quick]

``--quick`` shrinks workloads to CI-friendly sizes while preserving
every qualitative property check; the default runs the paper's actual
parameters (minutes of wall time).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, List, Tuple

from repro.experiments.fig1_latency import run_fig1
from repro.experiments.fig3_replication import run_fig3
from repro.experiments.fig5_makespan import run_fig5
from repro.experiments.fig6_progress import run_fig6
from repro.experiments.fig7_throughput import run_fig7
from repro.experiments.fig8_scalability import run_fig8
from repro.experiments.fig10_workflows import run_fig10

__all__ = ["main", "run_all"]


def _experiments(quick: bool) -> List[Tuple[str, Callable[[], object]]]:
    if quick:
        return [
            ("Fig. 1", lambda: run_fig1(file_counts=(100, 500, 1000))),
            ("Fig. 3", run_fig3),
            (
                "Fig. 5",
                lambda: run_fig5(
                    ops_per_node=(100, 250, 500, 1000), n_nodes=32
                ),
            ),
            ("Fig. 6", lambda: run_fig6(n_nodes=32, ops_per_node=1500)),
            (
                "Fig. 7",
                lambda: run_fig7(
                    node_counts=(8, 16, 32, 64), ops_per_node=500
                ),
            ),
            (
                "Fig. 8",
                lambda: run_fig8(
                    node_counts=(8, 16, 32, 64), total_ops=8000
                ),
            ),
            ("Fig. 10 / Table I", lambda: run_fig10(scenarios=("SS", "MI"))),
        ]
    return [
        ("Fig. 1", run_fig1),
        ("Fig. 3", run_fig3),
        ("Fig. 5", run_fig5),
        ("Fig. 6", run_fig6),
        ("Fig. 7", run_fig7),
        ("Fig. 8", run_fig8),
        ("Fig. 10 / Table I", run_fig10),
    ]


def run_all(quick: bool = False, stream=None) -> List[object]:
    """Run all experiments, printing each report; returns result objects."""
    stream = stream or sys.stdout
    results = []
    for name, fn in _experiments(quick):
        t0 = time.time()
        result = fn()
        elapsed = time.time() - t0
        print(f"\n=== {name} (wall {elapsed:.1f}s) ===", file=stream)
        print(result.render(), file=stream)
        results.append(result)
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="reduced workloads (seconds instead of minutes)",
    )
    args = parser.parse_args(argv)
    run_all(quick=args.quick)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
