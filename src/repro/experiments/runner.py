"""Run every experiment and emit the full paper-vs-measured report.

Entry point::

    python -m repro.experiments.runner [--quick]

``--quick`` shrinks workloads to CI-friendly sizes while preserving
every qualitative property check; the default runs the paper's actual
parameters (minutes of wall time).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, List, Optional, Tuple

from repro.cloud.network import BANDWIDTH_MODELS
from repro.metadata.config import MetadataConfig
from repro.scenario import NetworkSpec, SchedulerSpec, config_from_specs
from repro.scheduling import SCHEDULER_NAMES
from repro.experiments.fig1_latency import run_fig1
from repro.experiments.fig3_replication import run_fig3
from repro.experiments.fig5_makespan import run_fig5
from repro.experiments.fig6_progress import run_fig6
from repro.experiments.fig7_throughput import run_fig7
from repro.experiments.fig8_scalability import run_fig8
from repro.experiments.fig10_workflows import run_fig10

__all__ = ["main", "run_all"]


def _experiments(
    quick: bool,
    config: Optional[MetadataConfig] = None,
    with_workloads: bool = False,
    jobs: int = 1,
) -> List[Tuple[str, Callable[[], object]]]:
    extra: List[Tuple[str, Callable[[], object]]] = []
    if with_workloads:
        from repro.experiments.workload_compare import run_workload_compare

        extra.append(
            (
                "Multi-tenant workloads",
                lambda: run_workload_compare(
                    n_tenants=8 if quick else 12,
                    config=config,
                    jobs=jobs,
                ),
            )
        )
    if quick:
        return extra + [
            ("Fig. 1", lambda: run_fig1(file_counts=(100, 500, 1000))),
            ("Fig. 3", run_fig3),
            (
                "Fig. 5",
                lambda: run_fig5(
                    ops_per_node=(100, 250, 500, 1000),
                    n_nodes=32,
                    config=config,
                ),
            ),
            (
                "Fig. 6",
                lambda: run_fig6(
                    n_nodes=32, ops_per_node=1500, config=config
                ),
            ),
            (
                "Fig. 7",
                lambda: run_fig7(
                    node_counts=(8, 16, 32, 64),
                    ops_per_node=500,
                    config=config,
                ),
            ),
            (
                "Fig. 8",
                lambda: run_fig8(
                    node_counts=(8, 16, 32, 64),
                    total_ops=8000,
                    config=config,
                ),
            ),
            (
                "Fig. 10 / Table I",
                lambda: run_fig10(scenarios=("SS", "MI"), config=config),
            ),
        ]
    return extra + [
        ("Fig. 1", run_fig1),
        ("Fig. 3", run_fig3),
        ("Fig. 5", lambda: run_fig5(config=config)),
        ("Fig. 6", lambda: run_fig6(config=config)),
        ("Fig. 7", lambda: run_fig7(config=config)),
        ("Fig. 8", lambda: run_fig8(config=config)),
        ("Fig. 10 / Table I", lambda: run_fig10(config=config)),
    ]


def run_all(
    quick: bool = False,
    stream=None,
    config: Optional[MetadataConfig] = None,
    with_workloads: bool = False,
    jobs: int = 1,
) -> List[object]:
    """Run all experiments, printing each report; returns result objects."""
    stream = stream or sys.stdout
    results = []
    for name, fn in _experiments(
        quick, config=config, with_workloads=with_workloads, jobs=jobs
    ):
        t0 = time.time()
        result = fn()
        elapsed = time.time() - t0
        print(f"\n=== {name} (wall {elapsed:.1f}s) ===", file=stream)
        print(result.render(), file=stream)
        results.append(result)
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="reduced workloads (seconds instead of minutes)",
    )
    parser.add_argument(
        "--bandwidth-model",
        choices=BANDWIDTH_MODELS,
        default=None,
        help=(
            "WAN bandwidth sharing model: 'slots' (concurrency-capped, "
            "the original) or 'fair' (flow-level hierarchical max-min "
            "fair sharing); default keeps the deployment default "
            "('slots')"
        ),
    )
    parser.add_argument(
        "--egress-cap-mb",
        type=float,
        default=None,
        metavar="MB_PER_S",
        help=(
            "fair model only: cap every site's aggregate outbound WAN "
            "bandwidth (megabytes/s)"
        ),
    )
    parser.add_argument(
        "--ingress-cap-mb",
        type=float,
        default=None,
        metavar="MB_PER_S",
        help=(
            "fair model only: cap every site's aggregate inbound WAN "
            "bandwidth (megabytes/s)"
        ),
    )
    parser.add_argument(
        "--rpc-flow-weight",
        type=float,
        default=1.0,
        help=(
            "fair model only: weight of metadata RPC flows vs weight-1 "
            "bulk transfers at shared bottlenecks"
        ),
    )
    parser.add_argument(
        "--scheduler",
        choices=SCHEDULER_NAMES,
        default=None,
        help=(
            "task-placement policy for the workflow experiments "
            "(Fig. 10); default keeps the engine default ('locality') "
            "-- see docs/scheduling.md"
        ),
    )
    parser.add_argument(
        "--hybrid-locality-weight",
        type=float,
        default=1.0,
        help="hybrid scheduler only: coefficient of the locality term",
    )
    parser.add_argument(
        "--hybrid-load-weight",
        type=float,
        default=1.0,
        help="hybrid scheduler only: coefficient of the queue-depth term",
    )
    parser.add_argument(
        "--hybrid-transfer-weight",
        type=float,
        default=1.0,
        help=(
            "hybrid scheduler only: coefficient of the predicted-"
            "transfer-time term"
        ),
    )
    parser.add_argument(
        "--bw-pending-penalty",
        type=float,
        default=1.0,
        help=(
            "bandwidth_aware/hybrid schedulers only: scale of the "
            "pending-bytes staging pessimism (0 disables)"
        ),
    )
    parser.add_argument(
        "--with-workloads",
        action="store_true",
        help=(
            "also run the multi-tenant workload comparison "
            "(repro.experiments.workload_compare; docs/workloads.md)"
        ),
    )
    parser.add_argument(
        "--admission",
        choices=("unbounded", "max_in_flight", "token_bucket"),
        default=None,
        help=(
            "workload comparison only: admission control policy "
            "(default: the scenario's max_in_flight)"
        ),
    )
    parser.add_argument(
        "--max-in-flight",
        type=int,
        default=None,
        help=(
            "admission max_in_flight only: cap on concurrently "
            "executing workflows"
        ),
    )
    parser.add_argument(
        "--token-rate",
        type=float,
        default=None,
        help="admission token_bucket only: per-tenant admissions/second",
    )
    parser.add_argument(
        "--token-burst",
        type=int,
        default=None,
        help="admission token_bucket only: per-tenant burst allowance",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help=(
            "workload comparison only: run (strategy, scheduler) "
            "combinations in N worker processes (identical results)"
        ),
    )
    args = parser.parse_args(argv)
    try:
        # The flags compile to spec components; all cross-field rules
        # (fair-only WAN knobs, policy-specific scheduler/admission
        # knobs) live in their validate() methods -- see
        # repro.scenario and docs/scenarios.md.
        config = config_from_specs(
            network=NetworkSpec(
                bandwidth_model=args.bandwidth_model,
                egress_cap_mb=args.egress_cap_mb,
                ingress_cap_mb=args.ingress_cap_mb,
                rpc_flow_weight=args.rpc_flow_weight,
            ),
            scheduler=SchedulerSpec(
                name=args.scheduler,
                hybrid_locality_weight=args.hybrid_locality_weight,
                hybrid_load_weight=args.hybrid_load_weight,
                hybrid_transfer_weight=args.hybrid_transfer_weight,
                bw_pending_penalty=args.bw_pending_penalty,
            ),
            admission=args.admission,
            max_in_flight=args.max_in_flight,
            token_rate=args.token_rate,
            token_burst=args.token_burst,
        )
        if (
            args.admission is not None or args.max_in_flight is not None
        ) and not args.with_workloads:
            raise ValueError(
                "--admission/--max-in-flight/--token-* require "
                "--with-workloads"
            )
        if args.jobs < 1:
            raise ValueError("--jobs must be >= 1")
        if args.jobs != 1 and not args.with_workloads:
            raise ValueError("--jobs requires --with-workloads")
    except ValueError as exc:
        parser.error(str(exc))
    run_all(
        quick=args.quick,
        config=config,
        with_workloads=args.with_workloads,
        jobs=args.jobs,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
