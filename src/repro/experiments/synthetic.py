"""The Section VI-B synthetic benchmark: concurrent writers and readers.

"To simulate concurrent operations on the metadata registry, half of
the nodes act as writers and half as readers.  Writers post a set of
consecutive entries to the registry (e.g. file1, file2, ...) whereas
readers get a random set of files (e.g. file13, file201, ...) from it."

Each node performs ``ops_per_node`` operations back to back.  Reads use
plain lookup semantics (a not-found result completes the operation --
reads race writes by design in this benchmark).  Per-node completion
times and the full op trace are captured for Figs. 5-8.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional

import numpy as np

from repro.cloud.deployment import Deployment
from repro.metadata.config import MetadataConfig
from repro.metadata.controller import ArchitectureController
from repro.metadata.entry import RegistryEntry
from repro.metadata.stats import OpStats

__all__ = ["SyntheticResult", "run_synthetic_workload"]


@dataclass
class SyntheticResult:
    """Outcome of one synthetic reader/writer run."""

    strategy: str
    n_nodes: int
    ops_per_node: int
    #: Wall (simulated) time from start to the last node's completion.
    makespan: float
    #: Per-node execution times, index-aligned with the deployment fleet.
    node_times: List[float]
    #: Site of each node (centrality analysis, Fig. 6 discussion).
    node_sites: List[str]
    #: Full op trace of the run.
    ops: OpStats = field(repr=False, default=None)

    @property
    def total_ops(self) -> int:
        return self.n_nodes * self.ops_per_node

    @property
    def mean_node_time(self) -> float:
        return float(np.mean(self.node_times))

    @property
    def throughput(self) -> float:
        """Aggregate completed operations per second (Fig. 7 metric)."""
        return self.total_ops / self.makespan if self.makespan > 0 else 0.0

    def node_time_by_site(self) -> Dict[str, float]:
        out: Dict[str, List[float]] = {}
        for t, s in zip(self.node_times, self.node_sites):
            out.setdefault(s, []).append(t)
        return {s: float(np.mean(v)) for s, v in out.items()}


def run_synthetic_workload(
    strategy: str,
    n_nodes: int = 32,
    ops_per_node: int = 1000,
    seed: int = 0,
    config: Optional[MetadataConfig] = None,
    deployment: Optional[Deployment] = None,
) -> SyntheticResult:
    """Run the reader/writer benchmark under one strategy.

    Nodes alternate writer/reader roles (even index writes, odd reads),
    which also spreads both roles evenly across sites because the
    deployment places nodes round-robin.
    """
    if n_nodes < 2:
        raise ValueError("need at least one writer and one reader")
    if ops_per_node <= 0:
        raise ValueError("ops_per_node must be positive")
    # The config may pin the WAN bandwidth-sharing model (slots vs
    # flow-level fair share) plus its site caps and flow weights; None
    # keeps the deployment defaults.
    bandwidth_model = (
        config.bandwidth_model if config is not None else None
    )
    dep = deployment or Deployment(
        n_nodes=n_nodes,
        seed=seed,
        bandwidth_model=bandwidth_model or "slots",
        site_egress_bw=config.site_egress_bw if config else None,
        site_ingress_bw=config.site_ingress_bw if config else None,
        rpc_flow_weight=config.rpc_flow_weight if config else 1.0,
    )
    ctrl = ArchitectureController(dep, strategy=strategy, config=config)
    strat = ctrl.strategy
    env = dep.env

    # Alternate writer/reader *within* each site so both roles are
    # evenly represented everywhere -- assigning roles by global node
    # index would correlate role with site (nodes are placed
    # round-robin) and corrupt the per-site centrality analysis.  The
    # starting role alternates by site so tiny fleets (one node per
    # site) still get both roles.
    writers, readers = [], []
    for s_idx, site in enumerate(dep.sites):
        for k, vm in enumerate(dep.workers_at(site)):
            (writers if (k + s_idx) % 2 == 0 else readers).append(vm)
    if not writers or not readers:
        raise ValueError(
            "deployment too small to host both writers and readers"
        )
    n_writers = len(writers)
    node_times: List[float] = [0.0] * len(dep.workers)
    node_index = {vm.name: i for i, vm in enumerate(dep.workers)}

    # Writers advance a visible progress counter so readers sample only
    # files that have actually been published somewhere -- the paper's
    # readers "get a random set of files from it", i.e. reads target
    # existing entries.  Under the replicated strategy an existing
    # entry may still be invisible *locally* until the sync agent's
    # next cycle, which is precisely the penalty the strategy pays on
    # metadata-intensive workloads.
    progress = [0] * n_writers

    def writer(vm, writer_id: int) -> Generator:
        start = env.now
        for i in range(ops_per_node):
            entry = RegistryEntry(
                key=f"file-{writer_id}-{i}",
                locations=frozenset({vm.site}),
            )
            yield from strat.write(vm.site, entry)
            progress[writer_id] = i + 1
        node_times[node_index[vm.name]] = env.now - start

    def reader(vm, reader_id: int) -> Generator:
        rng = dep.rng.get(f"reader-{reader_id}")
        start = env.now
        done = 0
        while done < ops_per_node:
            w = int(rng.integers(n_writers))
            if progress[w] == 0:
                # Nothing published by that writer yet: let writers run.
                yield env.timeout(0.05)
                continue
            j = int(rng.integers(progress[w]))
            yield from strat.read(
                vm.site, f"file-{w}-{j}", require_found=True
            )
            done += 1
        node_times[node_index[vm.name]] = env.now - start

    procs = [
        env.process(writer(vm, w), name=f"writer-{w}")
        for w, vm in enumerate(writers)
    ] + [
        env.process(reader(vm, r), name=f"reader-{r}")
        for r, vm in enumerate(readers)
    ]
    start = env.now
    from repro.sim import AllOf

    env.run(until=AllOf(env, procs))
    makespan = env.now - start
    ctrl.shutdown()

    return SyntheticResult(
        strategy=strat.name,
        n_nodes=len(dep.workers),
        ops_per_node=ops_per_node,
        makespan=makespan,
        node_times=node_times,
        node_sites=[vm.site for vm in dep.workers],
        ops=strat.stats,
    )
