"""Figure 3: the local-replication micro-scenario.

The paper illustrates the hybrid strategy's benefit with two nodes n1
and n2 in the same site s1: n1 writes an entry whose hash places it at
a geo-distant site s2, then n2 reads it.

- Without local replication (Fig. 3a): both the write and the read are
  remote, "up to 50x longer than a local operation".
- With local replication (Fig. 3b): the write keeps a local copy and
  the subsequent read is served locally, "making reads up to 50x
  faster".

This experiment reproduces the scenario verbatim: it searches the key
space for a name whose DHT home is geo-distant from the writer, runs
both variants, and reports the read speedup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional

from repro.sim import Environment
from repro.cloud.network import Network
from repro.cloud.presets import azure_4dc_topology
from repro.cloud.topology import Distance
from repro.metadata.config import MetadataConfig
from repro.metadata.entry import RegistryEntry
from repro.metadata.strategies import DecentralizedStrategy, HybridStrategy
from repro.experiments.reporting import check, render_table

__all__ = ["Fig3Result", "run_fig3"]


@dataclass
class Fig3Result:
    key: str
    writer_site: str
    home_site: str
    #: (write latency, read latency) without local replication.
    non_replicated: tuple
    #: (write latency, read latency) with local replication.
    replicated: tuple

    @property
    def read_speedup(self) -> float:
        return (
            self.non_replicated[1] / self.replicated[1]
            if self.replicated[1] > 0
            else float("inf")
        )

    def properties(self) -> List[str]:
        return [
            check(
                "local replication makes the read dramatically faster "
                "(paper: up to ~50x)",
                self.read_speedup >= 5,
                f"{self.read_speedup:.0f}x",
            ),
            check(
                "the scenario's key really hashes geo-distant",
                self.home_site != self.writer_site,
                f"{self.writer_site} -> {self.home_site}",
            ),
        ]

    def render(self) -> str:
        rows = [
            [
                "non-replicated (Fig. 3a)",
                self.non_replicated[0] * 1000,
                self.non_replicated[1] * 1000,
            ],
            [
                "locally replicated (Fig. 3b)",
                self.replicated[0] * 1000,
                self.replicated[1] * 1000,
            ],
        ]
        table = render_table(
            ["variant", "write (ms)", "read (ms)"],
            rows,
            title=(
                f"Fig. 3 -- same-site write/read of {self.key!r} "
                f"(home: {self.home_site})"
            ),
        )
        return table + "\n" + "\n".join(self.properties())


def _find_geo_distant_key(strategy, writer_site: str, topology) -> str:
    """A key whose DHT home is geo-distant from the writer's site."""
    for i in range(10_000):
        key = f"fig3/candidate-{i}"
        home = strategy.home_of(key)
        if topology.distance(writer_site, home) is Distance.GEO_DISTANT:
            return key
    raise RuntimeError("no geo-distant key found (ring misconfigured?)")


def run_fig3(
    writer_site: str = "west-europe",
    config: Optional[MetadataConfig] = None,
) -> Fig3Result:
    cfg = config or MetadataConfig(
        # Isolate protocol latency: no client-side envelope overhead.
        **{**MetadataConfig().__dict__, "client_overhead": 0.0}
    )
    topo = azure_4dc_topology(jitter=False)

    def measure(strategy_cls) -> tuple:
        env = Environment()
        network = Network(env, azure_4dc_topology(jitter=False))
        strat = strategy_cls(
            env, network, [dc.name for dc in topo], cfg
        )
        key = _find_geo_distant_key(strat, writer_site, topo)

        def scenario() -> Generator:
            t0 = env.now
            yield from strat.write(
                writer_site, RegistryEntry(key=key)
            )
            # Client-perceived write latency: what n1 waits for.
            write_latency = env.now - t0
            # Let any lazy propagation settle so both variants read a
            # stable registry (the paper's n2 reads after n1 finished).
            yield from strat.flush()
            t0 = env.now
            got = yield from strat.read(writer_site, key, require_found=True)
            assert got is not None
            return write_latency, env.now - t0, key, strat

        proc = env.process(scenario())
        w, r, key, strat = env.run(until=proc)
        strat.shutdown()
        return w, r, key, strat

    w_dn, r_dn, key, strat_dn = measure(DecentralizedStrategy)
    w_dr, r_dr, _, strat_dr = measure(HybridStrategy)
    return Fig3Result(
        key=key,
        writer_site=writer_site,
        home_site=strat_dn.home_of(key),
        non_replicated=(w_dn, r_dn),
        replicated=(w_dr, r_dr),
    )
