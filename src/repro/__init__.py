"""repro: multi-site metadata management for geo-distributed cloud workflows.

A full reproduction of Pineda-Morales, Costan & Antoniu, *Towards
Multi-site Metadata Management for Geographically Distributed Cloud
Workflows* (IEEE CLUSTER 2015), built on a discrete-event simulated
multi-site cloud.

Quickstart::

    from repro import Deployment, ArchitectureController, RegistryEntry

    dep = Deployment(n_nodes=32, seed=7)
    ctrl = ArchitectureController(dep, strategy="hybrid")

    def publish(env):
        entry = RegistryEntry(key="image-001.fits")
        stored = yield from ctrl.write("west-europe", entry)
        found = yield from ctrl.read("east-us", "image-001.fits",
                                     require_found=True)

    dep.run_process(publish(dep.env))

See DESIGN.md for the architecture and EXPERIMENTS.md for the
paper-versus-measured results.
"""

from repro.cloud import (
    AZURE_4DC,
    CloudTopology,
    Datacenter,
    Deployment,
    Distance,
    Network,
    Region,
    VirtualMachine,
    azure_4dc_topology,
    make_topology,
)
from repro.metadata import (
    ArchitectureController,
    CacheManager,
    CentralizedStrategy,
    ConsistentHashRing,
    DecentralizedStrategy,
    HybridStrategy,
    MetadataConfig,
    MetadataRegistry,
    MetadataStrategy,
    OpKind,
    OpStats,
    RegistryEntry,
    ReplicatedStrategy,
    StrategyName,
)
from repro.scheduling import (
    PlacementPolicy,
    SCHEDULER_NAMES,
    make_scheduler,
)
from repro.sim import Environment
from repro.workload import (
    ADMISSION_NAMES,
    TenantSpec,
    WorkloadRunner,
    WorkloadSpec,
)

__version__ = "1.0.0"

__all__ = [
    "ADMISSION_NAMES",
    "AZURE_4DC",
    "ArchitectureController",
    "CacheManager",
    "CentralizedStrategy",
    "CloudTopology",
    "ConsistentHashRing",
    "Datacenter",
    "DecentralizedStrategy",
    "Deployment",
    "Distance",
    "Environment",
    "HybridStrategy",
    "MetadataConfig",
    "MetadataRegistry",
    "MetadataStrategy",
    "Network",
    "OpKind",
    "OpStats",
    "PlacementPolicy",
    "Region",
    "RegistryEntry",
    "ReplicatedStrategy",
    "SCHEDULER_NAMES",
    "StrategyName",
    "TenantSpec",
    "VirtualMachine",
    "WorkloadRunner",
    "WorkloadSpec",
    "azure_4dc_topology",
    "make_scheduler",
    "make_topology",
]
