"""Persistent run artifacts: JSON files keyed by spec hash + seed.

A :class:`ResultStore` is a flat directory of scenario-run artifacts,
one JSON file per run, named ``<spec_hash12>-s<seed>.json``.  The spec
hash (:meth:`ScenarioSpec.spec_hash
<repro.scenario.spec.ScenarioSpec.spec_hash>`) covers every field of
the frozen spec -- two stores produced at different commits from the
*same* specs share file keys exactly, which is what makes
``repro.cli diff A B`` a keyed comparison: matching keys isolate code
changes, changed keys isolate spec changes (paired up by scenario
name + seed + sweep overrides instead).

The artifact payload is :func:`~repro.results.serialize
.scenario_result_to_dict` verbatim; caller-stamped context that must
*not* participate in the bit-for-bit result contract (git revision,
wall time, the sweep overrides that produced the cell) lives under the
``meta`` key.

::

    store = ResultStore("runs/")
    store.save(spec.run(), git_rev=current_git_rev(), wall_time_s=1.2)
    store.lookup(spec)          # -> the artifact dict, or None
    store.list()                # -> every artifact, sorted by key
"""

from __future__ import annotations

import json
import subprocess
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Union

from repro.results.serialize import scenario_result_to_dict
from repro.scenario.runner import ScenarioResult
from repro.scenario.spec import ScenarioSpec

__all__ = ["ResultStore", "current_git_rev"]

#: Hash-prefix length in artifact filenames: 48 bits -- far beyond any
#: realistic store size, short enough to read.
KEY_HASH_LEN = 12


def current_git_rev(default: str = "unknown") -> str:
    """The repo's short git revision, or ``default`` outside a checkout.

    Resolved against *this source tree* (not the caller's cwd): the
    revision stamped on an artifact identifies the code that produced
    it, which is exactly what the BENCH trajectory compares across.
    """
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=Path(__file__).resolve().parent,
        )
    except (OSError, subprocess.SubprocessError):
        return default
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else default


class ResultStore:
    """A directory of scenario-run artifacts keyed by spec hash + seed."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)

    # -- keys --------------------------------------------------------------

    @staticmethod
    def key_for(spec: ScenarioSpec) -> str:
        """The artifact key of ``spec``: ``<hash12>-s<seed>``.

        The seed is already inside the hash; it rides along in the key
        so directory listings stay human-scannable.
        """
        return f"{spec.spec_hash()[:KEY_HASH_LEN]}-s{spec.seed}"

    def path_for(self, spec: ScenarioSpec) -> Path:
        return self.root / f"{self.key_for(spec)}.json"

    def paths(self) -> List[Path]:
        """Every artifact file in the store, sorted by name."""
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("*.json"))

    # -- persistence -------------------------------------------------------

    def save(
        self,
        result: ScenarioResult,
        overrides: Optional[Mapping[str, Any]] = None,
        git_rev: Optional[str] = None,
        wall_time_s: Optional[float] = None,
        include_ops: bool = False,
    ) -> Path:
        """Persist one run; returns the artifact path.

        ``overrides`` records the sweep-axis values that derived this
        cell's spec from its base (the stable pairing key when specs
        -- and therefore hashes -- differ between two diffed stores);
        ``git_rev``/``wall_time_s`` stamp provenance.  All three land
        under ``meta``, outside the bit-for-bit result payload.
        """
        doc = scenario_result_to_dict(result, include_ops=include_ops)
        doc["meta"] = {
            "git_rev": git_rev,
            "wall_time_s": wall_time_s,
            "overrides": dict(overrides) if overrides else {},
        }
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(result.spec)
        path.write_text(
            json.dumps(doc, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return path

    # -- retrieval ---------------------------------------------------------

    def load(self, ref: Union[str, Path]) -> Dict[str, Any]:
        """Load one artifact by key (``<hash12>-s<seed>``) or path."""
        path = Path(ref)
        if not path.suffix:
            path = self.root / f"{ref}.json"
        if not path.is_file():
            raise FileNotFoundError(
                f"no artifact {ref!r} in store {self.root}"
            )
        return json.loads(path.read_text(encoding="utf-8"))

    def list(self) -> List[Dict[str, Any]]:
        """Every artifact document, in key order, ``key`` included."""
        docs = []
        for path in self.paths():
            doc = json.loads(path.read_text(encoding="utf-8"))
            doc["key"] = path.stem
            docs.append(doc)
        return docs

    def lookup(self, spec: ScenarioSpec) -> Optional[Dict[str, Any]]:
        """The stored artifact of ``spec``, or ``None`` if absent."""
        path = self.path_for(spec)
        if not path.is_file():
            return None
        return json.loads(path.read_text(encoding="utf-8"))

    def __len__(self) -> int:
        return len(self.paths())

    def __repr__(self) -> str:
        return f"<ResultStore {self.root} ({len(self)} artifacts)>"
