"""Run diffing: keyed comparison of artifacts and artifact stores.

Two levels:

- :func:`diff_artifacts` compares two scenario-run artifacts (the
  dicts produced by :func:`~repro.results.serialize
  .scenario_result_to_dict`): every changed *spec* field (flattened to
  dotted paths) and every *metric* delta, keyed by the stable metric
  names -- makespan, throughput, fairness, staging times;
- :func:`diff_stores` compares two :class:`~repro.results.store
  .ResultStore` directories: artifacts pair up first by file key
  (identical spec hash + seed -- the cross-commit case, where only
  code changed), then by scenario name + seed + sweep overrides (the
  spec-change case, where the hash moved), and each pair is diffed.

The CLI form is ``repro.cli diff A B`` with files or directories.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from repro.results.store import ResultStore

__all__ = [
    "ArtifactDiff",
    "StoreDiff",
    "diff_artifacts",
    "diff_stores",
]


def _flatten(value: Any, prefix: str, out: Dict[str, Any]) -> None:
    """Dotted-path flattening; lists are leaves (compared wholesale)."""
    if isinstance(value, Mapping):
        for key in sorted(value):
            sub = f"{prefix}.{key}" if prefix else str(key)
            _flatten(value[key], sub, out)
    else:
        out[prefix] = value


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    if isinstance(value, (list, tuple)):
        return json.dumps(value)
    return str(value)


@dataclass
class ArtifactDiff:
    """Changed spec fields and metric deltas between two run artifacts."""

    a_label: str
    b_label: str
    #: dotted spec path -> (value in A, value in B); changed paths only.
    spec_changes: Dict[str, Tuple[Any, Any]] = field(default_factory=dict)
    #: metric name -> (value in A, value in B); every shared metric.
    metrics: Dict[str, Tuple[Optional[float], Optional[float]]] = field(
        default_factory=dict
    )
    #: provenance key -> (value in A, value in B); changed keys only
    #: (queue backend, flow solver, processed-event count).
    provenance: Dict[str, Tuple[Any, Any]] = field(default_factory=dict)
    #: SLO rule -> (verdict label in A, verdict label in B); present
    #: whenever either artifact carries an ``slo`` block (``None`` on
    #: the side without one -- pre-SLO artifacts diff cleanly).
    slo: Dict[str, Tuple[Optional[str], Optional[str]]] = field(
        default_factory=dict
    )
    #: Observed-attribution bucket -> (seconds in A, seconds in B);
    #: present when either artifact carries a trace ``analysis`` block.
    attribution: Dict[
        str, Tuple[Optional[float], Optional[float]]
    ] = field(default_factory=dict)

    def metric_deltas(self) -> Dict[str, float]:
        """B minus A for every metric present on both sides."""
        return {
            name: b - a
            for name, (a, b) in self.metrics.items()
            if a is not None and b is not None
        }

    @property
    def identical(self) -> bool:
        return not self.spec_changes and not any(
            delta for delta in self.metric_deltas().values()
        )

    def render(self) -> str:
        from repro.experiments.reporting import render_table

        rows = []
        for name in sorted(self.metrics):
            a, b = self.metrics[name]
            if a is None or b is None:
                delta = "--"
            else:
                delta = f"{b - a:+.4g}"
                if a:
                    delta += f" ({(b - a) / a:+.1%})"
            rows.append(
                [
                    name,
                    _fmt(a) if a is not None else "--",
                    _fmt(b) if b is not None else "--",
                    delta,
                ]
            )
        text = render_table(
            ["metric", self.a_label, self.b_label, "delta (B-A)"],
            rows,
            title=f"diff: {self.a_label} vs {self.b_label}",
        )
        if self.spec_changes:
            rows = [
                [path, _fmt(a), _fmt(b)]
                for path, (a, b) in sorted(self.spec_changes.items())
            ]
            text += "\n\n" + render_table(
                ["spec field", self.a_label, self.b_label],
                rows,
                title="changed spec fields",
            )
        else:
            text += "\nspec: identical (same spec hash)"
        if self.provenance:
            rows = [
                [key, _fmt(a), _fmt(b)]
                for key, (a, b) in sorted(self.provenance.items())
            ]
            text += "\n\n" + render_table(
                ["provenance", self.a_label, self.b_label],
                rows,
                title="changed provenance (how the run was computed)",
            )
        if self.slo:
            rows = [
                [rule, a if a is not None else "--",
                 b if b is not None else "--"]
                for rule, (a, b) in sorted(self.slo.items())
            ]
            text += "\n\n" + render_table(
                ["SLO rule", self.a_label, self.b_label],
                rows,
                title="SLO verdicts",
            )
        if self.attribution:
            rows = []
            for bucket, (a, b) in sorted(
                self.attribution.items(),
                key=lambda kv: -max(kv[1][0] or 0.0, kv[1][1] or 0.0),
            ):
                if a is None or b is None:
                    delta = "--"
                else:
                    delta = f"{b - a:+.4g}"
                rows.append(
                    [
                        bucket,
                        _fmt(a) if a is not None else "--",
                        _fmt(b) if b is not None else "--",
                        delta,
                    ]
                )
            text += "\n\n" + render_table(
                ["bucket (s)", self.a_label, self.b_label, "delta (B-A)"],
                rows,
                title="observed critical-path attribution",
            )
        return text


def diff_artifacts(
    a: Mapping[str, Any],
    b: Mapping[str, Any],
    a_label: str = "A",
    b_label: str = "B",
) -> ArtifactDiff:
    """Keyed comparison of two scenario-run artifact documents."""
    flat_a: Dict[str, Any] = {}
    flat_b: Dict[str, Any] = {}
    _flatten(a.get("spec", {}), "", flat_a)
    _flatten(b.get("spec", {}), "", flat_b)
    spec_changes = {
        path: (flat_a.get(path), flat_b.get(path))
        for path in sorted(set(flat_a) | set(flat_b))
        if flat_a.get(path) != flat_b.get(path)
    }
    metrics_a = a.get("metrics", {})
    metrics_b = b.get("metrics", {})
    metrics = {
        name: (metrics_a.get(name), metrics_b.get(name))
        for name in sorted(set(metrics_a) | set(metrics_b))
    }
    prov_a = a.get("provenance") or {}
    prov_b = b.get("provenance") or {}
    provenance = {
        key: (prov_a.get(key), prov_b.get(key))
        for key in sorted(set(prov_a) | set(prov_b))
        if prov_a.get(key) != prov_b.get(key)
    }
    return ArtifactDiff(
        a_label=a_label,
        b_label=b_label,
        spec_changes=spec_changes,
        metrics=metrics,
        provenance=provenance,
        slo=_diff_slo(a, b),
        attribution=_diff_attribution(a, b),
    )


def _slo_labels(doc: Mapping[str, Any]) -> Optional[Dict[str, str]]:
    """Compact per-rule verdict labels of one artifact's ``slo`` block
    (plus the headline ``verdict`` rollup); None when absent --
    pre-SLO artifacts are first-class citizens of a diff."""
    block = doc.get("slo")
    if not isinstance(block, Mapping):
        return None
    labels = {"verdict": str(block.get("status", "?"))}
    for rule in block.get("rules", []):
        status = str(rule.get("status", "?"))
        if status == "violated" and rule.get("debt"):
            status += f" (debt {float(rule['debt']):.3g})"
        labels[str(rule.get("rule", "?"))] = status
    return labels


def _diff_slo(
    a: Mapping[str, Any], b: Mapping[str, Any]
) -> Dict[str, Tuple[Optional[str], Optional[str]]]:
    la, lb = _slo_labels(a), _slo_labels(b)
    if la is None and lb is None:
        return {}
    return {
        rule: ((la or {}).get(rule), (lb or {}).get(rule))
        for rule in sorted(set(la or {}) | set(lb or {}))
    }


def _diff_attribution(
    a: Mapping[str, Any], b: Mapping[str, Any]
) -> Dict[str, Tuple[Optional[float], Optional[float]]]:
    ba = (a.get("analysis") or {}).get("buckets")
    bb = (b.get("analysis") or {}).get("buckets")
    if not ba and not bb:
        return {}
    return {
        bucket: (
            float(ba[bucket]) if ba and bucket in ba else None,
            float(bb[bucket]) if bb and bucket in bb else None,
        )
        for bucket in sorted(set(ba or {}) | set(bb or {}))
    }


@dataclass
class StoreDiff:
    """Paired artifact diffs between two stores, plus the unmatched."""

    a_root: str
    b_root: str
    pairs: List[ArtifactDiff] = field(default_factory=list)
    only_a: List[str] = field(default_factory=list)
    only_b: List[str] = field(default_factory=list)

    def render(self) -> str:
        parts = [
            f"store diff: {self.a_root} (A) vs {self.b_root} (B) -- "
            f"{len(self.pairs)} paired, {len(self.only_a)} only in A, "
            f"{len(self.only_b)} only in B"
        ]
        for diff in self.pairs:
            parts.append(diff.render())
        if self.only_a:
            parts.append("only in A: " + ", ".join(sorted(self.only_a)))
        if self.only_b:
            parts.append("only in B: " + ", ".join(sorted(self.only_b)))
        return "\n\n".join(parts)


def _pair_key(doc: Mapping[str, Any]) -> str:
    """The spec-change pairing key: name + seed + sweep overrides."""
    overrides = (doc.get("meta") or {}).get("overrides") or {}
    return json.dumps(
        [doc.get("name"), doc.get("seed"), overrides], sort_keys=True
    )


def diff_stores(
    a_root: Union[str, Path], b_root: Union[str, Path]
) -> StoreDiff:
    """Pair up and diff every artifact of two store directories."""
    docs_a = {doc["key"]: doc for doc in ResultStore(a_root).list()}
    docs_b = {doc["key"]: doc for doc in ResultStore(b_root).list()}
    out = StoreDiff(a_root=str(a_root), b_root=str(b_root))

    # Pass 1: identical file keys (same spec hash + seed).
    for key in sorted(set(docs_a) & set(docs_b)):
        out.pairs.append(
            diff_artifacts(
                docs_a.pop(key), docs_b.pop(key), a_label=key, b_label=key
            )
        )
    # Pass 2: same scenario name + seed + overrides, different hash
    # (the spec changed between the stores).
    rest_b = {_pair_key(doc): key for key, doc in docs_b.items()}
    for key_a in sorted(docs_a):
        doc_a = docs_a[key_a]
        key_b = rest_b.pop(_pair_key(doc_a), None)
        if key_b is None:
            out.only_a.append(key_a)
            continue
        out.pairs.append(
            diff_artifacts(
                doc_a, docs_b.pop(key_b), a_label=key_a, b_label=key_b
            )
        )
    out.only_b.extend(sorted(rest_b.values()))
    return out
