"""Result serialization: every experiment outcome as a JSON document.

The scenario layer made every experiment *description* serializable
(``ScenarioSpec.to_dict``); this module does the same for experiment
*outcomes*, so runs survive the process that produced them:

- :func:`scenario_result_to_dict` -- one
  :class:`~repro.scenario.runner.ScenarioResult` as a self-describing
  artifact (the spec, its content hash, surface payload, and a flat
  ``metrics`` mapping that ``repro.cli diff`` compares key by key);
- :func:`sweep_result_to_dict` / :func:`sweep_cell_to_dict` -- a whole
  sweep grid, errored cells included;
- :func:`synthetic_result_to_dict` -- the synthetic surface twin of
  the existing ``workflow_result_to_dict``/``workload_result_to_dict``
  in ``repro.analysis.export``.

Documents are plain dicts of JSON scalars/lists/dicts; wall-clock and
git-revision stamps are *not* part of these payloads (the
parallel-vs-serial bit-for-bit contract covers them) -- the
:class:`~repro.results.store.ResultStore` adds those under ``meta`` at
save time.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.analysis.export import (
    workflow_result_to_dict,
    workload_result_to_dict,
)
from repro.experiments.synthetic import SyntheticResult
from repro.scenario.runner import ScenarioResult
from repro.scenario.spec import ScenarioSpec
from repro.scenario.sweep import SweepCell, SweepResult

__all__ = [
    "result_metrics",
    "scenario_result_to_dict",
    "spec_hash",
    "sweep_cell_to_dict",
    "sweep_result_to_dict",
    "synthetic_result_to_dict",
]


def spec_hash(spec: ScenarioSpec) -> str:
    """The stable content hash artifacts are keyed by (module form).

    Function alias of :meth:`ScenarioSpec.spec_hash
    <repro.scenario.spec.ScenarioSpec.spec_hash>` for callers holding
    the results package rather than the spec.
    """
    return spec.spec_hash()


def synthetic_result_to_dict(result: SyntheticResult) -> Dict[str, Any]:
    """Flatten a synthetic reader/writer run (op trace excluded)."""
    return {
        "strategy": result.strategy,
        "n_nodes": result.n_nodes,
        "ops_per_node": result.ops_per_node,
        "total_ops": result.total_ops,
        "makespan": result.makespan,
        "throughput": result.throughput,
        "mean_node_time": result.mean_node_time,
        "node_times": [float(t) for t in result.node_times],
        "node_sites": list(result.node_sites),
        "node_time_by_site": result.node_time_by_site(),
    }


def result_metrics(result: ScenarioResult) -> Dict[str, float]:
    """Flat headline metrics: the keyed values ``repro.cli diff`` compares.

    Every surface contributes ``makespan_s`` and ``wan_bytes``; the
    rest are surface-specific (throughput for synthetic, staging times
    for workflow, fairness/slowdown for workload).  Keys are stable --
    diffs across commits align on them.
    """
    res = result.result
    metrics: Dict[str, float] = {
        "makespan_s": float(result.makespan),
        "wan_bytes": float(result.wan_bytes),
    }
    if result.surface == "synthetic":
        metrics.update(
            throughput_ops_s=float(res.throughput),
            mean_node_time_s=float(res.mean_node_time),
            total_ops=float(res.total_ops),
        )
    elif result.surface == "workflow":
        metrics.update(
            metadata_time_s=float(res.total_metadata_time),
            transfer_time_s=float(res.total_transfer_time),
            tasks=float(len(res.task_results)),
        )
    else:  # workload
        metrics.update(
            op_throughput_ops_s=float(res.op_throughput()),
            network_throughput_bytes_s=float(res.network_throughput()),
            jain_fairness=float(res.jain_fairness()),
            p50_slowdown=float(res.slowdown_percentile(50)),
            p95_slowdown=float(res.slowdown_percentile(95)),
            mean_queue_wait_s=float(res.mean_queue_wait()),
            completed=float(res.n_completed),
            peak_in_flight=float(res.peak_in_flight),
        )
    if result.elastic is not None:
        metrics.update(
            vm_seconds=float(result.elastic.vm_seconds),
            capacity_cost=float(result.elastic.cost),
            scale_ups=float(result.elastic.n_scale_ups),
            scale_downs=float(result.elastic.n_scale_downs),
            fleet_peak=float(result.elastic.fleet_peak),
        )
    return metrics


def scenario_result_to_dict(
    result: ScenarioResult, include_ops: bool = False
) -> Dict[str, Any]:
    """One scenario run as a self-describing JSON artifact.

    Carries the full spec (so the artifact alone reproduces the run
    via ``ScenarioSpec.from_dict(doc["spec"]).run()``), the spec's
    content hash, the flat ``metrics`` diff keys, the fault events
    that fired, execution ``provenance`` (kernel queue backend, flow
    solver mode, processed-event count -- facts about *how* the run
    was computed, surfaced separately by ``repro.cli diff``), the
    observability summary under ``obs`` when tracing was on, and the
    surface's native payload under ``result``.
    """
    res = result.result
    if result.surface == "synthetic":
        payload = synthetic_result_to_dict(res)
    elif result.surface == "workflow":
        payload = workflow_result_to_dict(res, include_ops=include_ops)
    else:
        payload = workload_result_to_dict(res)
    doc = {
        "schema": 1,
        "kind": "scenario-result",
        "name": result.spec.name,
        "surface": result.surface,
        "seed": result.spec.seed,
        "spec_hash": result.spec.spec_hash(),
        "spec": result.spec.to_dict(),
        "scheduler": result.scheduler,
        "admission": result.admission,
        "wan_bytes": result.wan_bytes,
        "fault_events": [
            {
                "at": ev.at,
                "kind": ev.kind,
                "target": ev.target,
                "detail": ev.detail,
            }
            for ev in result.fault_events
        ],
        "metrics": result_metrics(result),
        "provenance": dict(result.provenance),
        "result": payload,
    }
    if result.obs is not None:
        doc["obs"] = result.obs
    if result.analysis is not None:
        doc["analysis"] = result.analysis.to_dict()
    if result.slo is not None:
        doc["slo"] = result.slo.to_dict()
    if result.elastic is not None:
        doc["elastic"] = result.elastic.to_dict()
    return doc


def sweep_cell_to_dict(
    cell: SweepCell, include_ops: bool = False
) -> Dict[str, Any]:
    """One grid point: overrides plus either its artifact or its error."""
    return {
        "overrides": dict(cell.overrides),
        "error": cell.error,
        "result": (
            scenario_result_to_dict(cell.result, include_ops=include_ops)
            if cell.result is not None
            else None
        ),
    }


def sweep_result_to_dict(
    sweep: SweepResult, include_ops: bool = False
) -> Dict[str, Any]:
    """A whole sweep grid as one JSON document, errored cells inline."""
    return {
        "schema": 1,
        "kind": "sweep-result",
        "base": sweep.base.to_dict(),
        "base_hash": sweep.base.spec_hash(),
        "axes": {k: list(v) for k, v in sweep.axes.items()},
        "cells": [
            sweep_cell_to_dict(c, include_ops=include_ops)
            for c in sweep.cells
        ],
    }
