"""Run artifacts: serialization, spec-hash stores, and run diffing.

The experiment plane's persistence layer.  ``repro.scenario`` made
experiment *descriptions* first-class values; this package does the
same for experiment *outcomes*:

- :mod:`repro.results.serialize` -- every result object as a JSON
  document with a flat keyed ``metrics`` mapping;
- :mod:`repro.results.store` -- :class:`ResultStore` directories of
  one artifact per run, keyed ``<spec_hash12>-s<seed>``;
- :mod:`repro.results.diff` -- keyed comparison of two artifacts or
  two whole stores (``repro.cli diff A B``).
"""

from repro.results.diff import (
    ArtifactDiff,
    StoreDiff,
    diff_artifacts,
    diff_stores,
)
from repro.results.serialize import (
    result_metrics,
    scenario_result_to_dict,
    spec_hash,
    sweep_cell_to_dict,
    sweep_result_to_dict,
    synthetic_result_to_dict,
)
from repro.results.store import ResultStore, current_git_rev

__all__ = [
    "ArtifactDiff",
    "ResultStore",
    "StoreDiff",
    "current_git_rev",
    "diff_artifacts",
    "diff_stores",
    "result_metrics",
    "scenario_result_to_dict",
    "spec_hash",
    "sweep_cell_to_dict",
    "sweep_result_to_dict",
    "synthetic_result_to_dict",
]
