"""Multi-site cloud substrate.

Models the infrastructure of the paper's testbed: geographically
distributed datacenters interconnected by high-latency WANs, with
rentable VMs inside each datacenter.  Distances follow the paper's
three-level taxonomy (local / same-region / geo-distant, Section IV).

The concrete 4-datacenter Azure layout used throughout the evaluation
(North Europe, West Europe, South Central US, East US) is provided as
:data:`repro.cloud.presets.AZURE_4DC`.
"""

from repro.cloud.topology import (
    CloudTopology,
    Datacenter,
    Distance,
    Region,
    SiteSpec,
)
from repro.cloud.flow import FlowAborted, FlowNetwork
from repro.cloud.network import Network, NetworkMessage, RpcError
from repro.cloud.vm import VirtualMachine, VMRole, VMSize
from repro.cloud.deployment import Deployment
from repro.cloud.presets import (
    AZURE_4DC,
    AZURE_SMALL_VM,
    azure_4dc_topology,
    make_topology,
)

__all__ = [
    "AZURE_4DC",
    "AZURE_SMALL_VM",
    "CloudTopology",
    "Datacenter",
    "Deployment",
    "Distance",
    "FlowAborted",
    "FlowNetwork",
    "Network",
    "NetworkMessage",
    "Region",
    "RpcError",
    "SiteSpec",
    "VMRole",
    "VMSize",
    "VirtualMachine",
    "azure_4dc_topology",
    "make_topology",
]
