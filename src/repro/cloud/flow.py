"""Flow-level max-min fair bandwidth sharing for inter-site links.

The slot model in :mod:`repro.cloud.network` grants every in-flight
transfer the *full* link bandwidth and only bounds how many may be in
flight at once.  Under load that systematically underestimates WAN
contention -- exactly the regime where the paper's centralized registry
saturates (Fig. 7) and the decentralized strategies keep scaling
(Fig. 8).  This module provides the standard DES alternative: each
directed link has a finite capacity that its *active flows* share
max-min fairly.

Mechanics
---------

A :class:`Flow` is ``size`` bytes in transit over one directed link.
While active it drains at ``flow.rate`` bytes/second; the link computes
rates by progressive filling (max-min fairness with optional per-flow
rate caps):

1. sort flows by their rate cap;
2. offer each flow an equal share of the capacity still unassigned;
3. a flow that cannot use its share (cap below it) keeps its cap and
   returns the surplus to the pool for the remaining flows.

With no caps this degenerates to ``capacity / n`` each -- N concurrent
equal-size transfers each observe ~1/N of the link.

Whenever a flow starts or finishes, the link *rebalances*: every active
flow's remaining byte count is settled at its old rate, rates are
recomputed, and each flow's completion event is rescheduled via
:meth:`~repro.sim.core.Environment.reschedule` (O(log n) per flow thanks
to the kernel's lazily-deleted calendar entries; no heap rebuilds).

Units: time is seconds, sizes are bytes, rates/capacities are bytes per
second -- the repo-wide conventions (see ``docs/network-model.md``).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from repro.sim import Environment, Event, SimulationError

__all__ = ["FairShareLink", "Flow", "FlowStats"]


class Flow:
    """One transfer's bandwidth share on a directed link.

    Wait on :attr:`done` (an event succeeding with the flow itself) for
    completion.  ``rate`` is the current fair share, updated on every
    link rebalance.
    """

    __slots__ = (
        "link",
        "size",
        "remaining",
        "rate",
        "max_rate",
        "started_at",
        "last_update",
        "done",
        "_timer",
    )

    def __init__(self, link: "FairShareLink", size: int, max_rate: float):
        self.link = link
        self.size = size
        #: Bytes still to transmit (settled lazily at each rebalance).
        self.remaining = float(size)
        self.rate = 0.0
        self.max_rate = max_rate
        self.started_at = link.env.now
        self.last_update = link.env.now
        #: Fires (with the flow as value) when the last byte is sent.
        self.done: Event = Event(link.env)
        #: Internal completion timer, rescheduled on every rebalance.
        self._timer: Optional[Event] = None

    @property
    def elapsed(self) -> float:
        return self.link.env.now - self.started_at

    def __repr__(self) -> str:
        return (
            f"<Flow {self.remaining:.0f}/{self.size}B "
            f"@{self.rate:.0f}B/s>"
        )


class FlowStats:
    """Aggregate counters of one fair-share link (contention diagnostics)."""

    __slots__ = ("flows", "bytes", "max_concurrent", "rebalances")

    def __init__(self) -> None:
        self.flows = 0
        self.bytes = 0
        self.max_concurrent = 0
        self.rebalances = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "flows": self.flows,
            "bytes": self.bytes,
            "max_concurrent": self.max_concurrent,
            "rebalances": self.rebalances,
        }


class FairShareLink:
    """A directed link whose active flows share ``capacity`` max-min fairly.

    Parameters
    ----------
    env:
        Simulation environment.
    capacity:
        Link capacity in bytes/second.
    max_flow_rate:
        Default per-flow rate cap (e.g. NIC or per-connection TCP limit),
        bytes/second; ``inf`` disables the cap.
    """

    def __init__(
        self,
        env: Environment,
        capacity: float,
        max_flow_rate: float = math.inf,
    ):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if max_flow_rate <= 0:
            raise ValueError("max_flow_rate must be positive")
        self.env = env
        self.capacity = float(capacity)
        self.max_flow_rate = float(max_flow_rate)
        #: Active flows in start order (stable -> deterministic filling).
        self.flows: List[Flow] = []
        self.stats = FlowStats()

    # -- public API ---------------------------------------------------------

    @property
    def n_active(self) -> int:
        return len(self.flows)

    def fair_rate(self, extra_flows: int = 0) -> float:
        """The rate a prospective flow would get right now (estimator).

        Runs the same progressive filling as the live rate computation
        (existing flows keep their caps; the probe flows are capped at
        the link default), so it stays exact with heterogeneous per-flow
        caps.  Pure function of the current state: no RNG, no side
        effects -- safe for planning (e.g. source selection in the
        storage layer).
        """
        probes = max(1, extra_flows)
        entries = sorted(
            [(f.max_rate, False) for f in self.flows]
            + [(self.max_flow_rate, True)] * probes,
            key=lambda e: e[0],
        )
        unassigned, left = self.capacity, len(entries)
        probe_rate = 0.0
        for cap, is_probe in entries:
            rate = min(cap, unassigned / left)
            if is_probe:
                # Equal-capped flows all receive the same share, so any
                # probe's rate is THE prospective rate.
                probe_rate = rate
            unassigned -= rate
            left -= 1
        return probe_rate

    def open(self, size: int, max_rate: Optional[float] = None) -> Flow:
        """Start transmitting ``size`` bytes; returns the :class:`Flow`.

        The caller waits on ``flow.done``.  Zero-size flows complete at
        the current instant (the event still goes through the calendar so
        callback ordering stays deterministic).
        """
        if size < 0:
            raise ValueError(f"size must be >= 0, got {size}")
        cap = self.max_flow_rate if max_rate is None else float(max_rate)
        if cap <= 0:
            raise ValueError("max_rate must be positive")
        flow = Flow(self, size, cap)
        self.stats.flows += 1
        self.stats.bytes += size
        if size == 0:
            flow.done.succeed(flow)
            return flow
        self.flows.append(flow)
        self.stats.max_concurrent = max(
            self.stats.max_concurrent, len(self.flows)
        )
        self._rebalance()
        return flow

    def abort(self, flow: Flow) -> None:
        """Tear down an in-flight flow (e.g. site failure mid-transfer)."""
        if flow not in self.flows:
            raise SimulationError(f"{flow!r} is not active on this link")
        self._detach(flow)
        if not flow.done.triggered:
            flow.done.fail(SimulationError(f"{flow!r} aborted"))
        self._rebalance()

    # -- internals ----------------------------------------------------------

    def _detach(self, flow: Flow) -> None:
        self.flows.remove(flow)
        timer = flow._timer
        flow._timer = None
        # Withdraw the pending completion timer so it never fires.
        if timer is not None and not timer.processed:
            self.env.cancel(timer)

    def _settle(self, now: float) -> None:
        """Charge every active flow for bytes sent since its last update."""
        for flow in self.flows:
            if flow.rate > 0.0:
                flow.remaining = max(
                    0.0, flow.remaining - flow.rate * (now - flow.last_update)
                )
            flow.last_update = now

    def _recompute_rates(self) -> None:
        """Progressive filling: max-min fair shares under per-flow caps."""
        unassigned = self.capacity
        left = len(self.flows)
        # Stable sort by cap: tightest-capped flows settle first; ties keep
        # start order, so placement is fully deterministic.
        for flow in sorted(self.flows, key=lambda f: f.max_rate):
            share = unassigned / left
            flow.rate = min(flow.max_rate, share)
            unassigned -= flow.rate
            left -= 1

    def _rebalance(self) -> None:
        """Settle, recompute shares, and reschedule affected completions."""
        now = self.env.now
        self.stats.rebalances += 1
        self._settle(now)
        old_rates = [flow.rate for flow in self.flows]
        self._recompute_rates()
        for flow, old_rate in zip(self.flows, old_rates):
            if flow._timer is not None and flow.rate == old_rate:
                # Unchanged rate -> the scheduled completion instant is
                # still exact (e.g. rate-capped flows riding out churn).
                continue
            delay = flow.remaining / flow.rate if flow.rate > 0 else math.inf
            if flow._timer is None:
                timer = self.env.timeout(delay)
                timer.callbacks.append(self._make_completion(flow))
                flow._timer = timer
            else:
                self.env.reschedule(flow._timer, delay)

    def _make_completion(self, flow: Flow):
        def _complete(_event: Event) -> None:
            # The timer only pops at the (re)scheduled completion instant.
            flow.remaining = 0.0
            flow.last_update = self.env.now
            self.flows.remove(flow)
            flow._timer = None
            if self.flows:
                self._rebalance()
            flow.done.succeed(flow)

        return _complete

    def __repr__(self) -> str:
        return (
            f"<FairShareLink cap={self.capacity:.0f}B/s "
            f"active={len(self.flows)}>"
        )
