"""Flow-level hierarchical max-min fair bandwidth sharing.

The slot model in :mod:`repro.cloud.network` grants every in-flight
transfer the *full* link bandwidth and only bounds how many may be in
flight at once.  Under load that systematically underestimates WAN
contention -- exactly the regime where the paper's centralized registry
saturates (Fig. 7) and the decentralized strategies keep scaling
(Fig. 8).  This module provides the standard DES alternative: finite
link capacities shared max-min fairly by the *active flows*, with two
extensions beyond plain per-link sharing:

- **hierarchical constraints**: a flow is simultaneously limited by its
  directed link's capacity, the source site's total *egress* cap and the
  destination site's total *ingress* cap (a site NIC/uplink is one pipe
  no matter how many distinct links leave it).  Links coupled through a
  site cap are balanced together by a :class:`FlowNetwork`;
- **weights**: each flow carries a ``weight`` and receives shares
  proportional to it wherever it is bottlenecked (weighted max-min),
  so priority traffic (metadata hot path) can be favored over bulk
  provisioning.

Mechanics
---------

A :class:`Flow` is ``size`` bytes in transit over one directed link.
While active it drains at ``flow.rate`` bytes/second.  Rates are
computed by *water-filling over constraint sets* (progressive filling):

1. every constraint (link capacity, site egress, site ingress, and each
   flow's own rate cap) bounds the sum of the rates of the flows it
   covers;
2. raise a common water level ``lambda``; flow ``f`` asks for
   ``lambda * f.weight``;
3. the constraint that saturates first freezes its flows at the current
   level; remove them, subtract their rates, repeat with the rest.

With one link, no caps and unit weights this degenerates to
``capacity / n`` each -- N concurrent equal-size transfers each observe
~1/N of the link.

Whenever a flow starts, finishes or is aborted, the affected links
*rebalance*: every active flow's remaining byte count is settled at its
old rate, rates are recomputed, and each flow's completion event is
rescheduled via :meth:`~repro.sim.core.Environment.reschedule` (O(log n)
per flow thanks to the kernel's lazily-deleted calendar entries; no heap
rebuilds).

Incremental re-solve
--------------------

Links only influence each other through *finite* site caps: a finite
egress cap couples the links leaving a site, a finite ingress cap the
links entering one, and those couplings compose transitively.
Water-filling therefore decomposes exactly over the connected
components of that coupling graph -- a changed flow can only move the
rates of flows in its own component.  :meth:`FlowNetwork.rebalance`
exploits this (``solver="incremental"``, the default): given the link
a change originated on, it settles and re-solves just that component
and leaves every other flow's rate, timer, and calendar entry alone.
``solver="global"`` restores the legacy full re-solve per change, and
``solver="verify"`` runs the incremental update *and* a shadow global
solve, asserting the rates agree (used by the equivalence tests; the
tolerance is loose only because the ``_LEVEL_RTOL`` tie threshold is
evaluated against a global minimum level in one mode and a
per-component one in the other).  See ``docs/performance.md``.

Fault semantics: :meth:`FairShareLink.abort` tears down an in-flight
flow (site outage, link flap).  The flow's waiter sees
:class:`FlowAborted`; bytes already transmitted at the abort instant are
settled and accounted as *delivered*, the rest as *aborted*, so
``delivered_bytes + aborted_bytes == bytes`` once every flow is closed
(conservation -- see ``tests/cloud/test_flow_properties.py``).

Units: time is seconds, sizes are bytes, rates/capacities are bytes per
second -- the repo-wide conventions (see ``docs/network-model.md``).
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.sim import Environment, Event, SimulationError

__all__ = [
    "FairShareLink",
    "Flow",
    "FlowAborted",
    "FlowNetwork",
    "FlowStats",
]

#: Relative tolerance when deciding which constraints saturate at the
#: current water level (guards against last-ulp float noise splitting
#: simultaneous bottlenecks into separate freeze rounds).
_LEVEL_RTOL = 1e-12


class FlowAborted(SimulationError):
    """An in-flight flow was torn down (site outage, link flap)."""

    def __init__(self, flow: "Flow", reason: str = ""):
        super().__init__(
            f"{flow!r} aborted" + (f": {reason}" if reason else "")
        )
        self.flow = flow
        self.reason = reason


class Flow:
    """One transfer's bandwidth share on a directed link.

    Wait on :attr:`done` (an event succeeding with the flow itself) for
    completion; an aborted flow fails it with :class:`FlowAborted`.
    ``rate`` is the current weighted fair share, updated on every
    rebalance of the owning link (or its :class:`FlowNetwork`).
    """

    __slots__ = (
        "link",
        "size",
        "remaining",
        "rate",
        "max_rate",
        "weight",
        "started_at",
        "last_update",
        "done",
        "_timer",
    )

    def __init__(
        self,
        link: "FairShareLink",
        size: int,
        max_rate: float,
        weight: float = 1.0,
    ):
        self.link = link
        self.size = size
        #: Bytes still to transmit (settled lazily at each rebalance).
        self.remaining = float(size)
        self.rate = 0.0
        self.max_rate = max_rate
        #: Relative share this flow receives at any bottleneck it hits.
        self.weight = weight
        self.started_at = link.env.now
        self.last_update = link.env.now
        #: Fires (with the flow as value) when the last byte is sent.
        self.done: Event = Event(link.env)
        #: Internal completion timer, rescheduled on every rebalance.
        self._timer: Optional[Event] = None

    @property
    def elapsed(self) -> float:
        return self.link.env.now - self.started_at

    @property
    def delivered(self) -> float:
        """Bytes transmitted so far (as of the last settle)."""
        return self.size - self.remaining

    def __repr__(self) -> str:
        return (
            f"<Flow {self.remaining:.0f}/{self.size}B "
            f"@{self.rate:.0f}B/s w={self.weight:g}>"
        )


class FlowStats:
    """Aggregate counters of one fair-share link (contention diagnostics).

    ``bytes`` counts bytes *opened* on the link; ``delivered_bytes`` and
    ``aborted_bytes`` partition them once flows close: an aborted flow
    contributes the bytes it had transmitted by the abort instant to
    ``delivered_bytes`` and the rest to ``aborted_bytes``, so for a
    drained link ``delivered_bytes + aborted_bytes == bytes``.
    """

    __slots__ = (
        "flows",
        "bytes",
        "max_concurrent",
        "rebalances",
        "aborted_flows",
        "aborted_bytes",
        "delivered_bytes",
    )

    def __init__(self) -> None:
        self.flows = 0
        self.bytes = 0
        self.max_concurrent = 0
        self.rebalances = 0
        self.aborted_flows = 0
        self.aborted_bytes = 0.0
        self.delivered_bytes = 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "flows": self.flows,
            "bytes": self.bytes,
            "max_concurrent": self.max_concurrent,
            "rebalances": self.rebalances,
            "aborted_flows": self.aborted_flows,
            "aborted_bytes": self.aborted_bytes,
            "delivered_bytes": self.delivered_bytes,
        }


class FairShareLink:
    """A directed link whose active flows share ``capacity`` max-min fairly.

    Standalone (the default), the link balances only its own flows.
    When created through a :class:`FlowNetwork` the link carries its
    endpoint site names and every rebalance is delegated to the network,
    which couples all links through per-site egress/ingress caps.

    Parameters
    ----------
    env:
        Simulation environment.
    capacity:
        Link capacity in bytes/second.
    max_flow_rate:
        Default per-flow rate cap (e.g. NIC or per-connection TCP limit),
        bytes/second; ``inf`` disables the cap.
    network:
        Owning :class:`FlowNetwork`, if any (set by
        :meth:`FlowNetwork.link`).
    src / dst:
        Endpoint site names (used by the network's site-cap grouping and
        fault teardown; optional for standalone links).
    """

    def __init__(
        self,
        env: Environment,
        capacity: float,
        max_flow_rate: float = math.inf,
        network: Optional["FlowNetwork"] = None,
        src: Optional[str] = None,
        dst: Optional[str] = None,
    ):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if max_flow_rate <= 0:
            raise ValueError("max_flow_rate must be positive")
        self.env = env
        self.capacity = float(capacity)
        self.max_flow_rate = float(max_flow_rate)
        self.network = network
        self.src = src
        self.dst = dst
        #: Active flows in start order (stable -> deterministic filling).
        self.flows: List[Flow] = []
        self.stats = FlowStats()

    # -- public API ---------------------------------------------------------

    @property
    def n_active(self) -> int:
        return len(self.flows)

    def fair_rate(self, extra_flows: int = 0, weight: float = 1.0) -> float:
        """The rate a prospective flow would get right now (estimator).

        Runs the same weighted progressive filling as the live rate
        computation (existing flows keep their caps and weights; the
        probe flows are capped at the link default), so it stays exact
        with heterogeneous per-flow caps.  A link owned by a
        :class:`FlowNetwork` delegates to the network estimator so site
        egress/ingress caps are honored too.  Pure function of the
        current state: no RNG, no side effects -- safe for planning
        (e.g. source selection in the storage layer).
        """
        if self.network is not None:
            return self.network.estimate_rate(
                self.src,
                self.dst,
                capacity=self.capacity,
                max_flow_rate=self.max_flow_rate,
                weight=weight,
                extra_flows=extra_flows,
            )
        probes = max(1, extra_flows)
        entries = sorted(
            [(f.max_rate, f.weight, False) for f in self.flows]
            + [(self.max_flow_rate, weight, True)] * probes,
            key=lambda e: e[0] / e[1],
        )
        unassigned = self.capacity
        weight_left = sum(e[1] for e in entries)
        probe_rate = 0.0
        for cap, w, is_probe in entries:
            rate = min(cap, unassigned * w / weight_left)
            if is_probe:
                # Equal-capped equal-weight flows all receive the same
                # share, so any probe's rate is THE prospective rate.
                probe_rate = rate
            unassigned -= rate
            weight_left -= w
        return probe_rate

    def open(
        self,
        size: int,
        max_rate: Optional[float] = None,
        weight: float = 1.0,
    ) -> Flow:
        """Start transmitting ``size`` bytes; returns the :class:`Flow`.

        The caller waits on ``flow.done``.  ``weight`` sets the flow's
        share at any bottleneck (weighted max-min); zero-size flows
        complete at the current instant (the event still goes through
        the calendar so callback ordering stays deterministic).
        """
        if size < 0:
            raise ValueError(f"size must be >= 0, got {size}")
        cap = self.max_flow_rate if max_rate is None else float(max_rate)
        if cap <= 0:
            raise ValueError("max_rate must be positive")
        if weight <= 0:
            raise ValueError("weight must be positive")
        flow = Flow(self, size, cap, weight=float(weight))
        self.stats.flows += 1
        self.stats.bytes += size
        if size == 0:
            self.stats.delivered_bytes += 0.0
            flow.done.succeed(flow)
            return flow
        self.flows.append(flow)
        self.stats.max_concurrent = max(
            self.stats.max_concurrent, len(self.flows)
        )
        self._rebalance()
        return flow

    def abort(self, flow: Flow, reason: str = "") -> None:
        """Tear down an in-flight flow (e.g. site failure mid-transfer).

        Bytes already on the wire are settled first: they count as
        delivered in :attr:`stats`, the unsent remainder as aborted.
        The flow's ``done`` event fails with :class:`FlowAborted`.
        """
        if flow not in self.flows:
            raise SimulationError(f"{flow!r} is not active on this link")
        # Settle at the abort instant so the delivered/aborted split is
        # exact (the latent-bug fix: counters used to ignore partials).
        self._settle(self.env.now)
        self._close_aborted(flow, reason)
        self._rebalance()

    # -- internals ----------------------------------------------------------

    def _close_aborted(self, flow: Flow, reason: str) -> None:
        """Account, detach and fail one settled flow (no rebalance)."""
        self.stats.aborted_flows += 1
        self.stats.aborted_bytes += flow.remaining
        self.stats.delivered_bytes += flow.delivered
        self._detach(flow)
        if not flow.done.triggered:
            flow.done.fail(FlowAborted(flow, reason))

    def _detach(self, flow: Flow) -> None:
        self.flows.remove(flow)
        timer = flow._timer
        flow._timer = None
        # Withdraw the pending completion timer so it never fires.
        if timer is not None and not timer.processed:
            self.env.cancel(timer)

    def _settle(self, now: float) -> None:
        """Charge every active flow for bytes sent since its last update."""
        for flow in self.flows:
            if flow.rate > 0.0:
                flow.remaining = max(
                    0.0, flow.remaining - flow.rate * (now - flow.last_update)
                )
            flow.last_update = now

    def _recompute_rates(self) -> None:
        """Progressive filling: weighted max-min shares under per-flow caps."""
        unassigned = self.capacity
        weight_left = sum(f.weight for f in self.flows)
        # Stable sort by saturation level: tightest-capped flows settle
        # first; ties keep start order, so placement is deterministic.
        for flow in sorted(self.flows, key=lambda f: f.max_rate / f.weight):
            share = unassigned * flow.weight / weight_left
            flow.rate = min(flow.max_rate, share)
            unassigned -= flow.rate
            weight_left -= flow.weight

    def _rebalance(self) -> None:
        """Settle, recompute shares, and reschedule affected completions."""
        if self.network is not None:
            self.network.rebalance(changed=self)
            return
        now = self.env.now
        self.stats.rebalances += 1
        self._settle(now)
        old_rates = [flow.rate for flow in self.flows]
        self._recompute_rates()
        self._reschedule(old_rates)

    def _reschedule(self, old_rates: List[float]) -> None:
        """(Re)schedule completion timers for flows whose rate changed."""
        for flow, old_rate in zip(self.flows, old_rates):
            if flow._timer is not None and flow.rate == old_rate:
                # Unchanged rate -> the scheduled completion instant is
                # still exact (e.g. rate-capped flows riding out churn).
                continue
            delay = flow.remaining / flow.rate if flow.rate > 0 else math.inf
            if flow._timer is None:
                timer = self.env.timeout(delay)
                timer.callbacks.append(self._make_completion(flow))
                flow._timer = timer
            else:
                self.env.reschedule(flow._timer, delay)

    def _make_completion(self, flow: Flow):
        def _complete(_event: Event) -> None:
            # The timer only pops at the (re)scheduled completion instant.
            flow.remaining = 0.0
            flow.last_update = self.env.now
            self.flows.remove(flow)
            flow._timer = None
            self.stats.delivered_bytes += flow.size
            if self.network is not None:
                # Coupled links may gain headroom even when this one
                # drained, so the network always rebalances.
                self.network.rebalance(changed=self)
            elif self.flows:
                self._rebalance()
            flow.done.succeed(flow)

        return _complete

    def __repr__(self) -> str:
        where = f" {self.src}->{self.dst}" if self.src else ""
        return (
            f"<FairShareLink{where} cap={self.capacity:.0f}B/s "
            f"active={len(self.flows)}>"
        )


class FlowNetwork:
    """All fair-share links of one deployment, coupled by site caps.

    Owns every :class:`FairShareLink` created through :meth:`link` and
    recomputes *all* flow rates together whenever any flow starts,
    finishes or aborts: a flow is bounded by its link's capacity, its
    source site's egress cap and its destination site's ingress cap
    simultaneously, so links sharing a capped site cannot be balanced in
    isolation.

    ``site_caps`` maps a site name to its ``(egress, ingress)`` caps in
    bytes/second (``inf`` disables a cap); it is consulted live on every
    rebalance, so topology-level cap changes take effect immediately.

    ``solver`` picks the re-solve strategy: ``"incremental"`` (default)
    re-solves only the constraint component reachable from the changed
    link (see the module docstring), ``"global"`` re-solves everything
    on every change (the legacy behavior, kept as a debug mode), and
    ``"verify"`` runs the incremental update plus a shadow global solve
    asserting the two agree.

    The network is also the fault-teardown surface: :meth:`site_outage`
    aborts every in-flight flow touching a site and marks it *down* for
    the outage window (:meth:`down_remaining` lets the transport delay
    new flows until recovery); :meth:`flap_link` kills the flows of one
    link without a down window.
    """

    def __init__(
        self,
        env: Environment,
        site_caps: Optional[
            Callable[[str], Tuple[float, float]]
        ] = None,
        solver: str = "incremental",
    ):
        if solver not in ("incremental", "global", "verify"):
            raise ValueError(
                f"unknown solver {solver!r}; expected 'incremental', "
                "'global' or 'verify'"
            )
        self.env = env
        self.solver = solver
        self._links: Dict[Tuple[str, str], FairShareLink] = {}
        #: ``self._links`` keys in sorted order.  Links are get-or-create
        #: and never removed, so this only changes in :meth:`link`; every
        #: rebalance and rate estimate walks it, so re-sorting per solve
        #: was a measurable slice of the churn-scenario profiles.
        self._sorted_keys: List[Tuple[str, str]] = []
        self._site_caps = site_caps or (lambda site: (math.inf, math.inf))
        self._down_until: Dict[str, float] = {}
        #: Global rebalance count (diagnostics).
        self.rebalances = 0
        # Observability: re-solve scope events under the "flow" category.
        tr = getattr(env, "tracer", None)
        self._tracer = tr
        self._trace_flow = (
            tr is not None and tr.enabled and tr.wants("flow")
        )

    # -- construction -------------------------------------------------------

    def link(
        self,
        src: str,
        dst: str,
        capacity: float,
        max_flow_rate: float = math.inf,
    ) -> FairShareLink:
        """Get-or-create the directed link ``src -> dst``."""
        key = (src, dst)
        flink = self._links.get(key)
        if flink is None:
            flink = FairShareLink(
                self.env,
                capacity=capacity,
                max_flow_rate=max_flow_rate,
                network=self,
                src=src,
                dst=dst,
            )
            self._links[key] = flink
            self._sorted_keys = sorted(self._links)
        return flink

    @property
    def links(self) -> Dict[Tuple[str, str], FairShareLink]:
        return dict(self._links)

    def active_flows(self) -> List[Flow]:
        """Every in-flight flow, in deterministic (link, start) order."""
        links = self._links
        return [
            f for key in self._sorted_keys for f in links[key].flows
        ]

    # -- site caps & outage state -------------------------------------------

    def egress_cap(self, site: str) -> float:
        return self._site_caps(site)[0]

    def ingress_cap(self, site: str) -> float:
        return self._site_caps(site)[1]

    def down_remaining(self, site: str) -> float:
        """Seconds until ``site`` recovers from an outage (0 if up)."""
        return max(0.0, self._down_until.get(site, 0.0) - self.env.now)

    # -- fault teardown -----------------------------------------------------

    def site_outage(self, site: str, duration: float = 0.0) -> int:
        """Abort every flow into or out of ``site``; mark it down.

        Returns the number of flows torn down.  ``duration`` extends the
        site's down window (new flows touching the site should wait it
        out -- the transport consults :meth:`down_remaining`).
        """
        if duration > 0:
            self._down_until[site] = max(
                self._down_until.get(site, 0.0), self.env.now + duration
            )
        return self._abort_where(
            lambda link: link.src == site or link.dst == site,
            reason=f"site outage at {site}",
        )

    def region_outage(
        self, sites: Iterable[str], duration: float = 0.0
    ) -> int:
        """Correlated outage: take several sites down *atomically*.

        Marks every site's down window first, then tears down all flows
        touching any of them in one batch -- a single settle/close/
        re-solve pass (:meth:`_abort_where`), exactly as if the whole
        region went dark in one instant.  Calling :meth:`site_outage`
        per site would instead re-solve once per site, letting the
        survivors of teardown *k* briefly speed up before teardown
        *k + 1* -- rates no real correlated failure ever exhibits.
        """
        down = sorted(set(sites))
        if not down:
            return 0
        if duration > 0:
            until = self.env.now + duration
            for site in down:
                self._down_until[site] = max(
                    self._down_until.get(site, 0.0), until
                )
        member = frozenset(down)
        return self._abort_where(
            lambda link: link.src in member or link.dst in member,
            reason=f"region outage at {{{', '.join(down)}}}",
        )

    def flap_link(
        self, a: str, b: str, bidirectional: bool = True
    ) -> int:
        """Abort the in-flight flows of link ``a -> b`` (and ``b -> a``).

        Models a transient link flap: flows die, their waiters retry;
        the link itself is immediately usable again.
        """
        keys = {(a, b), (b, a)} if bidirectional else {(a, b)}
        return self._abort_where(
            lambda link: (link.src, link.dst) in keys,
            reason=f"link flap {a}<->{b}",
        )

    def _abort_where(self, pred, reason: str) -> int:
        links = self._links
        doomed = [
            (links[key], flow)
            for key in self._sorted_keys
            if pred(links[key])
            for flow in list(links[key].flows)
        ]
        if not doomed:
            return 0
        # Settle every affected link first (exact delivered/aborted
        # split), close all doomed flows, then rebalance once -- one
        # global re-solve for the whole teardown instead of one per flow.
        now = self.env.now
        for link in {link for link, _ in doomed}:
            link._settle(now)
        for link, flow in doomed:
            link._close_aborted(flow, reason)
        self.rebalance(changed=[link for link, _ in doomed])
        return len(doomed)

    # -- rate computation ---------------------------------------------------

    def _active_links(self) -> List[FairShareLink]:
        links = self._links
        return [
            links[key] for key in self._sorted_keys if links[key].flows
        ]

    def _component(
        self, seed_keys: Iterable[Tuple[str, str]]
    ) -> List[FairShareLink]:
        """Active links in the constraint component of ``seed_keys``.

        Links couple only through *finite* site caps: a finite egress
        cap joins all links sharing a source site, a finite ingress cap
        all links sharing a destination, transitively.  Expands those
        couplings to a fixpoint starting from the seed link keys (the
        seeds' sites count even if the seed link itself has drained --
        its departure is exactly what frees headroom for the others).
        Returns the component in sorted-key order, so a solve over it
        builds constraints in the same order a global solve would.
        """
        caps = self._site_caps
        seed_keys = set(seed_keys)
        egress: set = set()
        ingress: set = set()
        for src, dst in seed_keys:
            if src is not None and math.isfinite(caps(src)[0]):
                egress.add(src)
            if dst is not None and math.isfinite(caps(dst)[1]):
                ingress.add(dst)
        active = self._active_links()
        in_comp: set = set()
        grew = True
        while grew:
            grew = False
            for link in active:
                if link in in_comp:
                    continue
                if (
                    (link.src, link.dst) in seed_keys
                    or link.src in egress
                    or link.dst in ingress
                ):
                    in_comp.add(link)
                    grew = True
                    if link.src not in egress and math.isfinite(
                        caps(link.src)[0]
                    ):
                        egress.add(link.src)
                    if link.dst not in ingress and math.isfinite(
                        caps(link.dst)[1]
                    ):
                        ingress.add(link.dst)
        return [link for link in active if link in in_comp]

    def rebalance(self, changed=None) -> None:
        """Settle affected links, re-solve their rates, reschedule.

        ``changed`` names where the perturbation happened: a
        :class:`FairShareLink`, an iterable of them, or ``None`` for "no
        idea -- re-solve everything".  Under the incremental solver only
        the constraint component of the changed links is touched; the
        global solver ignores the hint.
        """
        now = self.env.now
        self.rebalances += 1
        if changed is None or self.solver == "global":
            scope = "global"
            links = self._active_links()
        else:
            scope = "component"
            if isinstance(changed, FairShareLink):
                changed = (changed,)
            links = self._component(
                {(link.src, link.dst) for link in changed}
            )
        if self._trace_flow:
            self._tracer.emit(
                "flow", "rebalance",
                scope=scope,
                links=len(links),
                flows=sum(len(link.flows) for link in links),
            )
        for link in links:
            link.stats.rebalances += 1
            link._settle(now)
        old = {
            link: [flow.rate for flow in link.flows] for link in links
        }
        rates = self._solve(links)
        for link in links:
            for flow in link.flows:
                flow.rate = rates[id(flow)]
            link._reschedule(old[link])
        if self.solver == "verify":
            self._verify_against_global()

    def _verify_against_global(self) -> None:
        """Assert the live rates match a from-scratch global solve.

        The tolerance is loose (1e-9 relative) because the
        ``_LEVEL_RTOL`` tie threshold compares against a *global*
        minimum water level in global mode but a per-component one in
        incremental mode, so rates near a cross-component tie may
        differ by O(``_LEVEL_RTOL``).
        """
        links = self._active_links()
        rates = self._solve(links)
        for link in links:
            for flow in link.flows:
                want = rates[id(flow)]
                if not math.isclose(
                    flow.rate, want, rel_tol=1e-9, abs_tol=1e-6
                ):
                    raise SimulationError(
                        f"incremental solver diverged on {flow!r} "
                        f"({link.src}->{link.dst}): incremental rate "
                        f"{flow.rate!r} vs global {want!r}"
                    )

    def estimate_rate(
        self,
        src: str,
        dst: str,
        capacity: float,
        max_flow_rate: float = math.inf,
        weight: float = 1.0,
        extra_flows: int = 0,
    ) -> float:
        """Rate a prospective ``src -> dst`` flow would get right now.

        Runs the real water-filling with a probe flow added, so site
        egress/ingress caps and the load of *other* links sharing those
        caps are all reflected.  Pure: no RNG, no state changes.  Under
        the incremental solver the probe only interacts with its own
        constraint component, so only that component is solved.
        """
        if self.solver == "global":
            links = self._active_links()
        else:
            links = self._component([(src, dst)])
        probes = max(1, extra_flows)
        probe = _Probe(src, dst, max_flow_rate, weight)
        rates = self._solve(
            links,
            extra=[probe] * probes,
            extra_capacity=((src, dst), capacity),
        )
        if self.solver == "verify":
            full = self._solve(
                self._active_links(),
                extra=[probe] * probes,
                extra_capacity=((src, dst), capacity),
            )
            if not math.isclose(
                rates[id(probe)], full[id(probe)],
                rel_tol=1e-9, abs_tol=1e-6,
            ):
                raise SimulationError(
                    f"incremental estimate_rate diverged for {src}->{dst}: "
                    f"{rates[id(probe)]!r} vs global {full[id(probe)]!r}"
                )
        return rates[id(probe)]

    def _solve(
        self,
        links: List[FairShareLink],
        extra: Optional[List["_Probe"]] = None,
        extra_capacity: Optional[Tuple[Tuple[str, str], float]] = None,
    ) -> Dict[int, float]:
        """Water-filling over constraint sets; returns ``id(flow) -> rate``.

        Constraints are built in a stable order (links by key, then
        egress sites, then ingress sites, each sorted by name) and every
        iteration freezes the flows of all constraints saturating at the
        minimum water level, so the outcome is fully deterministic.

        Membership maps are built in one pass and each constraint's
        member list is pruned as flows freeze; member lists stay in
        ascending record order throughout, so every capacity/weight
        summation runs in the same order (and yields the same floats) as
        the original scan-per-round formulation.
        """
        # Parallel per-flow arrays: owning object, weight, rate cap,
        # cap/weight saturation level.
        objs: List = []
        weights: List[float] = []
        caps: List[float] = []
        ratios: List[float] = []
        link_caps: Dict[Tuple[str, str], float] = {}
        link_members: Dict[Tuple[str, str], List[int]] = {}
        src_members: Dict[str, List[int]] = {}
        dst_members: Dict[str, List[int]] = {}

        def _add(obj, key, src, dst, weight, max_rate) -> None:
            i = len(objs)
            objs.append(obj)
            weights.append(weight)
            caps.append(max_rate)
            ratios.append(max_rate / weight)
            link_members.setdefault(key, []).append(i)
            if src is not None:
                src_members.setdefault(src, []).append(i)
            if dst is not None:
                dst_members.setdefault(dst, []).append(i)

        for link in links:
            key = (link.src, link.dst)
            link_caps[key] = link.capacity
            for flow in link.flows:
                _add(flow, key, link.src, link.dst, flow.weight,
                     flow.max_rate)
        if extra:
            key, cap = extra_capacity
            # A live link's configured capacity wins over the probe's.
            link_caps.setdefault(key, cap)
            for probe in extra:
                _add(probe, key, probe.src, probe.dst, probe.weight,
                     probe.max_rate)

        # Constraint sets: [remaining capacity, live member indices].
        constraints: List[List] = []
        for key in sorted(link_caps):
            members = link_members.get(key)
            if members:
                constraints.append([link_caps[key], members])
        site_caps = self._site_caps
        for site in sorted(src_members):
            cap = site_caps(site)[0]
            if math.isfinite(cap):
                constraints.append([cap, src_members[site]])
        for site in sorted(dst_members):
            cap = site_caps(site)[1]
            if math.isfinite(cap):
                constraints.append([cap, dst_members[site]])

        n = len(objs)
        by_idx = [0.0] * n
        alive = list(range(n))
        while alive:
            # Water level at which each constraint (or per-flow cap)
            # saturates, counting only still-undetermined flows.
            level = math.inf
            sat = []  # cached (weight sum, saturation level) per constraint
            for cap, members in constraints:
                w = 0.0
                for i in members:
                    w += weights[i]
                if w > 0:
                    lvl = max(0.0, cap) / w
                    if lvl < level:
                        level = lvl
                    sat.append(lvl)
                else:
                    sat.append(math.inf)
            for i in alive:
                if ratios[i] < level:
                    level = ratios[i]
            if not math.isfinite(level):  # pragma: no cover - every flow
                # sits on a finite-capacity link, so a finite level must
                # exist; guard against a degenerate empty constraint set.
                level = 0.0

            threshold = level * (1.0 + _LEVEL_RTOL)
            frozen = set()
            for lvl, (cap, members) in zip(sat, constraints):
                if lvl <= threshold:
                    frozen.update(members)
            for i in alive:
                if ratios[i] <= threshold:
                    frozen.add(i)
            if not frozen:  # pragma: no cover - the argmin constraint
                # always has at least one undetermined member.
                frozen = set(alive)

            for i in frozen:
                by_idx[i] = min(caps[i], level * weights[i])
            alive = [i for i in alive if i not in frozen]
            for constraint in constraints:
                members = constraint[1]
                live = [i for i in members if i not in frozen]
                if len(live) != len(members):
                    used = 0.0
                    for i in members:
                        if i in frozen:
                            used += by_idx[i]
                    constraint[0] = max(0.0, constraint[0] - used)
                    constraint[1] = live
        return {id(objs[i]): by_idx[i] for i in range(n)}

    def __repr__(self) -> str:
        active = sum(len(l.flows) for l in self._links.values())
        return (
            f"<FlowNetwork links={len(self._links)} "
            f"active_flows={active}>"
        )


class _Probe:
    """Phantom flow used by :meth:`FlowNetwork.estimate_rate`."""

    __slots__ = ("src", "dst", "max_rate", "weight")

    def __init__(self, src: str, dst: str, max_rate: float, weight: float):
        self.src = src
        self.dst = dst
        self.max_rate = max_rate
        self.weight = weight
