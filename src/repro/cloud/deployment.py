"""A provisioned multi-site deployment: env + topology + network + VMs.

This is the object an experiment sets up once and hands to the metadata
controller and the workflow engine.  It mirrors the paper's deployment
unit (a set of VMs launched at once across the chosen datacenters) and
enforces the per-site core limit that motivates multi-site execution in
the first place.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.sim import Environment
from repro.cloud.network import Network
from repro.cloud.topology import CloudTopology, Datacenter
from repro.cloud.vm import VMRole, VMSize, VirtualMachine
from repro.cloud.presets import AZURE_SMALL_VM, azure_4dc_topology
from repro.scheduling import SCHEDULER_NAMES
from repro.util.rng import RngStreams

__all__ = ["Deployment"]


class Deployment:
    """Environment, topology, network and a fleet of worker VMs.

    Parameters
    ----------
    topology:
        Site layout; defaults to the paper's 4-DC Azure testbed.
    n_nodes:
        Number of worker VMs, distributed round-robin across sites (the
        paper keeps nodes "evenly distributed in our datacenters").
    seed:
        Master seed for all random streams of this deployment.
    bandwidth_model:
        WAN bandwidth sharing model: ``"slots"`` (concurrency-capped,
        full bandwidth per transfer -- the original model) or ``"fair"``
        (flow-level hierarchical max-min fair sharing).  See
        ``docs/network-model.md``.
    site_egress_bw / site_ingress_bw:
        Fair model only: cap every site's aggregate outbound/inbound WAN
        bandwidth (bytes/second); ``None`` leaves the topology's
        per-site caps untouched (uncapped by default).  Per-site values
        can be set directly via
        :meth:`CloudTopology.set_site_caps <repro.cloud.topology.CloudTopology.set_site_caps>`.
        Note: like the fault injectors' latency edits, the caps mutate
        the (possibly caller-supplied) topology *in place* and are read
        live at every rebalance -- build a fresh topology per deployment
        (or pass ``topology.copy()``, see
        :meth:`CloudTopology.copy <repro.cloud.topology.CloudTopology.copy>`)
        when comparing capped vs uncapped runs.  The declarative
        scenario layer (``repro.scenario``) always builds a fresh
        topology per run for exactly this reason.
    rpc_flow_weight:
        Fair model only: weight of metadata RPC flows relative to bulk
        transfers (weight 1.0) at shared bottlenecks.
    scheduler:
        Default task-placement policy name for workflow engines built
        on this deployment (one of
        ``repro.scheduling.SCHEDULER_NAMES``); ``None`` keeps the
        engine default (``"locality"``).  An explicit ``scheduler=``
        on the engine, or one pinned in the metadata config, wins over
        this value.  See ``docs/scheduling.md``.
    admission:
        Default admission-control policy name for workload runners
        built on this deployment (one of
        ``repro.workload.ADMISSION_NAMES``); ``None`` keeps the runner
        default (``"unbounded"``).  An explicit ``admission=`` on the
        runner, or one pinned in the metadata config, wins over this
        value.  See ``docs/workloads.md``.
    """

    def __init__(
        self,
        topology: Optional[CloudTopology] = None,
        n_nodes: int = 32,
        vm_size: Optional[VMSize] = None,
        seed: int = 0,
        env: Optional[Environment] = None,
        bandwidth_model: str = "slots",
        site_egress_bw: Optional[float] = None,
        site_ingress_bw: Optional[float] = None,
        rpc_flow_weight: float = 1.0,
        scheduler: Optional[str] = None,
        admission: Optional[str] = None,
    ):
        if n_nodes <= 0:
            raise ValueError("n_nodes must be positive")
        if scheduler is not None and scheduler not in SCHEDULER_NAMES:
            raise ValueError(
                f"unknown scheduler {scheduler!r}; expected one of "
                f"{SCHEDULER_NAMES}"
            )
        self.scheduler = scheduler
        if admission is not None:
            # Lazy import: repro.workload layers above the deployment
            # (its runner takes one), so validate only when the knob is
            # actually used.
            from repro.workload.admission import ADMISSION_NAMES

            if admission not in ADMISSION_NAMES:
                raise ValueError(
                    f"unknown admission policy {admission!r}; expected "
                    f"one of {ADMISSION_NAMES}"
                )
        self.admission = admission
        self.env = env or Environment()
        self.topology = topology or azure_4dc_topology()
        if site_egress_bw is not None or site_ingress_bw is not None:
            for dc in self.topology:
                self.topology.set_site_caps(
                    dc.name,
                    egress_bw=site_egress_bw,
                    ingress_bw=site_ingress_bw,
                )
        self.rng = RngStreams(seed=seed)
        self.network = Network(
            self.env,
            self.topology,
            rng=self.rng,
            bandwidth_model=bandwidth_model,
            rpc_weight=rpc_flow_weight,
        )
        self.vm_size = vm_size or AZURE_SMALL_VM
        self.workers: List[VirtualMachine] = []
        self._workers_by_site: Dict[str, List[VirtualMachine]] = {
            dc.name: [] for dc in self.topology
        }
        # Elastic-fleet bookkeeping (repro.elastic): VMs mid-drain (no
        # longer placeable, still finishing work), retired VMs with
        # their decommission times (the vm-seconds cost ledger), and
        # fleet-change listeners (the workflow engine registers one so
        # its load map tracks additions/removals).
        self._draining: List[VirtualMachine] = []
        self._retired: List[Tuple[VirtualMachine, float]] = []
        self._fleet_listeners: List[
            Callable[
                [Sequence[VirtualMachine], Sequence[VirtualMachine]], None
            ]
        ] = []
        sites = list(self.topology)
        for i in range(n_nodes):
            dc = sites[i % len(sites)]
            self._check_core_limit(dc)
            vm = VirtualMachine(
                self.env,
                name=f"worker-{i}",
                datacenter=dc,
                size=self.vm_size,
                role=VMRole.WORKER,
            )
            self.workers.append(vm)
            self._workers_by_site[dc.name].append(vm)
        # Control node lives at the first site, like the paper's Web Role.
        self.control_node = VirtualMachine(
            self.env,
            name="control",
            datacenter=sites[0],
            size=self.vm_size,
            role=VMRole.CONTROL,
        )
        self._next_worker_id = n_nodes

    def _check_core_limit(self, dc: Datacenter) -> None:
        # Draining VMs no longer take placements but still hold their
        # cores until retired, so they count against the cap.
        used = sum(
            vm.size.cores for vm in self._workers_by_site[dc.name]
        ) + sum(
            vm.size.cores for vm in self._draining if vm.site == dc.name
        )
        if used + self.vm_size.cores > dc.core_limit:
            raise ValueError(
                f"Core limit exceeded at {dc.name}: the cloud provider caps "
                f"{dc.core_limit} cores per deployment (use more sites)"
            )

    # -- elastic fleet lifecycle (repro.elastic) -------------------------

    def add_fleet_listener(
        self,
        callback: Callable[
            [Sequence[VirtualMachine], Sequence[VirtualMachine]], None
        ],
    ) -> None:
        """Register ``callback(added, removed)`` for fleet changes.

        Fired synchronously by :meth:`add_vms` / :meth:`drain_vms`; with
        no autoscaler attached it never fires, so registration alone is
        free.
        """
        self._fleet_listeners.append(callback)

    def add_vms(
        self,
        site: str,
        count: int = 1,
        warm_s: float = 0.0,
        warmup_factor: float = 1.0,
    ) -> List[VirtualMachine]:
        """Provision ``count`` worker VMs at ``site``, placeable at once.

        The new VMs run degraded (compute stretched by
        ``warmup_factor``) until ``env.now + warm_s``.  Respects the
        site's provider core cap; the caller models provisioning lag by
        delaying this call, not by passing future times.
        """
        if count <= 0:
            raise ValueError(f"add_vms needs a positive count, got {count}")
        dc = self.topology.get(site)
        added: List[VirtualMachine] = []
        for _ in range(count):
            self._check_core_limit(dc)
            vm = VirtualMachine(
                self.env,
                name=f"worker-{self._next_worker_id}",
                datacenter=dc,
                size=self.vm_size,
                role=VMRole.WORKER,
            )
            self._next_worker_id += 1
            vm.warm_at = self.env.now + warm_s
            vm.warmup_factor = warmup_factor
            self.workers.append(vm)
            self._workers_by_site[site].append(vm)
            added.append(vm)
        for listener in self._fleet_listeners:
            listener(added, ())
        return added

    def drain_vms(self, site: str, count: int = 1) -> List[VirtualMachine]:
        """Start draining ``count`` workers at ``site`` (newest first).

        A draining VM leaves the placeable fleet immediately -- no new
        tasks land on it -- but keeps running whatever is already placed
        (work is never stranded).  Call :meth:`retire_vm` once its last
        task finishes to close its cost ledger entry.  Refuses to drain
        more VMs than the site hosts or to empty the fleet entirely.
        """
        if count <= 0:
            raise ValueError(f"drain_vms needs a positive count, got {count}")
        pool = self._workers_by_site[site]  # KeyError on unknown site
        if count > len(pool):
            raise ValueError(
                f"cannot drain {count} VMs at {site}: only {len(pool)} there"
            )
        if count >= len(self.workers):
            raise ValueError(
                "cannot drain the entire fleet: at least one placeable "
                "worker must remain"
            )
        drained = pool[-count:]
        del pool[-count:]
        for vm in drained:
            vm.draining = True
            self.workers.remove(vm)
            self._draining.append(vm)
        for listener in self._fleet_listeners:
            listener((), drained)
        return drained

    def retire_vm(self, vm: VirtualMachine) -> None:
        """Decommission a fully drained VM (stops its vm-seconds meter)."""
        if vm not in self._draining:
            raise ValueError(f"{vm.name} is not draining")
        self._draining.remove(vm)
        self._retired.append((vm, self.env.now))

    @property
    def draining(self) -> List[VirtualMachine]:
        """VMs mid-drain: unplaceable, still finishing placed tasks."""
        return list(self._draining)

    def vm_seconds_by_site(self, now: Optional[float] = None) -> Dict[str, float]:
        """Accumulated worker vm-seconds per site, up to ``now``.

        Active and draining VMs bill from their provision time to
        ``now``; retired VMs bill up to their decommission time.  This
        is the capacity-cost ledger the elastic control plane reports.
        """
        now = self.env.now if now is None else now
        bill: Dict[str, float] = {dc.name: 0.0 for dc in self.topology}
        for vm in self.workers:
            bill[vm.site] += max(0.0, now - vm.provisioned_at)
        for vm in self._draining:
            bill[vm.site] += max(0.0, now - vm.provisioned_at)
        for vm, retired_at in self._retired:
            bill[vm.site] += max(0.0, retired_at - vm.provisioned_at)
        return bill

    def vm_seconds(self, now: Optional[float] = None) -> float:
        """Total accumulated worker vm-seconds (see ``vm_seconds_by_site``)."""
        return sum(self.vm_seconds_by_site(now).values())

    # -- queries ---------------------------------------------------------

    @property
    def sites(self) -> List[str]:
        return [dc.name for dc in self.topology]

    @property
    def n_nodes(self) -> int:
        return len(self.workers)

    def workers_at(self, site: str) -> List[VirtualMachine]:
        """Worker VMs hosted in datacenter ``site``."""
        return list(self._workers_by_site[site])

    def run(self, until=None):
        """Advance the simulation (delegates to the environment).

        Note: strategies run background processes (sync agents,
        replication pumps), so running *to exhaustion* (``until=None``)
        will not terminate while one is active.  Prefer
        :meth:`run_process` or pass an event/time.
        """
        return self.env.run(until)

    def run_process(self, generator, name: str = "main"):
        """Start ``generator`` as a process and run until it finishes.

        The idiomatic way to drive a scenario against a deployment::

            dep.run_process(my_scenario(dep.env))
        """
        proc = self.env.process(generator, name=name)
        return self.env.run(until=proc)

    def __repr__(self) -> str:
        per_site = {
            s: len(v) for s, v in self._workers_by_site.items() if v
        }
        return f"<Deployment {self.n_nodes} workers {per_site}>"
