"""Fault injection for resilience experiments.

The paper's opening motivation for multi-site deployments includes
"resilience to failures"; its cache tier is explicitly HA (primary +
replica, Section III-B).  This module schedules failures against a
running deployment so tests and experiments can measure how the
metadata service behaves through them:

- :class:`CacheFailureInjector` -- kills registry cache primaries (and
  optionally replicas) on a schedule, exercising the promote-and-
  repopulate path;
- :class:`LatencySpikeInjector` -- temporarily inflates one WAN link's
  latency (a transatlantic brown-out), exercising the sensitivity of
  each strategy to a single slow path;
- :class:`SiteOutage` -- marks a whole site's registry unreachable for
  a window by inflating its service latency to the outage duration
  (requests queue and drain when the site returns).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List

from repro.sim import Environment
from repro.cloud.topology import CloudTopology

__all__ = [
    "CacheFailureInjector",
    "FaultEvent",
    "LatencySpikeInjector",
    "SiteOutage",
]


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, for post-run reporting."""

    at: float
    kind: str
    target: str
    detail: str = ""


class CacheFailureInjector:
    """Kill cache primaries at fixed simulated times.

    >>> injector = CacheFailureInjector(env, strategy.registries,
    ...                                 schedule=[(5.0, "west-europe")])
    """

    def __init__(
        self,
        env: Environment,
        registries: Dict[str, "object"],
        schedule: List[tuple],
    ):
        self.env = env
        self.registries = registries
        self.events: List[FaultEvent] = []
        for at, site in schedule:
            if site not in registries:
                raise ValueError(f"no registry at {site!r}")
            env.process(
                self._fail_at(at, site), name=f"fault-cache-{site}"
            )

    def _fail_at(self, at: float, site: str) -> Generator:
        yield self.env.timeout(at)
        self.registries[site].cache.fail_primary()
        self.events.append(
            FaultEvent(self.env.now, "cache-primary-failure", site)
        )


class LatencySpikeInjector:
    """Inflate one link's latency for a window, then restore it."""

    def __init__(
        self,
        env: Environment,
        topology: CloudTopology,
        a: str,
        b: str,
        start: float,
        duration: float,
        factor: float = 10.0,
    ):
        if duration <= 0 or factor <= 0:
            raise ValueError("duration and factor must be positive")
        self.env = env
        self.topology = topology
        self.events: List[FaultEvent] = []
        env.process(
            self._spike(a, b, start, duration, factor),
            name=f"fault-latency-{a}-{b}",
        )

    def _spike(
        self, a: str, b: str, start: float, duration: float, factor: float
    ) -> Generator:
        yield self.env.timeout(start)
        fwd = self.topology.link(a, b)
        bwd = self.topology.link(b, a)
        original = (fwd.latency, bwd.latency)
        fwd.latency *= factor
        bwd.latency *= factor
        self.events.append(
            FaultEvent(
                self.env.now,
                "latency-spike-start",
                f"{a}<->{b}",
                f"x{factor}",
            )
        )
        yield self.env.timeout(duration)
        fwd.latency, bwd.latency = original
        self.events.append(
            FaultEvent(self.env.now, "latency-spike-end", f"{a}<->{b}")
        )


class SiteOutage:
    """Take a site's registry offline for a window.

    Implemented by acquiring *all* service slots of the registry for
    the outage duration: in-flight requests finish, new ones queue and
    drain when the outage lifts -- the observable behaviour of a
    rebooting cache instance behind a connection-retrying client.
    """

    def __init__(
        self,
        env: Environment,
        registry,
        start: float,
        duration: float,
    ):
        if duration <= 0:
            raise ValueError("duration must be positive")
        self.env = env
        self.registry = registry
        self.events: List[FaultEvent] = []
        env.process(
            self._outage(start, duration),
            name=f"fault-outage-{registry.site}",
        )

    def _outage(self, start: float, duration: float) -> Generator:
        yield self.env.timeout(start)
        server = self.registry._server
        requests = [server.request() for _ in range(server.capacity)]
        from repro.sim import AllOf

        yield AllOf(self.env, requests)
        self.events.append(
            FaultEvent(self.env.now, "site-outage-start", self.registry.site)
        )
        yield self.env.timeout(duration)
        for req in requests:
            req.cancel()
        self.events.append(
            FaultEvent(self.env.now, "site-outage-end", self.registry.site)
        )
