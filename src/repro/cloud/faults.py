"""Fault injection for resilience experiments.

The paper's opening motivation for multi-site deployments includes
"resilience to failures"; its cache tier is explicitly HA (primary +
replica, Section III-B).  This module schedules failures against a
running deployment so tests and experiments can measure how the
metadata service behaves through them:

- :class:`CacheFailureInjector` -- kills registry cache primaries (and
  optionally replicas) on a schedule, exercising the promote-and-
  repopulate path;
- :class:`LatencySpikeInjector` -- temporarily inflates one WAN link's
  latency (a transatlantic brown-out), exercising the sensitivity of
  each strategy to a single slow path;
- :class:`SiteOutage` -- takes a whole site offline for a window: its
  registry's service slots are held (requests queue and drain when the
  site returns) and, under the flow-level fair bandwidth model, every
  in-flight transfer through the site is torn down
  (:class:`~repro.cloud.flow.FlowAborted` at the waiters; the storage
  layer retries from the next-best source) while new transfers wait out
  the window;
- :class:`LinkFlapInjector` -- transient flaps of one WAN link: each
  flap kills the link's in-flight fair flows without a down window
  (connections die, retries reconnect immediately);
- :class:`RegionOutage` -- a *correlated* failure: several sites (an
  explicit set, or everything tagged with one region) go dark together,
  with one atomically batched flow teardown and a shared down window --
  the region-wide incident that per-site independence assumptions miss.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Sequence

from repro.sim import Environment
from repro.cloud.network import Network
from repro.cloud.topology import CloudTopology

__all__ = [
    "CacheFailureInjector",
    "FaultEvent",
    "LatencySpikeInjector",
    "LinkFlapInjector",
    "RegionOutage",
    "SiteOutage",
]


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, for post-run reporting."""

    at: float
    kind: str
    target: str
    detail: str = ""


class CacheFailureInjector:
    """Kill cache primaries at fixed simulated times.

    >>> injector = CacheFailureInjector(env, strategy.registries,
    ...                                 schedule=[(5.0, "west-europe")])
    """

    def __init__(
        self,
        env: Environment,
        registries: Dict[str, "object"],
        schedule: List[tuple],
    ):
        self.env = env
        self.registries = registries
        self.events: List[FaultEvent] = []
        for at, site in schedule:
            if site not in registries:
                raise ValueError(f"no registry at {site!r}")
            env.process(
                self._fail_at(at, site), name=f"fault-cache-{site}"
            )

    def _fail_at(self, at: float, site: str) -> Generator:
        yield self.env.timeout(at)
        self.registries[site].cache.fail_primary()
        self.events.append(
            FaultEvent(self.env.now, "cache-primary-failure", site)
        )


class LatencySpikeInjector:
    """Inflate one link's latency for a window, then restore it."""

    def __init__(
        self,
        env: Environment,
        topology: CloudTopology,
        a: str,
        b: str,
        start: float,
        duration: float,
        factor: float = 10.0,
    ):
        if duration <= 0 or factor <= 0:
            raise ValueError("duration and factor must be positive")
        self.env = env
        self.topology = topology
        self.events: List[FaultEvent] = []
        env.process(
            self._spike(a, b, start, duration, factor),
            name=f"fault-latency-{a}-{b}",
        )

    def _spike(
        self, a: str, b: str, start: float, duration: float, factor: float
    ) -> Generator:
        yield self.env.timeout(start)
        fwd = self.topology.link(a, b)
        bwd = self.topology.link(b, a)
        original = (fwd.latency, bwd.latency)
        fwd.latency *= factor
        bwd.latency *= factor
        self.events.append(
            FaultEvent(
                self.env.now,
                "latency-spike-start",
                f"{a}<->{b}",
                f"x{factor}",
            )
        )
        yield self.env.timeout(duration)
        fwd.latency, bwd.latency = original
        self.events.append(
            FaultEvent(self.env.now, "latency-spike-end", f"{a}<->{b}")
        )


class SiteOutage:
    """Take a whole site offline for a window.

    Control plane: *all* service slots of the site's registry are
    acquired for the outage duration -- in-flight requests finish, new
    ones queue and drain when the outage lifts (the observable behaviour
    of a rebooting cache instance behind a connection-retrying client).

    Data plane (pass ``network``, fair bandwidth model only): at the
    outage start every in-flight transfer into or out of the site is
    aborted -- waiters see :class:`~repro.cloud.flow.FlowAborted`, the
    storage layer retries from the next-best source -- and new transfers
    touching the site wait out the remaining window.

    ``registry`` may be ``None`` for data-plane-only outages (pass
    ``site`` explicitly then).
    """

    def __init__(
        self,
        env: Environment,
        registry=None,
        start: float = 0.0,
        duration: float = 0.0,
        network: Optional[Network] = None,
        site: Optional[str] = None,
    ):
        if duration <= 0:
            raise ValueError("duration must be positive")
        if registry is None and site is None:
            raise ValueError("need a registry or an explicit site")
        self.env = env
        self.registry = registry
        self.network = network
        self.site = site or registry.site
        #: Fair flows torn down at the outage start (set by the process).
        self.aborted_flows = 0
        self.events: List[FaultEvent] = []
        env.process(
            self._outage(start, duration),
            name=f"fault-outage-{self.site}",
        )

    def _outage(self, start: float, duration: float) -> Generator:
        yield self.env.timeout(start)
        if self.network is not None:
            # Data plane first: connections through the site die at the
            # instant the site goes dark.
            self.aborted_flows = self.network.abort_site_flows(
                self.site, duration
            )
        if self.registry is None:
            self.events.append(
                FaultEvent(
                    self.env.now,
                    "site-outage-start",
                    self.site,
                    f"aborted_flows={self.aborted_flows}",
                )
            )
            yield self.env.timeout(duration)
            self.events.append(
                FaultEvent(self.env.now, "site-outage-end", self.site)
            )
            return
        server = self.registry._server
        requests = [server.request() for _ in range(server.capacity)]
        from repro.sim import AllOf

        yield AllOf(self.env, requests)
        self.events.append(
            FaultEvent(
                self.env.now,
                "site-outage-start",
                self.site,
                f"aborted_flows={self.aborted_flows}",
            )
        )
        yield self.env.timeout(duration)
        for req in requests:
            req.cancel()
        self.events.append(
            FaultEvent(self.env.now, "site-outage-end", self.site)
        )


class RegionOutage:
    """Take a whole *set* of sites offline together (correlated failure).

    Composes :class:`SiteOutage` semantics across every member site,
    atomically:

    - **data plane** (pass ``network``, fair bandwidth model only): all
      in-flight transfers touching *any* member die in **one batched
      teardown** -- a single settle/re-solve pass via
      :meth:`Network.abort_region_flows
      <repro.cloud.network.Network.abort_region_flows>`, so survivors
      never observe intermediate rates between per-site teardowns --
      and every member shares one down window;
    - **control plane** (pass ``registries``, e.g.
      ``strategy.registries``): each member site's registry has all of
      its service slots held for the window; in-flight requests finish,
      new ones queue and drain at recovery.

    Membership is an explicit ``sites`` sequence, or every datacenter
    tagged with ``region`` (resolved through
    :meth:`CloudTopology.sites_in_region
    <repro.cloud.topology.CloudTopology.sites_in_region>`; requires
    ``topology``).
    """

    def __init__(
        self,
        env: Environment,
        sites: Optional[Sequence[str]] = None,
        region: Optional[str] = None,
        topology: Optional[CloudTopology] = None,
        registries: Optional[Dict[str, "object"]] = None,
        start: float = 0.0,
        duration: float = 0.0,
        network: Optional[Network] = None,
    ):
        if duration <= 0:
            raise ValueError("duration must be positive")
        if (sites is None) == (region is None):
            raise ValueError("pass exactly one of sites= or region=")
        if region is not None:
            if topology is None:
                raise ValueError("region= needs a topology to resolve it")
            sites = topology.sites_in_region(region)
        if not sites:
            raise ValueError("need at least one site")
        self.env = env
        self.sites = sorted(set(sites))
        self.network = network
        self.registries = {
            site: registries[site]
            for site in self.sites
            if registries is not None and site in registries
        }
        #: Fair flows torn down at the outage start (set by the process).
        self.aborted_flows = 0
        self.events: List[FaultEvent] = []
        env.process(
            self._outage(start, duration),
            name=f"fault-region-{'-'.join(self.sites)}",
        )

    def _outage(self, start: float, duration: float) -> Generator:
        yield self.env.timeout(start)
        label = ",".join(self.sites)
        if self.network is not None:
            # Data plane first, in one batch: every connection through
            # the region dies at the same instant, one global re-solve.
            self.aborted_flows = self.network.abort_region_flows(
                self.sites, duration
            )
        # Control plane: grab every member registry's full slot set
        # concurrently (in-flight requests finish first, like a
        # rebooting cache instance behind a retrying client).
        requests = [
            self.registries[site]._server.request()
            for site in self.sites
            if site in self.registries
            for _ in range(self.registries[site]._server.capacity)
        ]
        if requests:
            from repro.sim import AllOf

            yield AllOf(self.env, requests)
        self.events.append(
            FaultEvent(
                self.env.now,
                "region-outage-start",
                label,
                f"aborted_flows={self.aborted_flows}",
            )
        )
        yield self.env.timeout(duration)
        for req in requests:
            req.cancel()
        self.events.append(
            FaultEvent(self.env.now, "region-outage-end", label)
        )


class LinkFlapInjector:
    """Flap one WAN link at scheduled absolute sim times (fair model).

    Each flap aborts every in-flight fair flow on the ``a -> b`` (and,
    by default, ``b -> a``) link: the connections die, their waiters
    retry, and the link itself is immediately usable again -- the
    classic transient-flap failure mode, distinct from a
    :class:`SiteOutage` window.
    """

    def __init__(
        self,
        env: Environment,
        network: Network,
        a: str,
        b: str,
        times: Sequence[float],
        bidirectional: bool = True,
    ):
        if not times:
            raise ValueError("need at least one flap time")
        if any(t < 0 for t in times):
            raise ValueError("flap times must be >= 0")
        network.topology.get(a)
        network.topology.get(b)
        self.env = env
        self.network = network
        self.a = a
        self.b = b
        #: Total fair flows torn down across all flaps.
        self.aborted_flows = 0
        self.events: List[FaultEvent] = []
        env.process(
            self._run(sorted(times), bidirectional),
            name=f"fault-flap-{a}-{b}",
        )

    def _run(
        self, times: Sequence[float], bidirectional: bool
    ) -> Generator:
        for at in times:
            # Times are absolute sim instants; one already in the past
            # (injector built mid-run) fires immediately.
            yield self.env.timeout(max(0.0, at - self.env.now))
            n = self.network.flap_link(
                self.a, self.b, bidirectional=bidirectional
            )
            self.aborted_flows += n
            self.events.append(
                FaultEvent(
                    self.env.now,
                    "link-flap",
                    f"{self.a}<->{self.b}",
                    f"aborted={n}",
                )
            )
