"""Virtual machines: the execution nodes of the deployment.

Mirrors the paper's Section V node taxonomy built on Azure PaaS roles:

- **worker nodes** execute application tasks (Azure Worker Roles);
- a **control node** drives the run (Azure Web Role);
- the **synchronization agent** is a dedicated worker used by the
  replicated strategy.

A VM is pinned to a datacenter, has a bounded number of cores (each task
occupies one core while executing) and accounts busy time so experiments
can report utilization.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Generator, Optional

from repro.sim import Environment, Resource
from repro.cloud.topology import Datacenter
from repro.util.units import GB

__all__ = ["VMRole", "VMSize", "VirtualMachine"]


class VMRole(enum.Enum):
    WORKER = "worker"
    CONTROL = "control"
    SYNC_AGENT = "sync-agent"


@dataclass(frozen=True)
class VMSize:
    """An instance type: cores + memory (bytes)."""

    name: str
    cores: int
    memory: int

    def __post_init__(self):
        if self.cores <= 0 or self.memory <= 0:
            raise ValueError("VMSize cores and memory must be positive")


class VirtualMachine:
    """A compute node inside one datacenter.

    ``compute(duration)`` models task computation: it claims one core for
    ``duration`` simulated seconds.  Metadata and data I/O do *not*
    consume cores (they are network/service bound), matching how the
    paper separates sleep-simulated compute from I/O.
    """

    def __init__(
        self,
        env: Environment,
        name: str,
        datacenter: Datacenter,
        size: Optional[VMSize] = None,
        role: VMRole = VMRole.WORKER,
    ):
        self.env = env
        self.name = name
        self.datacenter = datacenter
        self.size = size or VMSize("small", cores=1, memory=int(1.75 * GB))
        self.role = role
        self._cores = Resource(env, capacity=self.size.cores)
        self.busy_time = 0.0
        self.tasks_executed = 0
        # Elastic-fleet lifecycle (repro.elastic).  Statically deployed
        # VMs are born warm at t=0 and never drain, so none of these
        # change behavior unless an autoscaler touches the fleet.
        self.provisioned_at = env.now
        self.warm_at = env.now  # computes before this run degraded
        self.warmup_factor = 1.0
        self.draining = False

    @property
    def site(self) -> str:
        """Name of the datacenter hosting this VM."""
        return self.datacenter.name

    def compute(self, duration: float) -> Generator:
        """Process: occupy one core for ``duration`` seconds.

        A freshly provisioned VM runs *degraded* until its warm-up
        deadline: any compute that grabs a core before ``warm_at`` is
        stretched by ``warmup_factor`` (cold caches, image pull, JIT --
        the usual first-minutes tax an autoscaler must amortize).
        """
        if duration < 0:
            raise ValueError(f"negative compute duration {duration}")
        with self._cores.request() as req:
            yield req
            if self.env.now < self.warm_at:
                duration *= self.warmup_factor
            start = self.env.now
            yield self.env.timeout(duration)
            self.busy_time += self.env.now - start
            self.tasks_executed += 1

    def utilization(self, horizon: Optional[float] = None) -> float:
        """Fraction of elapsed time (x cores) spent computing."""
        elapsed = horizon if horizon is not None else self.env.now
        if elapsed <= 0:
            return 0.0
        return self.busy_time / (elapsed * self.size.cores)

    def __repr__(self) -> str:
        return f"<VM {self.name} @{self.site} {self.role.value}>"
