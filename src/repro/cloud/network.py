"""WAN/LAN network model: latency, bandwidth and request/response RPC.

Every message between two sites pays:

``delay = base_latency + jitter + transmission``

where ``base_latency`` comes from the topology's link spec and jitter is
a truncated-normal perturbation drawn from a dedicated RNG stream (so
network noise never disturbs workload generation).  The *transmission*
term depends on the configured bandwidth model:

- ``"slots"`` (default, the original model): every in-flight transfer
  gets the full link bandwidth (``size / bandwidth``); inter-DC links
  bound *concurrency* instead -- a limited number of in-flight transfers
  share the link.
- ``"fair"``: flow-level max-min fair sharing (see
  :mod:`repro.cloud.flow`): each directed inter-site link has finite
  capacity and all active flows share it, so N concurrent transfers each
  observe ~1/N of the link.  This is the model to use when WAN
  contention matters (Fig. 7 saturation, Fig. 8 scalability).

See ``docs/network-model.md`` for when to prefer each model.  Local
(intra-DC) traffic is never capped in either model: the paper's
bottlenecks are WAN links and registry service capacity, not top-of-rack
switches.

Two interaction styles are offered:

- :meth:`Network.transfer` -- fire a one-way message / bulk transfer and
  wait for its arrival (used by the storage layer and lazy metadata
  propagation);
- :meth:`Network.rpc` -- request/response round trip with a server-side
  service callback (used by metadata registry clients).

Accounting notes: per-message latency statistics are *end-to-end*
(send to arrival, including any queueing for a link slot), and the
planning estimators (:meth:`Network.round_trip`,
:meth:`Network.estimated_transfer_time`) are jitter-free and never touch
the RNG stream, so using them for planning cannot perturb subsequent
network noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, Iterable, Optional, Tuple

from repro.sim import Environment, Resource, Timeout
from repro.cloud.flow import FairShareLink, FlowAborted, FlowNetwork
from repro.cloud.topology import CloudTopology
from repro.obs import NULL_TRACER
from repro.util.rng import RngStreams

__all__ = [
    "BANDWIDTH_MODELS",
    "Network",
    "NetworkMessage",
    "NetworkStats",
    "RpcError",
]

#: Recognized values of the ``bandwidth_model`` switch.
BANDWIDTH_MODELS = ("slots", "fair")


class RpcError(Exception):
    """Raised to RPC callers when the remote service fails the request."""


@dataclass(slots=True)
class NetworkMessage:
    """A message in flight between two sites (metadata op, file chunk...)."""

    src: str
    dst: str
    size: int  # bytes
    payload: Any = None
    sent_at: float = 0.0


@dataclass
class NetworkStats:
    """Aggregate transfer statistics, broken down by distance class.

    ``total_latency`` is end-to-end: send to arrival, *including* time
    spent queueing for a link slot under the slot model (or transmitting
    at a reduced fair share under the flow model).

    Fault accounting (fair model only): ``aborted_transfers`` counts
    transfers torn down mid-flight (site outage, link flap) with
    ``aborted_bytes`` the bytes they had *not* yet delivered;
    ``retried_transfers``/``retried_bytes`` count the re-issues the
    storage layer made to recover (see
    :meth:`TransferService.fetch <repro.storage.transfer.TransferService.fetch>`).
    """

    messages: int = 0
    bytes: int = 0
    local_messages: int = 0
    same_region_messages: int = 0
    geo_distant_messages: int = 0
    total_latency: float = 0.0
    aborted_transfers: int = 0
    aborted_bytes: float = 0.0
    retried_transfers: int = 0
    retried_bytes: int = 0

    def as_dict(self) -> Dict[str, float]:
        return {
            "messages": self.messages,
            "bytes": self.bytes,
            "local_messages": self.local_messages,
            "same_region_messages": self.same_region_messages,
            "geo_distant_messages": self.geo_distant_messages,
            "total_latency": self.total_latency,
            "aborted_transfers": self.aborted_transfers,
            "aborted_bytes": self.aborted_bytes,
            "retried_transfers": self.retried_transfers,
            "retried_bytes": self.retried_bytes,
        }


class Network:
    """Latency/bandwidth network over a :class:`CloudTopology`.

    Parameters
    ----------
    env:
        Simulation environment.
    topology:
        Site layout and link specs.
    rng:
        Stream registry; the network uses the ``"network"`` stream.
    link_concurrency:
        Slot model only: max concurrent transfers per directed inter-DC
        link pair.
    bandwidth_model:
        ``"slots"`` (original concurrency-cap model) or ``"fair"``
        (flow-level hierarchical max-min fair sharing: link capacity
        plus per-site egress/ingress caps, weighted shares).
    rpc_weight:
        Fair model only: flow weight of RPC request/response legs
        (metadata hot path) relative to the default bulk-transfer weight
        of 1.0 -- weighted max-min gives a weight-w flow w times the
        share of a weight-1 flow at a shared bottleneck.
    flow_solver:
        Fair model only: the :class:`FlowNetwork` re-solve strategy --
        ``"incremental"`` (default), ``"global"`` or ``"verify"`` (see
        :mod:`repro.cloud.flow`).
    """

    #: Per-message fixed processing overhead (serialization, NIC), seconds.
    PER_MESSAGE_OVERHEAD = 50e-6

    def __init__(
        self,
        env: Environment,
        topology: CloudTopology,
        rng: Optional[RngStreams] = None,
        link_concurrency: int = 64,
        bandwidth_model: str = "slots",
        rpc_weight: float = 1.0,
        flow_solver: str = "incremental",
    ):
        if bandwidth_model not in BANDWIDTH_MODELS:
            raise ValueError(
                f"unknown bandwidth_model {bandwidth_model!r}; "
                f"expected one of {BANDWIDTH_MODELS}"
            )
        if rpc_weight <= 0:
            raise ValueError("rpc_weight must be positive")
        self.env = env
        self.topology = topology
        self.rng = (rng or RngStreams(seed=0)).get("network")
        self.link_concurrency = link_concurrency
        self.bandwidth_model = bandwidth_model
        #: Hot-path twin of ``bandwidth_model == "fair"`` (transfer runs
        #: hundreds of thousands of times per scenario).
        self._fair = bandwidth_model == "fair"
        self.rpc_weight = float(rpc_weight)
        self._link_slots: Dict[Tuple[str, str], Resource] = {}
        #: Route cache: (src, dst) -> (LinkSpec, distance-class name).
        #: Safe because topology mutators (latency spikes, cap edits)
        #: update the cached LinkSpec objects in place and site regions
        #: never change after construction.
        self._routes: Dict[Tuple[str, str], Tuple[Any, str]] = {}
        #: Fair model: all links and their site-cap coupling, lazily
        #: populated per directed pair (None under the slot model).
        self.flow_net: Optional[FlowNetwork] = (
            FlowNetwork(env, site_caps=topology.site_caps, solver=flow_solver)
            if bandwidth_model == "fair"
            else None
        )
        self.stats = NetworkStats()
        # Observability: category flags cached as plain booleans (the
        # tracer must already be attached to env -- see
        # Environment.attach_tracer).  WAN transfer/RPC events live
        # under "network"; interval spans under "span".
        tr = getattr(env, "tracer", None) or NULL_TRACER
        self._tracer = tr
        self._trace_net = tr.enabled and tr.wants("network")
        self._trace_span = tr.enabled and tr.wants("span")
        self._h_transfer = (
            tr.metrics.histogram("network.transfer_latency_s")
            if self._trace_net
            else None
        )
        self._h_rpc = (
            tr.metrics.histogram("network.rpc_latency_s")
            if self._trace_net
            else None
        )

    # -- delay model --------------------------------------------------------

    def _route(self, src: str, dst: str) -> Tuple[Any, str]:
        """Cached ``(LinkSpec, distance-class name)`` for a site pair."""
        key = (src, dst)
        route = self._routes.get(key)
        if route is None:
            route = (
                self.topology.link(src, dst),
                self.topology.distance(src, dst).name,
            )
            self._routes[key] = route
        return route

    def expected_one_way_delay(
        self, src: str, dst: str, size: int = 0
    ) -> float:
        """Jitter-free expected one-way delay at an *unloaded* link.

        A pure estimator: consumes no randomness and ignores current
        contention (see :meth:`estimated_transfer_time` for a load-aware
        variant).
        """
        link = self._route(src, dst)[0]
        delay = link.latency + self.PER_MESSAGE_OVERHEAD
        if size > 0:
            delay += size / link.bandwidth
        return delay

    def one_way_delay(self, src: str, dst: str, size: int = 0) -> float:
        """Sample the one-way delay for a message of ``size`` bytes.

        Draws from the network RNG stream when the link has jitter; use
        the ``expected_*`` estimators for planning.
        """
        route = self._routes.get((src, dst))
        link = route[0] if route is not None else self._route(src, dst)[0]
        delay = link.latency + self.PER_MESSAGE_OVERHEAD
        if size > 0:
            delay += size / link.bandwidth
        if link.jitter > 0:
            delay += max(0.0, self.rng.normal(0.0, link.jitter))
        return delay

    def _jitter(self, link) -> float:
        if link.jitter <= 0:
            return 0.0
        # Truncated normal: latency noise can only add, never make the
        # speed of light faster.
        return max(0.0, self.rng.normal(0.0, link.jitter))

    def round_trip(self, src: str, dst: str) -> float:
        """Expected request/response latency for an empty payload.

        Jitter-free planning estimator: calling it does **not** consume
        the network RNG stream, so planners can probe it freely without
        perturbing subsequent network noise (run-to-run comparability).
        """
        return self.expected_one_way_delay(src, dst) + self.expected_one_way_delay(
            dst, src
        )

    def estimated_transfer_time(
        self, src: str, dst: str, size: int = 0, weight: float = 1.0
    ) -> float:
        """Expected delivery time of ``size`` bytes *given current load*.

        Under the fair model the transmission term uses the fair share a
        new flow of ``weight`` would receive right now; under the slot
        model it is the plain full-bandwidth figure.  Jitter-free,
        RNG-untouched.
        """
        if size <= 0 or src == dst or self.bandwidth_model != "fair":
            return self.expected_one_way_delay(src, dst, size)
        link = self._route(src, dst)[0]
        rate = self.flow_net.estimate_rate(
            src, dst,
            capacity=link.bandwidth,
            max_flow_rate=link.max_flow_rate,
            weight=weight,
        )
        # A site in an outage window delays new flows until it recovers.
        down = max(
            self.flow_net.down_remaining(src),
            self.flow_net.down_remaining(dst),
        )
        return down + link.latency + self.PER_MESSAGE_OVERHEAD + size / rate

    # -- link state ---------------------------------------------------------

    def _slots(self, src: str, dst: str) -> Optional[Resource]:
        if src == dst:
            return None
        key = (src, dst)
        if key not in self._link_slots:
            self._link_slots[key] = Resource(
                self.env, capacity=self.link_concurrency
            )
        return self._link_slots[key]

    def _flow_link(self, src: str, dst: str) -> FairShareLink:
        spec = self._route(src, dst)[0]
        return self.flow_net.link(
            src,
            dst,
            capacity=spec.bandwidth,
            max_flow_rate=spec.max_flow_rate,
        )

    # -- fault surface (fair model) ----------------------------------------

    def abort_site_flows(self, site: str, duration: float = 0.0) -> int:
        """Tear down in-flight fair flows through ``site``; mark it down.

        Fault injectors call this when a whole site fails.  Waiters of
        the aborted flows see :class:`~repro.cloud.flow.FlowAborted`;
        new transfers touching the site wait out the remaining
        ``duration`` before transmitting.  No-op (returns 0) under the
        slot model, whose outages are modeled at the registry instead.
        """
        self.topology.get(site)  # validate the site name
        if self.flow_net is None:
            return 0
        return self.flow_net.site_outage(site, duration)

    def abort_region_flows(
        self, sites: Iterable[str], duration: float = 0.0
    ) -> int:
        """Tear down fair flows through *all* ``sites`` in one batch.

        The correlated-failure form of :meth:`abort_site_flows`: every
        site is marked down for ``duration`` and all affected flows die
        in a single settle/re-solve pass, so surviving flows never see
        intermediate rates between the per-site teardowns.  No-op under
        the slot model.
        """
        names = sorted(set(sites))
        for site in names:
            self.topology.get(site)  # validate before mutating anything
        if self.flow_net is None or not names:
            return 0
        return self.flow_net.region_outage(names, duration)

    def flap_link(self, a: str, b: str, bidirectional: bool = True) -> int:
        """Abort in-flight fair flows on the ``a <-> b`` link(s)."""
        self.topology.get(a)
        self.topology.get(b)
        if self.flow_net is None:
            return 0
        return self.flow_net.flap_link(a, b, bidirectional=bidirectional)

    def count_retry(self, size: int) -> None:
        """Account one transfer re-issued after an abort (storage layer)."""
        self.stats.retried_transfers += 1
        self.stats.retried_bytes += size
        if self._trace_net:
            self._tracer.emit("network", "transfer_retry", size=size)

    # -- primitives -----------------------------------------------------------

    def transfer(
        self,
        src: str,
        dst: str,
        size: int = 0,
        payload: Any = None,
        weight: float = 1.0,
        retry_on_abort: bool = False,
        span_parent=None,
    ) -> Generator:
        """Process: move ``size`` bytes from ``src`` to ``dst``.

        ``span_parent`` optionally links this transfer's trace span
        under a caller-owned span (RPC legs, staging phases); ignored
        when tracing is off.

        Yields until the message has fully arrived; returns the
        :class:`NetworkMessage` that was delivered.  Latency statistics
        account the full send-to-arrival interval.

        Fair model specifics: ``weight`` sets the flow's share at any
        shared bottleneck (weighted max-min); a transfer touching a site
        in an outage window first waits for the site to recover; and a
        mid-flight teardown (site outage, link flap) is accounted in
        ``aborted_transfers``/``aborted_bytes`` and then either
        retransmitted here (``retry_on_abort=True`` -- the
        connection-retrying client behaviour RPC legs rely on, since the
        source of an RPC cannot be re-chosen) or re-raised as
        :class:`~repro.cloud.flow.FlowAborted` to callers that can
        re-source, like the storage layer.
        """
        msg = NetworkMessage(src, dst, size, payload, sent_at=self.env.now)
        # Inter-site traffic only: local messages dominate event volume
        # and carry no WAN signal.
        trace = self._trace_net and src != dst
        if trace:
            self._tracer.emit(
                "network", "transfer_open", src=src, dst=dst, size=size
            )
        sp = (
            self._tracer.span(
                "transfer", parent=span_parent, src=src, dst=dst, size=size
            )
            if self._trace_span and src != dst
            else None
        )
        if self._fair and src != dst and size > 0:
            while True:
                # A down endpoint queues the transfer until recovery
                # (the behaviour of a connection-retrying client).
                while True:
                    down = max(
                        self.flow_net.down_remaining(src),
                        self.flow_net.down_remaining(dst),
                    )
                    if down <= 0:
                        break
                    yield self.env.timeout(down)
                # Transmission at the link's max-min fair share, then
                # propagation (+ jitter): the last byte arrives one link
                # latency after it was transmitted.
                flow = self._flow_link(src, dst).open(size, weight=weight)
                try:
                    yield flow.done
                except FlowAborted:
                    self.stats.aborted_transfers += 1
                    self.stats.aborted_bytes += flow.remaining
                    if trace:
                        self._tracer.emit(
                            "network", "transfer_abort",
                            src=src, dst=dst, remaining=flow.remaining,
                        )
                    if not retry_on_abort:
                        if sp is not None:
                            sp.finish(aborted=True)
                        raise
                    self.count_retry(size)
                    continue
                break
            link = self._route(src, dst)[0]
            yield Timeout(
                self.env,
                link.latency + self.PER_MESSAGE_OVERHEAD + self._jitter(link),
            )
        else:
            slots = self._slots(src, dst)
            if slots is None:
                yield Timeout(self.env, self.one_way_delay(src, dst, size))
            else:
                req = slots.try_acquire()
                if req is not None:
                    # Uncontended link: slot claimed synchronously, pay
                    # only the transmission timeout.
                    try:
                        yield Timeout(
                            self.env, self.one_way_delay(src, dst, size)
                        )
                    finally:
                        slots._release(req)
                else:
                    with slots.request() as req:
                        yield req
                        # Sample the delay only once the slot is held:
                        # the draw order still follows the FIFO grant
                        # order, but the sampled jitter now belongs to
                        # the actual transmission, not the enqueue
                        # instant.
                        yield Timeout(
                            self.env, self.one_way_delay(src, dst, size)
                        )
        # Inlined _account: transfer is the only caller and runs hot.
        stats = self.stats
        stats.messages += 1
        stats.bytes += size
        stats.total_latency += self.env.now - msg.sent_at
        route = self._routes.get((src, dst))
        dist = route[1] if route is not None else self._route(src, dst)[1]
        if dist == "LOCAL":
            stats.local_messages += 1
        elif dist == "SAME_REGION":
            stats.same_region_messages += 1
        else:
            stats.geo_distant_messages += 1
        if trace:
            latency = self.env.now - msg.sent_at
            self._tracer.emit(
                "network", "transfer_done",
                src=src, dst=dst, size=size, latency=latency,
            )
            self._h_transfer.add(latency)
        if sp is not None:
            sp.finish()
        return msg

    def rpc(
        self,
        src: str,
        dst: str,
        service: "Generator | Any",
        request_size: int = 256,
        response_size: int = 256,
    ) -> Generator:
        """Process: request/response round trip with remote service work.

        ``service`` is either a generator (simulated server-side work,
        e.g. queuing at the registry and paying service time) whose return
        value becomes the RPC result, or a plain callable evaluated at the
        server.  Local calls (``src == dst``) still pay the (tiny) local
        link latency both ways -- clients and registries are distinct VMs
        even within one site.  Under the fair model both legs ride flows
        at the network's ``rpc_weight`` (metadata hot-path priority) and
        retransmit on fault teardown -- an RPC's endpoints are fixed, so
        unlike a storage fetch it cannot re-source around a failure.
        """
        trace = self._trace_net
        sp = (
            self._tracer.span("rpc", src=src, dst=dst)
            if self._trace_span
            else None
        )
        t0 = self.env.now
        # Request leg.
        yield from self.transfer(
            src, dst, request_size,
            weight=self.rpc_weight, retry_on_abort=True, span_parent=sp,
        )
        t1 = self.env.now
        # Server-side processing.
        if hasattr(service, "send"):
            result = yield from service
        elif callable(service):
            result = service()
        else:
            result = service
        t2 = self.env.now
        # Response leg.
        yield from self.transfer(
            dst, src, response_size,
            weight=self.rpc_weight, retry_on_abort=True, span_parent=sp,
        )
        if trace:
            t3 = self.env.now
            self._tracer.emit(
                "network", "rpc",
                src=src, dst=dst,
                request_s=t1 - t0, service_s=t2 - t1, response_s=t3 - t2,
            )
            self._h_rpc.add(t3 - t0)
        if sp is not None:
            sp.finish(request_s=t1 - t0, service_s=t2 - t1)
        return result

    def reset_stats(self) -> None:
        self.stats = NetworkStats()
