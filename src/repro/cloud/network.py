"""WAN/LAN network model: latency, bandwidth and request/response RPC.

Every message between two sites pays:

``delay = base_latency + jitter + size / bandwidth``

where ``base_latency`` comes from the topology's link spec and jitter is
a truncated-normal perturbation drawn from a dedicated RNG stream (so
network noise never disturbs workload generation).  Inter-DC links also
have bounded *concurrency*: a limited number of in-flight transfers
share the link, which is what makes a hammered centralized registry's
ingress a real bottleneck rather than an infinitely parallel pipe.

Two interaction styles are offered:

- :meth:`Network.transfer` -- fire a one-way message / bulk transfer and
  wait for its arrival (used by the storage layer and lazy metadata
  propagation);
- :meth:`Network.rpc` -- request/response round trip with a server-side
  service callback (used by metadata registry clients).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, Optional, Tuple

from repro.sim import Environment, Resource
from repro.cloud.topology import CloudTopology
from repro.util.rng import RngStreams

__all__ = ["Network", "NetworkMessage", "NetworkStats", "RpcError"]


class RpcError(Exception):
    """Raised to RPC callers when the remote service fails the request."""


@dataclass
class NetworkMessage:
    """A message in flight between two sites (metadata op, file chunk...)."""

    src: str
    dst: str
    size: int  # bytes
    payload: Any = None
    sent_at: float = 0.0


@dataclass
class NetworkStats:
    """Aggregate transfer statistics, broken down by distance class."""

    messages: int = 0
    bytes: int = 0
    local_messages: int = 0
    same_region_messages: int = 0
    geo_distant_messages: int = 0
    total_latency: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "messages": self.messages,
            "bytes": self.bytes,
            "local_messages": self.local_messages,
            "same_region_messages": self.same_region_messages,
            "geo_distant_messages": self.geo_distant_messages,
            "total_latency": self.total_latency,
        }


class Network:
    """Latency/bandwidth network over a :class:`CloudTopology`.

    Parameters
    ----------
    env:
        Simulation environment.
    topology:
        Site layout and link specs.
    rng:
        Stream registry; the network uses the ``"network"`` stream.
    link_concurrency:
        Max concurrent transfers per directed inter-DC link pair.  Local
        (intra-DC) traffic is not capped: the paper's bottlenecks are WAN
        links and registry service capacity, not top-of-rack switches.
    """

    #: Per-message fixed processing overhead (serialization, NIC), seconds.
    PER_MESSAGE_OVERHEAD = 50e-6

    def __init__(
        self,
        env: Environment,
        topology: CloudTopology,
        rng: Optional[RngStreams] = None,
        link_concurrency: int = 64,
    ):
        self.env = env
        self.topology = topology
        self.rng = (rng or RngStreams(seed=0)).get("network")
        self.link_concurrency = link_concurrency
        self._link_slots: Dict[Tuple[str, str], Resource] = {}
        self.stats = NetworkStats()

    # -- delay model --------------------------------------------------------

    def one_way_delay(self, src: str, dst: str, size: int = 0) -> float:
        """Sample the one-way delay for a message of ``size`` bytes."""
        link = self.topology.link(src, dst)
        delay = link.latency + self.PER_MESSAGE_OVERHEAD
        if size > 0:
            delay += size / link.bandwidth
        if link.jitter > 0:
            # Truncated normal: latency noise can only add, never make the
            # speed of light faster.
            noise = self.rng.normal(0.0, link.jitter)
            delay += max(0.0, noise)
        return delay

    def round_trip(self, src: str, dst: str) -> float:
        """Expected request/response latency for an empty payload."""
        return self.one_way_delay(src, dst) + self.one_way_delay(dst, src)

    def _slots(self, src: str, dst: str) -> Optional[Resource]:
        if src == dst:
            return None
        key = (src, dst)
        if key not in self._link_slots:
            self._link_slots[key] = Resource(
                self.env, capacity=self.link_concurrency
            )
        return self._link_slots[key]

    def _account(self, src: str, dst: str, size: int, delay: float) -> None:
        self.stats.messages += 1
        self.stats.bytes += size
        self.stats.total_latency += delay
        dist = self.topology.distance(src, dst)
        if dist.name == "LOCAL":
            self.stats.local_messages += 1
        elif dist.name == "SAME_REGION":
            self.stats.same_region_messages += 1
        else:
            self.stats.geo_distant_messages += 1

    # -- primitives -----------------------------------------------------------

    def transfer(
        self, src: str, dst: str, size: int = 0, payload: Any = None
    ) -> Generator:
        """Process: move ``size`` bytes from ``src`` to ``dst``.

        Yields until the message has fully arrived; returns the
        :class:`NetworkMessage` that was delivered.
        """
        msg = NetworkMessage(src, dst, size, payload, sent_at=self.env.now)
        slots = self._slots(src, dst)
        delay = self.one_way_delay(src, dst, size)
        if slots is None:
            yield self.env.timeout(delay)
        else:
            with slots.request() as req:
                yield req
                yield self.env.timeout(delay)
        self._account(src, dst, size, delay)
        return msg

    def rpc(
        self,
        src: str,
        dst: str,
        service: "Generator | Any",
        request_size: int = 256,
        response_size: int = 256,
    ) -> Generator:
        """Process: request/response round trip with remote service work.

        ``service`` is either a generator (simulated server-side work,
        e.g. queuing at the registry and paying service time) whose return
        value becomes the RPC result, or a plain callable evaluated at the
        server.  Local calls (``src == dst``) still pay the (tiny) local
        link latency both ways -- clients and registries are distinct VMs
        even within one site.
        """
        # Request leg.
        yield from self.transfer(src, dst, request_size)
        # Server-side processing.
        if hasattr(service, "send"):
            result = yield from service
        elif callable(service):
            result = service()
        else:
            result = service
        # Response leg.
        yield from self.transfer(dst, src, response_size)
        return result

    def reset_stats(self) -> None:
        self.stats = NetworkStats()
