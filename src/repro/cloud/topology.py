"""Datacenters, regions and the inter-site distance taxonomy.

Terminology follows Section IV of the paper:

- **local**: node and registry in the same datacenter;
- **same-region**: different datacenters of the same geographic region;
- **geo-distant**: datacenters in different geographic regions.

A :class:`CloudTopology` owns the set of datacenters and the symmetric
one-way latency matrix between them.  Latencies are *model inputs*
calibrated against the paper's Figure 1 (see ``repro.cloud.presets``).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.util.units import MB

__all__ = [
    "CloudTopology",
    "Datacenter",
    "Distance",
    "Region",
    "SiteSpec",
]


class Distance(enum.Enum):
    """Physical-distance class between two datacenters (paper Section IV)."""

    LOCAL = "local"
    SAME_REGION = "same-region"
    GEO_DISTANT = "geo-distant"

    @property
    def is_remote(self) -> bool:
        """Both same-region and geo-distant count as *remote* scenarios."""
        return self is not Distance.LOCAL


@dataclass(frozen=True)
class Region:
    """A geographic region grouping datacenters (e.g. Europe, US)."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass
class SiteSpec:
    """Aggregate WAN capacity of one site's uplink.

    A site talks to every other site through one physical uplink, so the
    *sum* of its concurrent outbound (egress) and inbound (ingress) WAN
    traffic is capped regardless of how many distinct inter-DC links it
    participates in.  Only the flow-level fair-share bandwidth model
    (``bandwidth_model="fair"``) enforces these caps; ``inf`` (the
    default) disables them.  Units: bytes/second, like every bandwidth
    figure in this repo.
    """

    egress_bw: float = math.inf
    ingress_bw: float = math.inf

    def validate(self) -> None:
        if self.egress_bw <= 0 or self.ingress_bw <= 0:
            raise ValueError(
                "site egress/ingress caps must be positive "
                f"(got egress={self.egress_bw}, ingress={self.ingress_bw})"
            )


@dataclass
class Datacenter:
    """A cloud site: the largest building block of the cloud.

    Attributes
    ----------
    name:
        Unique site identifier (e.g. ``"west-europe"``).
    region:
        Geographic region the site belongs to.
    core_limit:
        Per-deployment core cap (Azure enforced 300 cores/deployment at
        the time of the paper -- one of the stated reasons workflows
        *must* go multi-site).
    spec:
        Aggregate egress/ingress WAN caps of the site's uplink
        (:class:`SiteSpec`); uncapped by default.
    """

    name: str
    region: Region
    core_limit: int = 300
    index: int = -1  # assigned by CloudTopology
    spec: SiteSpec = field(default_factory=SiteSpec)

    @property
    def egress_bw(self) -> float:
        return self.spec.egress_bw

    @property
    def ingress_bw(self) -> float:
        return self.spec.ingress_bw

    def distance_to(self, other: "Datacenter") -> Distance:
        """Classify the distance to another datacenter."""
        if self.name == other.name:
            return Distance.LOCAL
        if self.region == other.region:
            return Distance.SAME_REGION
        return Distance.GEO_DISTANT

    def __hash__(self) -> int:
        return hash(self.name)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Datacenter) and other.name == self.name

    def __repr__(self) -> str:
        return f"<Datacenter {self.name} ({self.region})>"


@dataclass
class LinkSpec:
    """Latency/bandwidth parameters of one directed inter-DC link.

    ``bandwidth`` is the link's total capacity.  Under the slot
    bandwidth model every in-flight transfer gets the full figure; under
    the flow-level fair-share model (``bandwidth_model="fair"``) all
    active flows split it max-min fairly.  ``max_flow_rate`` optionally
    caps a *single* flow's share (e.g. per-connection TCP or NIC limits)
    and only matters to the fair model.
    """

    latency: float  # one-way propagation latency, seconds
    bandwidth: float = 100 * MB  # bytes/second
    jitter: float = 0.0  # std-dev of lognormal-ish latency noise, seconds
    max_flow_rate: float = float("inf")  # per-flow cap, bytes/second


class CloudTopology:
    """The set of datacenters plus the pairwise link model.

    The latency matrix is symmetric by construction (``set_link`` sets
    both directions unless told otherwise), matching the paper's
    treatment of inter-DC distance as an undirected property.
    """

    def __init__(self, datacenters: Iterable[Datacenter]):
        self.datacenters: List[Datacenter] = list(datacenters)
        if not self.datacenters:
            raise ValueError("Topology needs at least one datacenter")
        names = [dc.name for dc in self.datacenters]
        if len(set(names)) != len(names):
            raise ValueError(f"Duplicate datacenter names in {names}")
        self._by_name: Dict[str, Datacenter] = {}
        for i, dc in enumerate(self.datacenters):
            dc.index = i
            self._by_name[dc.name] = dc
        self._links: Dict[Tuple[str, str], LinkSpec] = {}
        # Sensible default for intra-DC "links" (LAN): sub-millisecond.
        self.local_link = LinkSpec(latency=0.0005, bandwidth=1000 * MB)

    # -- construction -------------------------------------------------------

    def set_link(
        self,
        a: str,
        b: str,
        latency: float,
        bandwidth: float = 100 * MB,
        jitter: float = 0.0,
        symmetric: bool = True,
        max_flow_rate: float = float("inf"),
    ) -> None:
        """Define the WAN link between sites ``a`` and ``b``."""
        if a not in self._by_name or b not in self._by_name:
            raise KeyError(f"Unknown datacenter in link {a!r}-{b!r}")
        if a == b:
            raise ValueError("Use 'local_link' for intra-DC latency")
        if latency < 0 or bandwidth <= 0:
            raise ValueError("latency must be >=0 and bandwidth > 0")
        if max_flow_rate <= 0:
            raise ValueError("max_flow_rate must be positive")
        self._links[(a, b)] = LinkSpec(latency, bandwidth, jitter, max_flow_rate)
        if symmetric:
            self._links[(b, a)] = LinkSpec(
                latency, bandwidth, jitter, max_flow_rate
            )

    def set_site_caps(
        self,
        name: str,
        egress_bw: Optional[float] = None,
        ingress_bw: Optional[float] = None,
    ) -> None:
        """Cap a site's aggregate WAN egress/ingress (bytes/second).

        ``None`` leaves the corresponding cap unchanged; pass
        ``math.inf`` to lift one.  Enforced only by the flow-level
        fair-share bandwidth model, which consults the caps live -- a
        change takes effect at the next rebalance.
        """
        spec = self.get(name).spec
        if egress_bw is not None:
            spec.egress_bw = float(egress_bw)
        if ingress_bw is not None:
            spec.ingress_bw = float(ingress_bw)
        spec.validate()

    def site_caps(self, name: str) -> Tuple[float, float]:
        """The ``(egress, ingress)`` caps of a site, bytes/second."""
        spec = self.get(name).spec
        return (spec.egress_bw, spec.ingress_bw)

    def copy(self) -> "CloudTopology":
        """An independent deep copy of this topology.

        Deployments, fault injectors and ``set_site_caps`` all edit a
        topology *in place* (latency spikes, egress/ingress caps), so
        handing one object to several runs leaks state between them.
        Copying gives each run its own datacenters, site caps and link
        specs -- mutate one side freely, the other never notices.
        """
        clone = CloudTopology(
            Datacenter(
                dc.name,
                dc.region,
                core_limit=dc.core_limit,
                spec=SiteSpec(dc.spec.egress_bw, dc.spec.ingress_bw),
            )
            for dc in self.datacenters
        )
        clone._links = {
            pair: LinkSpec(
                link.latency, link.bandwidth, link.jitter, link.max_flow_rate
            )
            for pair, link in self._links.items()
        }
        ll = self.local_link
        clone.local_link = LinkSpec(
            ll.latency, ll.bandwidth, ll.jitter, ll.max_flow_rate
        )
        return clone

    # -- lookup --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.datacenters)

    def __iter__(self):
        return iter(self.datacenters)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def get(self, name: str) -> Datacenter:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(
                f"Unknown datacenter {name!r}; have {sorted(self._by_name)}"
            ) from None

    def link(self, src: str, dst: str) -> LinkSpec:
        """The link spec between two sites (local link if same site)."""
        if src == dst:
            return self.local_link
        try:
            return self._links[(src, dst)]
        except KeyError:
            raise KeyError(
                f"No link defined between {src!r} and {dst!r}"
            ) from None

    def latency(self, src: str, dst: str) -> float:
        """One-way base latency between two sites, seconds."""
        return self.link(src, dst).latency

    def distance(self, src: str, dst: str) -> Distance:
        return self.get(src).distance_to(self.get(dst))

    def sites_in_region(self, region: str) -> List[str]:
        """Names of every datacenter whose region tag is ``region``.

        The resolution used by correlated-failure injectors
        (:class:`~repro.cloud.faults.RegionOutage`): a region-wide
        event touches all of these sites at once.  Raises ``KeyError``
        for a region no datacenter belongs to (a silent empty set would
        make a typo'd fault injection a no-op).
        """
        names = [
            dc.name for dc in self.datacenters if dc.region.name == region
        ]
        if not names:
            regions = sorted({dc.region.name for dc in self.datacenters})
            raise KeyError(
                f"Unknown region {region!r}; have {regions}"
            )
        return names

    def validate(self) -> None:
        """Check every inter-DC pair has a link (raises otherwise)."""
        missing = [
            (a.name, b.name)
            for a in self.datacenters
            for b in self.datacenters
            if a.name != b.name and (a.name, b.name) not in self._links
        ]
        if missing:
            raise ValueError(f"Missing links: {missing}")

    # -- site centrality (Section VI-B, Fig. 6 discussion) -------------------

    def centrality(self, name: str) -> float:
        """Average one-way latency from ``name`` to all other sites.

        The paper defines a site's *centrality* as the average distance
        from it to the rest of the datacenters, and observes that the
        best decentralized performance occurs at the most central site.
        Lower value = more central.
        """
        others = [dc for dc in self.datacenters if dc.name != name]
        if not others:
            return 0.0
        return sum(self.latency(name, o.name) for o in others) / len(others)

    def most_central(self) -> Datacenter:
        """The datacenter with the lowest average latency to the others."""
        return min(self.datacenters, key=lambda dc: self.centrality(dc.name))

    def least_central(self) -> Datacenter:
        return max(self.datacenters, key=lambda dc: self.centrality(dc.name))

    def __repr__(self) -> str:
        return f"<CloudTopology {[dc.name for dc in self.datacenters]}>"
