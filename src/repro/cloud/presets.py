"""Calibrated topology presets, including the paper's Azure testbed.

The evaluation testbed (Section VI-A) consisted of four Azure
datacenters: North Europe (Ireland), West Europe (Netherlands), South
Central US (Texas) and East US (Virginia), using Small VMs (1 core,
1.75 GB).

One-way latencies below are calibrated to reproduce the *shape* of the
paper's Figure 1 (local << same-region << geo-distant; remote metadata
ops up to ~50x local, Section IV-D) and the site-centrality ordering of
Section VI-B: East US is the most central site and South Central US the
least central.  Absolute values are representative 2015-era inter-region
RTTs halved to one-way figures.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.cloud.topology import CloudTopology, Datacenter, Region
from repro.cloud.vm import VMSize
from repro.util.units import GB, MB

__all__ = [
    "AZURE_4DC",
    "AZURE_SMALL_VM",
    "EUROPE",
    "US",
    "HETERO_FANOUT_SITES",
    "azure_4dc_topology",
    "heterogeneous_fanout_topology",
    "make_topology",
]

EUROPE = Region("europe")
US = Region("us")

#: Azure "Small" instance: 1 core, 1.75 GB (Section VI-A).
AZURE_SMALL_VM = VMSize("small", cores=1, memory=int(1.75 * GB))

#: Site names of the 4-DC testbed, in a stable order.
AZURE_4DC: Tuple[str, ...] = (
    "west-europe",
    "north-europe",
    "east-us",
    "south-central-us",
)

# One-way latency (seconds) between each site pair.  Same-region pairs
# (EU-EU, US-US) sit an order of magnitude above local (~0.5 ms) and the
# transatlantic pairs another ~4-6x above that.
_AZURE_LATENCY: Dict[Tuple[str, str], float] = {
    ("west-europe", "north-europe"): 0.010,
    ("east-us", "south-central-us"): 0.018,
    ("west-europe", "east-us"): 0.040,
    ("north-europe", "east-us"): 0.042,
    ("west-europe", "south-central-us"): 0.058,
    ("north-europe", "south-central-us"): 0.060,
}

#: Inter-DC WAN bandwidth (bytes/s); intra-DC uses the topology default.
_AZURE_WAN_BANDWIDTH = 50 * MB

#: Latency jitter std-dev as a fraction of the base latency.
_AZURE_JITTER_FRACTION = 0.05


def azure_4dc_topology(
    jitter: bool = True,
    wan_bandwidth: float = _AZURE_WAN_BANDWIDTH,
    site_egress_bw: Optional[float] = None,
    site_ingress_bw: Optional[float] = None,
) -> CloudTopology:
    """The paper's 4-datacenter Azure testbed.

    ``site_egress_bw``/``site_ingress_bw`` optionally cap every site's
    aggregate WAN uplink (bytes/s; enforced by the fair bandwidth model
    only).

    >>> topo = azure_4dc_topology()
    >>> topo.distance("west-europe", "north-europe").value
    'same-region'
    >>> topo.most_central().name
    'east-us'
    """
    dcs = [
        Datacenter("west-europe", EUROPE),
        Datacenter("north-europe", EUROPE),
        Datacenter("east-us", US),
        Datacenter("south-central-us", US),
    ]
    topo = CloudTopology(dcs)
    for (a, b), lat in _AZURE_LATENCY.items():
        topo.set_link(
            a,
            b,
            latency=lat,
            bandwidth=wan_bandwidth,
            jitter=lat * _AZURE_JITTER_FRACTION if jitter else 0.0,
        )
    if site_egress_bw is not None or site_ingress_bw is not None:
        for dc in dcs:
            topo.set_site_caps(
                dc.name,
                egress_bw=site_egress_bw,
                ingress_bw=site_ingress_bw,
            )
    topo.validate()
    return topo


#: Site names of the heterogeneous fan-out testbed, in a stable order.
#: ``hub`` holds the data; ``thin`` is *near but narrow* (the trap a
#: latency-ordered spill walks into), ``fat-a``/``fat-b`` are *far but
#: wide*.
HETERO_FANOUT_SITES: Tuple[str, ...] = ("hub", "thin", "fat-a", "fat-b")


def heterogeneous_fanout_topology(
    thin_bandwidth: float = 4 * MB,
    fat_bandwidth: float = 50 * MB,
    hub_egress_bw: Optional[float] = None,
    cross_bandwidth: float = 25 * MB,
) -> CloudTopology:
    """A 4-site WAN where proximity and capacity disagree.

    The scheduler-comparison scenario (``docs/scheduling.md``): ``hub``
    produces the data; its *nearest* neighbour ``thin`` (5 ms) sits
    behind a narrow ``thin_bandwidth`` pipe, while the *distant*
    ``fat-a``/``fat-b`` (40 ms) enjoy ``fat_bandwidth`` links.  A
    latency-ordered spill (the locality policy) drags bulk inputs over
    the thin pipe; bandwidth-aware placement routes around it.
    ``hub_egress_bw`` optionally caps the hub's aggregate egress
    (enforced by the fair bandwidth model only), making the fan-out
    congestion hierarchical.  Deterministic: no jitter.

    >>> topo = heterogeneous_fanout_topology()
    >>> topo.latency("hub", "thin") < topo.latency("hub", "fat-a")
    True
    >>> topo.link("hub", "thin").bandwidth < topo.link("hub", "fat-a").bandwidth
    True
    """
    region = Region("hetero")
    dcs = [Datacenter(name, region) for name in HETERO_FANOUT_SITES]
    topo = CloudTopology(dcs)
    topo.set_link("hub", "thin", latency=0.005, bandwidth=thin_bandwidth)
    topo.set_link("hub", "fat-a", latency=0.040, bandwidth=fat_bandwidth)
    topo.set_link("hub", "fat-b", latency=0.045, bandwidth=fat_bandwidth)
    topo.set_link("thin", "fat-a", latency=0.042, bandwidth=cross_bandwidth)
    topo.set_link("thin", "fat-b", latency=0.047, bandwidth=cross_bandwidth)
    topo.set_link("fat-a", "fat-b", latency=0.012, bandwidth=cross_bandwidth)
    if hub_egress_bw is not None:
        topo.set_site_caps("hub", egress_bw=hub_egress_bw)
    topo.validate()
    return topo


def make_topology(
    sites: Sequence[str],
    regions: Optional[Dict[str, str]] = None,
    same_region_latency: float = 0.010,
    geo_distant_latency: float = 0.050,
    wan_bandwidth: float = _AZURE_WAN_BANDWIDTH,
    jitter_fraction: float = 0.0,
) -> CloudTopology:
    """Build a synthetic topology with uniform latency classes.

    Parameters
    ----------
    sites:
        Site names.
    regions:
        Optional mapping site -> region name; sites without an entry get
        their own singleton region (hence all pairs geo-distant).
    """
    if not sites:
        raise ValueError("need at least one site")
    regions = regions or {}
    region_objs: Dict[str, Region] = {}

    def region_of(site: str) -> Region:
        rname = regions.get(site, f"region-{site}")
        if rname not in region_objs:
            region_objs[rname] = Region(rname)
        return region_objs[rname]

    dcs = [Datacenter(name, region_of(name)) for name in sites]
    topo = CloudTopology(dcs)
    for i, a in enumerate(dcs):
        for b in dcs[i + 1 :]:
            lat = (
                same_region_latency
                if a.region == b.region
                else geo_distant_latency
            )
            topo.set_link(
                a.name,
                b.name,
                latency=lat,
                bandwidth=wan_bandwidth,
                jitter=lat * jitter_fraction,
            )
    topo.validate()
    return topo
