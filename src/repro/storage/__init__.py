"""Storage substrate: per-site file stores and inter-site transfers.

Workflow tasks exchange data through files on shared intermediate
storage co-deployed with the application (the TomusBlobs-style setup the
paper builds on).  Metadata (file -> locations) lives in the metadata
service; this package holds the *data* side: which bytes exist at which
site, and the cost of moving them.
"""

from repro.storage.filestore import FileStore, StoredFile
from repro.storage.transfer import TransferService

__all__ = ["FileStore", "StoredFile", "TransferService"]
