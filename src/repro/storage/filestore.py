"""Per-site file stores.

A :class:`FileStore` tracks the files materialized at one datacenter.
It is a bookkeeping structure (contents are sizes, not bytes); transfer
*time* is charged by :class:`~repro.storage.transfer.TransferService`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional

__all__ = ["FileStore", "StoredFile"]


@dataclass(frozen=True)
class StoredFile:
    """One file resident at one site."""

    name: str
    size: int  # bytes
    created_at: float = 0.0
    producer: str = ""  # task id that wrote it

    def __post_init__(self):
        if not self.name:
            raise ValueError("file name must be non-empty")
        if self.size < 0:
            raise ValueError("file size must be >= 0")


class FileStore:
    """The files present at one site, keyed by name."""

    def __init__(self, site: str):
        self.site = site
        self._files: Dict[str, StoredFile] = {}
        self.bytes_written = 0
        self.bytes_read = 0

    def put(self, file: StoredFile) -> None:
        """Materialize a file at this site (idempotent by name)."""
        if file.name not in self._files:
            self.bytes_written += file.size
        self._files[file.name] = file

    def get(self, name: str) -> Optional[StoredFile]:
        f = self._files.get(name)
        if f is not None:
            self.bytes_read += f.size
        return f

    def peek(self, name: str) -> Optional[StoredFile]:
        """Like :meth:`get` but without read accounting (planning only)."""
        return self._files.get(name)

    def has(self, name: str) -> bool:
        return name in self._files

    def delete(self, name: str) -> bool:
        return self._files.pop(name, None) is not None

    @property
    def total_bytes(self) -> int:
        return sum(f.size for f in self._files.values())

    def __len__(self) -> int:
        return len(self._files)

    def __contains__(self, name: str) -> bool:
        return name in self._files

    def __iter__(self) -> Iterator[StoredFile]:
        return iter(self._files.values())

    def __repr__(self) -> str:
        return f"<FileStore {self.site} files={len(self)}>"
