"""Inter-site data movement.

The transfer service owns one :class:`FileStore` per site and moves file
contents over the deployment's network, paying latency plus
size/bandwidth.  It also keeps the statistics the data-provisioning
discussion of the paper cares about: how many bytes crossed WAN links
and how much task time was spent waiting on transfers.

Under the flow-level fair-share bandwidth model the service is also the
resilience boundary: a transfer torn down mid-flight (site outage, link
flap raises :class:`~repro.cloud.flow.FlowAborted`) is retried from the
next-best source -- the failed source is excluded when an alternative
holds the file -- and every re-issue is accounted both here
(:attr:`TransferService.retries`) and in the network's
``retried_transfers``/``retried_bytes`` counters.
"""

from __future__ import annotations

from typing import Dict, Generator, Iterable, List, Optional

from repro.sim import Environment
from repro.cloud.flow import FlowAborted
from repro.cloud.network import Network
from repro.storage.filestore import FileStore, StoredFile

__all__ = ["TransferService"]


class TransferError(Exception):
    """The requested file exists at no site the service knows about."""


class TransferService:
    """File placement plus fetch-to-site transfers.

    ``default_weight`` is the fair-model flow weight of bulk transfers
    issued by this service (see ``docs/network-model.md``);
    ``max_retries`` bounds how many times one fetch is re-issued after
    mid-flight aborts before giving up.
    """

    def __init__(
        self,
        env: Environment,
        network: Network,
        sites: Iterable[str],
        default_weight: float = 1.0,
        max_retries: int = 8,
    ):
        if default_weight <= 0:
            raise ValueError("default_weight must be positive")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        self.env = env
        self.network = network
        self.stores: Dict[str, FileStore] = {s: FileStore(s) for s in sites}
        self.default_weight = float(default_weight)
        self.max_retries = max_retries
        self.transfers = 0
        self.wan_bytes = 0
        self.transfer_wait = 0.0
        #: Fetches re-issued after a mid-flight abort (fair model).
        self.retries = 0

    def store(self, site: str, file: StoredFile) -> None:
        """Write a freshly produced file at ``site`` (local, instant)."""
        self._store_of(site).put(file)

    def locations_of(self, name: str) -> List[str]:
        """Sites currently holding ``name`` (data-side ground truth)."""
        return [s for s, store in self.stores.items() if store.has(name)]

    def fetch(
        self,
        name: str,
        to_site: str,
        known_locations: Optional[Iterable[str]] = None,
        weight: Optional[float] = None,
    ) -> Generator:
        """Process: ensure ``name`` is materialized at ``to_site``.

        ``known_locations`` normally comes from the metadata service
        (that is the whole point of the registry: learning where the
        data is without broadcasting).  Falls back to ground truth when
        omitted -- useful for tests.  Picks the closest source site by
        one-way latency; under the flow-level fair-share bandwidth model
        the choice is load-aware instead (expected delivery time given
        the current fair share on each candidate link -- including any
        remaining outage window at the candidate -- via the network's
        jitter-free estimator; planning never consumes network RNG).

        If the transfer is torn down mid-flight by a fault
        (:class:`~repro.cloud.flow.FlowAborted`), the fetch retries --
        excluding the failed source while other sites hold the file --
        until it succeeds or ``max_retries`` re-issues are exhausted.
        Returns the :class:`StoredFile`.
        """
        dst = self._store_of(to_site)
        existing = dst.get(name)
        if existing is not None:
            return existing

        weight = self.default_weight if weight is None else float(weight)
        # Materialize once: the retry loop re-reads it, and callers may
        # pass a one-shot iterable.
        known = list(known_locations) if known_locations is not None else None
        failed: set = set()
        attempts = 0
        while True:
            candidates = [
                s
                for s in (known or self.locations_of(name))
                if s in self.stores and self.stores[s].has(name)
            ]
            if not candidates:
                raise TransferError(f"file {name!r} not found at any site")
            # Prefer sources that have not failed this fetch yet; if
            # every holder failed once, allow them again (the fault may
            # have cleared -- e.g. a recovered outage).
            usable = [s for s in candidates if s not in failed] or candidates
            src_site = self._pick_source(usable, name, to_site, weight)
            file = self.stores[src_site].peek(name)
            assert file is not None  # guarded by candidates filter
            start = self.env.now
            try:
                yield from self.network.transfer(
                    src_site, to_site, file.size, weight=weight
                )
            except FlowAborted:
                self.transfer_wait += self.env.now - start
                if attempts >= self.max_retries:
                    raise TransferError(
                        f"fetch of {name!r} to {to_site!r} aborted "
                        f"{attempts + 1} times (faults); giving up"
                    )
                attempts += 1
                # Blame the source only when it (or the path) failed: a
                # destination-site outage says nothing about the source,
                # which usually remains the best choice after recovery.
                flow_net = self.network.flow_net
                dst_down = (
                    flow_net is not None
                    and flow_net.down_remaining(to_site) > 0
                )
                src_down = (
                    flow_net is not None
                    and flow_net.down_remaining(src_site) > 0
                )
                if src_down or not dst_down:
                    failed.add(src_site)
                self.retries += 1
                self.network.count_retry(file.size)
                continue
            self.stores[src_site].get(name)  # read accounting at the source
            self.transfers += 1
            self.transfer_wait += self.env.now - start
            if src_site != to_site:
                self.wan_bytes += file.size
            dst.put(file)
            return file

    def _pick_source(
        self, candidates: List[str], name: str, to_site: str, weight: float
    ) -> str:
        if self.network.bandwidth_model == "fair":
            # Estimate at the weight the transfer will actually use, so
            # planning matches the share the flow really receives.
            return min(
                candidates,
                key=lambda s: self.network.estimated_transfer_time(
                    s, to_site, self.stores[s].peek(name).size, weight=weight
                ),
            )
        return min(
            candidates,
            key=lambda s: self.network.topology.latency(s, to_site),
        )

    def _store_of(self, site: str) -> FileStore:
        try:
            return self.stores[site]
        except KeyError:
            raise KeyError(
                f"unknown site {site!r}; have {sorted(self.stores)}"
            ) from None

    def total_files(self) -> int:
        return sum(len(s) for s in self.stores.values())

    def __repr__(self) -> str:
        return f"<TransferService sites={sorted(self.stores)}>"
