"""Inter-site data movement.

The transfer service owns one :class:`FileStore` per site and moves file
contents over the deployment's network, paying latency plus
size/bandwidth.  It also keeps the statistics the data-provisioning
discussion of the paper cares about: how many bytes crossed WAN links
and how much task time was spent waiting on transfers.
"""

from __future__ import annotations

from typing import Dict, Generator, Iterable, List, Optional

from repro.sim import Environment
from repro.cloud.network import Network
from repro.storage.filestore import FileStore, StoredFile

__all__ = ["TransferService"]


class TransferError(Exception):
    """The requested file exists at no site the service knows about."""


class TransferService:
    """File placement plus fetch-to-site transfers."""

    def __init__(self, env: Environment, network: Network, sites: Iterable[str]):
        self.env = env
        self.network = network
        self.stores: Dict[str, FileStore] = {s: FileStore(s) for s in sites}
        self.transfers = 0
        self.wan_bytes = 0
        self.transfer_wait = 0.0

    def store(self, site: str, file: StoredFile) -> None:
        """Write a freshly produced file at ``site`` (local, instant)."""
        self._store_of(site).put(file)

    def locations_of(self, name: str) -> List[str]:
        """Sites currently holding ``name`` (data-side ground truth)."""
        return [s for s, store in self.stores.items() if store.has(name)]

    def fetch(
        self,
        name: str,
        to_site: str,
        known_locations: Optional[Iterable[str]] = None,
    ) -> Generator:
        """Process: ensure ``name`` is materialized at ``to_site``.

        ``known_locations`` normally comes from the metadata service
        (that is the whole point of the registry: learning where the
        data is without broadcasting).  Falls back to ground truth when
        omitted -- useful for tests.  Picks the closest source site by
        one-way latency; under the flow-level fair-share bandwidth model
        the choice is load-aware instead (expected delivery time given
        the current fair share on each candidate link, via the network's
        jitter-free estimator -- planning never consumes network RNG).
        Returns the :class:`StoredFile`.
        """
        dst = self._store_of(to_site)
        existing = dst.get(name)
        if existing is not None:
            return existing

        candidates = [
            s
            for s in (known_locations or self.locations_of(name))
            if s in self.stores and self.stores[s].has(name)
        ]
        if not candidates:
            raise TransferError(f"file {name!r} not found at any site")
        if self.network.bandwidth_model == "fair":
            src_site = min(
                candidates,
                key=lambda s: self.network.estimated_transfer_time(
                    s, to_site, self.stores[s].peek(name).size
                ),
            )
        else:
            src_site = min(
                candidates,
                key=lambda s: self.network.topology.latency(s, to_site),
            )
        file = self.stores[src_site].get(name)
        assert file is not None  # guarded by candidates filter
        start = self.env.now
        yield from self.network.transfer(src_site, to_site, file.size)
        self.transfers += 1
        self.transfer_wait += self.env.now - start
        if src_site != to_site:
            self.wan_bytes += file.size
        dst.put(file)
        return file

    def _store_of(self, site: str) -> FileStore:
        try:
            return self.stores[site]
        except KeyError:
            raise KeyError(
                f"unknown site {site!r}; have {sorted(self.stores)}"
            ) from None

    def total_files(self) -> int:
        return sum(len(s) for s in self.stores.values())

    def __repr__(self) -> str:
        return f"<TransferService sites={sorted(self.stores)}>"
