"""Workflow substrate: DAGs, access patterns, applications and the engine.

Workflows here follow the paper's model (Section II): tasks are
standalone computations exchanging data through files; the engine is a
scheduler that builds a task-dependency graph from the tasks'
input/output files, queries the metadata service for file locations,
moves data when needed and publishes metadata for produced files.
"""

from repro.workflow.dag import Task, Workflow, WorkflowFile
from repro.workflow.patterns import (
    broadcast,
    gather,
    pipeline,
    reduce_tree,
    scatter,
)
from repro.workflow.applications import buzzflow, montage
from repro.workflow.engine import TaskResult, WorkflowEngine, WorkflowResult
from repro.workflow.serialization import (
    load_workflow,
    save_workflow,
    workflow_from_dict,
    workflow_to_dict,
)
from repro.workflow.traces import (
    TraceProfile,
    characterize,
    generate_trace_workflow,
)

__all__ = [
    "Task",
    "TaskResult",
    "TraceProfile",
    "Workflow",
    "WorkflowEngine",
    "WorkflowFile",
    "WorkflowResult",
    "broadcast",
    "buzzflow",
    "characterize",
    "gather",
    "generate_trace_workflow",
    "load_workflow",
    "montage",
    "pipeline",
    "reduce_tree",
    "save_workflow",
    "scatter",
    "workflow_from_dict",
    "workflow_to_dict",
]
