"""The workflow execution engine.

Implements the paper's engine model (Section II-A): "the workflow engine
queries the metadata service to retrieve the job input files, retrieves
them, executes the job and stores the metadata and data of the final
results."  Plus the scheduling behaviour the consistency argument relies
on (Section III-D): "the engine scheduler takes care to schedule the
task close to the data production nodes (i.e. on the same node, in the
same datacenter)".

Task lifecycle on its assigned VM:

1. resolve every input file through the metadata service
   (``require_found`` -- a producer published it, so a miss means
   "not visible here yet" and is retried);
2. fetch any input not materialized at the VM's site (data transfer,
   paying WAN latency + size/bandwidth);
3. compute (a sleep, exactly as the paper simulates task internals);
4. store outputs locally and publish their metadata;
5. perform the task's ``extra_ops`` registry operations in the paper's
   write-once/read-many pattern (publish a small file, later read it
   back), alternating writes and reads of the task's own key space.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Union

from repro.sim import AllOf, Environment, Event
from repro.cloud.deployment import Deployment
from repro.cloud.vm import VirtualMachine
from repro.metadata.entry import RegistryEntry
from repro.metadata.stats import OpStats
from repro.metadata.strategies.base import MetadataStrategy
from repro.obs import NULL_TRACER
from repro.scheduling import (
    ClusterView,
    PlacementPolicy,
    TenantContext,
    make_scheduler,
)
from repro.storage.filestore import StoredFile
from repro.storage.transfer import TransferService
from repro.workflow.dag import Task, Workflow, WorkflowFile

__all__ = ["TaskResult", "WorkflowEngine", "WorkflowResult"]


@dataclass
class TaskResult:
    """Execution record of one task."""

    task_id: str
    vm: str
    site: str
    started_at: float
    finished_at: float
    metadata_time: float
    transfer_time: float
    compute_time: float

    @property
    def duration(self) -> float:
        return self.finished_at - self.started_at


@dataclass
class WorkflowResult:
    """Outcome of one workflow execution."""

    workflow: str
    strategy: str
    makespan: float
    task_results: List[TaskResult] = field(default_factory=list)
    #: Snapshot of strategy op stats over this run only (tag-filtered,
    #: so results stay exact when workflows execute concurrently).
    ops: Optional[OpStats] = None
    #: The run tag this execution's op records carry.
    run: str = ""
    #: Absolute simulation times bracketing the execution.
    started_at: float = 0.0
    finished_at: float = 0.0

    @property
    def total_metadata_time(self) -> float:
        return sum(r.metadata_time for r in self.task_results)

    @property
    def total_transfer_time(self) -> float:
        return sum(r.transfer_time for r in self.task_results)

    def tasks_per_site(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for r in self.task_results:
            out[r.site] = out.get(r.site, 0) + 1
        return out

    def __repr__(self) -> str:
        return (
            f"<WorkflowResult {self.workflow}/{self.strategy} "
            f"makespan={self.makespan:.1f}s tasks={len(self.task_results)}>"
        )


class WorkflowEngine:
    """Schedules a workflow over a deployment using a metadata strategy.

    Task *placement* is delegated to a pluggable
    :class:`~repro.scheduling.PlacementPolicy` (see
    ``docs/scheduling.md``).  ``scheduler`` may be a policy instance or
    a registry name (``"locality"``, ``"round_robin"``,
    ``"load_balanced"``, ``"bandwidth_aware"``, ``"hybrid"``); when
    omitted it falls back to the strategy config's ``scheduler``, then
    the deployment's, then the historical default -- ``"locality"``
    (or ``"round_robin"`` with ``locality_scheduling=False``, the
    legacy switch kept for backward compatibility).  Name-built
    policies pick up their knobs (hybrid weights, pending penalty)
    from the strategy config.

    ``input_site`` selects the site where the workflow's external
    inputs are staged before the run (default: the deployment's first
    site, the historical behaviour), so scheduler experiments can vary
    the data origin.
    """

    def __init__(
        self,
        deployment: Deployment,
        strategy: MetadataStrategy,
        transfer: Optional[TransferService] = None,
        locality_scheduling: bool = True,
        proactive_provisioning: bool = False,
        data_provisioning: bool = False,
        scheduler: Optional[Union[str, PlacementPolicy]] = None,
        input_site: Optional[str] = None,
    ):
        self.deployment = deployment
        self.env: Environment = deployment.env
        self.strategy = strategy
        config = getattr(strategy, "config", None)
        self.transfer = transfer or TransferService(
            self.env,
            deployment.network,
            deployment.sites,
            default_weight=(
                config.transfer_flow_weight if config is not None else 1.0
            ),
        )
        self.locality_scheduling = locality_scheduling
        if input_site is not None:
            deployment.topology.get(input_site)  # validate the site name
        self.input_site = input_site
        #: Section III-C: "proactively move data between nodes in
        #: distant datacenters before it is needed".  When enabled, a
        #: task resolves and stages all of its inputs *concurrently*
        #: instead of one at a time, overlapping metadata latency with
        #: data movement.
        self.proactive_provisioning = proactive_provisioning
        #: Stronger III-C mode: speculative cross-site prefetch of
        #: produced files toward their likely consumers, driven by a
        #: :class:`~repro.workflow.provisioning.DataProvisioner` per run.
        self.data_provisioning = data_provisioning
        #: The provisioner of the most recent ``execute`` call (for
        #: inspection of prefetch hit rates).
        self.last_provisioner = None
        self._rng = deployment.rng.get("engine")
        # Monotonic run counter: every execute() call gets a unique op
        # attribution tag even when runs interleave on one engine.
        self._run_seq = 0
        # Per-VM pending-task counters for least-loaded selection (the
        # policies read them through the cluster view).
        self._vm_load: Dict[str, int] = {
            vm.name: 0 for vm in deployment.workers
        }
        # Elastic fleets: newly provisioned VMs need a load counter the
        # moment they become placeable.  Entries of removed (draining)
        # VMs are kept -- their in-flight decrements still land there,
        # and the elastic controller reads them to detect drain
        # completion.
        deployment.add_fleet_listener(self._on_fleet_change)
        self.cluster = ClusterView(deployment, self.transfer, self._vm_load)
        self.policy = self._resolve_policy(scheduler, config)
        # Observability: placement decisions under "scheduler" (with
        # per-site candidate scores), task lifecycles as spans with
        # staging/compute/publish children.  Category flags are cached
        # at construction like the network's fairness flag.
        tr = getattr(self.env, "tracer", None) or NULL_TRACER
        self._tracer = tr
        self._trace_sched = tr.enabled and tr.wants("scheduler")
        self._trace_span = tr.enabled and tr.wants("span")

    def _on_fleet_change(self, added, removed) -> None:
        """Keep per-VM load counters in sync with an elastic fleet."""
        for vm in added:
            self._vm_load.setdefault(vm.name, 0)

    def _resolve_policy(
        self,
        scheduler: Optional[Union[str, PlacementPolicy]],
        config,
    ) -> PlacementPolicy:
        """Turn the ``scheduler`` argument into a policy instance.

        Precedence: explicit argument > strategy config > deployment
        default > the legacy ``locality_scheduling`` switch.
        """
        if scheduler is None:
            scheduler = getattr(config, "scheduler", None)
        if scheduler is None:
            scheduler = getattr(self.deployment, "scheduler", None)
        if scheduler is None:
            scheduler = (
                "locality" if self.locality_scheduling else "round_robin"
            )
        if isinstance(scheduler, PlacementPolicy):
            return scheduler
        knobs = {}
        if scheduler in ("bandwidth_aware", "hybrid"):
            knobs["pending_penalty"] = getattr(
                config, "bw_pending_penalty", 1.0
            )
        if scheduler == "hybrid":
            knobs.update(
                locality_weight=getattr(
                    config, "hybrid_locality_weight", 1.0
                ),
                load_weight=getattr(config, "hybrid_load_weight", 1.0),
                transfer_weight=getattr(
                    config, "hybrid_transfer_weight", 1.0
                ),
            )
        return make_scheduler(scheduler, **knobs)

    # -- public API ---------------------------------------------------------------

    def run(self, workflow: Workflow) -> WorkflowResult:
        """Execute ``workflow`` to completion and return its result.

        Drives the deployment's environment until the workflow's last
        task finishes.  Multiple workflows can be run sequentially on
        the same engine; op stats snapshots are per-run.
        """
        workflow.validate()
        done = self.env.process(
            self.execute(workflow), name=f"wf-{workflow.name}"
        )
        return self.env.run(until=done)

    def execute(
        self,
        workflow: Workflow,
        input_site: Optional[str] = None,
        run: Optional[str] = None,
        tenant: Optional[TenantContext] = None,
    ) -> Generator:
        """Process form of :meth:`run`, for composition with other load.

        Many ``execute`` processes may be in flight concurrently on one
        engine (the workload layer's whole purpose): each call gets a
        unique ``run`` tag carried on every op record it issues, and the
        result's op snapshot is filtered by that tag -- interleaved runs
        can neither lose nor double-attribute operations.  ``input_site``
        optionally stages *this* workflow's external inputs at a
        different site than the engine default (per-tenant data
        origins); ``run`` overrides the auto-generated tag; ``tenant``
        identifies the submitting tenant to placement policies (exposed
        as ``cluster.placing_tenant`` during this workflow's placement
        decisions, with in-flight counts in ``cluster.tenant_load``).
        """
        self._run_seq += 1
        if run is None:
            run = f"{workflow.name}#{self._run_seq}"
        start = self.env.now
        # Records appended before this instant cannot carry this run's
        # tag, so the completion-time filter only scans the run's own
        # window of the shared record list (keeps a long workload's
        # attribution linear instead of quadratic in total op count).
        ops_before = len(self.strategy.stats)
        self._materialize_initial_inputs(workflow, input_site)

        provisioner = None
        if self.data_provisioning:
            from repro.workflow.provisioning import DataProvisioner

            provisioner = DataProvisioner(
                self.env, workflow, self.strategy, self.transfer
            )
        self.last_provisioner = provisioner

        completion: Dict[str, Event] = {
            tid: self.env.event() for tid in workflow.tasks
        }
        results: List[TaskResult] = []
        for task in workflow.topological_order():
            parent_events = [
                completion[p.task_id] for p in workflow.parents(task)
            ]
            self.env.process(
                self._task_lifecycle(
                    workflow, task, parent_events, completion[task.task_id],
                    results, provisioner, run, tenant,
                ),
                name=f"task-{task.task_id}",
            )
        yield AllOf(self.env, list(completion.values()))

        ops = self.strategy.stats.tail_for_run(ops_before, run)
        return WorkflowResult(
            workflow=workflow.name,
            strategy=self.strategy.name,
            makespan=self.env.now - start,
            task_results=sorted(results, key=lambda r: r.started_at),
            ops=ops,
            run=run,
            started_at=start,
            finished_at=self.env.now,
        )

    # -- internals ---------------------------------------------------------------------

    def _materialize_initial_inputs(
        self, workflow: Workflow, input_site: Optional[str] = None
    ) -> None:
        """Stage external input files at the input site and publish them.

        The staging site defaults to the deployment's first site (the
        historical behaviour) and can be varied per engine via the
        ``input_site`` knob or per run via ``execute(input_site=...)``
        (per-tenant data origins) -- the origin matters to the
        bandwidth-aware placement policies.
        """
        if input_site is not None:
            self.deployment.topology.get(input_site)  # validate
        site = input_site or self.input_site or self.deployment.sites[0]
        for f in workflow.initial_inputs():
            self.transfer.store(
                site, StoredFile(f.name, f.size, self.env.now, producer="")
            )
            # Published synchronously at t=0 (stage-in happens before the
            # run in real deployments); bypass timing via direct cache
            # access on every registry so all strategies see it.
            for registry in self.strategy.registries.values():
                registry.cache.merge(
                    RegistryEntry(
                        key=f.name, locations=frozenset({site}), size=f.size
                    )
                )

    def _task_lifecycle(
        self,
        workflow: Workflow,
        task: Task,
        parent_events: List[Event],
        done: Event,
        results: List[TaskResult],
        provisioner=None,
        run: str = "",
        tenant: Optional[TenantContext] = None,
    ) -> Generator:
        if parent_events:
            yield AllOf(self.env, parent_events)
        parent_sites = [ev.value for ev in parent_events]
        # Expose the submitting tenant to the policy for the duration
        # of this one placement decision (satellite plumbing: policies
        # may read it, none act on it yet).
        self.cluster.placing_tenant = tenant
        try:
            vm = self._place(workflow, task, parent_sites)
        finally:
            self.cluster.placing_tenant = None
        if self._trace_sched:
            self._emit_placement(task, vm, parent_sites)
        self.policy.on_task_placed(task, vm, self.cluster)
        if provisioner is not None:
            provisioner.on_task_placed(task, vm.site)
        self._vm_load[vm.name] += 1
        if tenant is not None:
            self.cluster.tenant_load[tenant.name] = (
                self.cluster.tenant_load.get(tenant.name, 0) + 1
            )
        span = (
            self._tracer.span(
                "task", task=task.task_id, vm=vm.name, site=vm.site, run=run
            )
            if self._trace_span
            else None
        )
        try:
            result = yield from self._execute_task(
                task, vm, workflow.parents(task), run, span
            )
        finally:
            self._vm_load[vm.name] -= 1
            if tenant is not None:
                self.cluster.tenant_load[tenant.name] -= 1
            self.policy.on_task_complete(task, vm, self.cluster)
            if span is not None:
                span.finish()
        results.append(result)
        if provisioner is not None:
            provisioner.on_task_complete(task, vm.site)
        done.succeed(vm.site)

    def _place(
        self,
        workflow: Workflow,
        task: Task,
        parent_sites: List[str],
    ) -> VirtualMachine:
        """Pick the VM for a ready task (delegates to the policy)."""
        return self.policy.place(task, workflow, parent_sites, self.cluster)

    def _emit_placement(
        self,
        task: Task,
        vm: VirtualMachine,
        parent_sites: List[str],
    ) -> None:
        """One "scheduler"/"place" event per decision, with per-site
        candidate scores (estimated staging seconds -- the quantity
        bandwidth-aware policies minimize).  Score computation is pure
        and only runs when the category is enabled."""
        scores = {
            site: round(
                self.policy.staging_time(task, site, self.cluster), 6
            )
            for site in self.deployment.sites
        }
        self._tracer.emit(
            "scheduler",
            "place",
            task=task.task_id,
            vm=vm.name,
            site=vm.site,
            policy=self.policy.name,
            parent_sites=sorted(set(parent_sites)),
            scores=scores,
        )

    @staticmethod
    def scratch_keys(task: Task) -> List[str]:
        """The scratch keys a task publishes during its extra ops.

        Deterministic so consumer tasks can address a producer's scratch
        space without any side channel (mirrors how workflow engines
        derive file names from job templates).
        """
        return [
            f"{task.task_id}/scratch-{i}"
            for i in range(0, task.extra_ops, 2)
        ]

    def _execute_task(
        self,
        task: Task,
        vm: VirtualMachine,
        parents: Optional[List[Task]] = None,
        run: str = "",
        span=None,
    ) -> Generator:
        start = self.env.now
        metadata_time = 0.0
        transfer_time = 0.0

        # 1-2. Resolve and stage inputs (concurrently under proactive
        # provisioning, sequentially otherwise).
        stage_span = (
            span.child("stage", inputs=len(task.inputs))
            if span is not None and task.inputs
            else None
        )
        if self.proactive_provisioning and len(task.inputs) > 1:
            t0 = self.env.now
            staged = [
                self.env.process(
                    self._stage_input(f, vm.site, run),
                    name=f"stage-{task.task_id}-{f.name}",
                )
                for f in task.inputs
            ]
            yield AllOf(self.env, staged)
            # Concurrent staging: attribute the whole wait to transfer,
            # with the slowest metadata resolution as metadata time.
            metadata_time += max(p.value[0] for p in staged)
            transfer_time += (self.env.now - t0) - max(
                p.value[0] for p in staged
            )
        else:
            for f in task.inputs:
                t0 = self.env.now
                entry = yield from self.strategy.read(
                    vm.site, f.name, require_found=True, run=run
                )
                metadata_time += self.env.now - t0
                locations = entry.locations if entry is not None else ()
                t0 = self.env.now
                yield from self.transfer.fetch(
                    f.name, vm.site, known_locations=locations
                )
                transfer_time += self.env.now - t0
        if stage_span is not None:
            stage_span.finish(
                metadata_s=metadata_time, transfer_s=transfer_time
            )
        self.policy.on_inputs_staged(task, vm, self.cluster)

        # 3. Compute (a sleep, as in the paper).  Tasks with extra
        # registry ops interleave their computation with those ops
        # (step 5) -- real jobs alternate processing and metadata
        # passing rather than bursting all registry traffic at once --
        # so here we only pay the lump for op-free tasks.
        compute_time = 0.0
        think_slice = (
            task.compute_time / task.extra_ops if task.extra_ops else 0.0
        )
        if not task.extra_ops:
            t0 = self.env.now
            compute_span = (
                span.child("compute") if span is not None else None
            )
            yield from vm.compute(task.compute_time)
            compute_time = self.env.now - t0
            if compute_span is not None:
                compute_span.finish()

        # 4. Store and publish outputs.
        publish_span = (
            span.child("publish", outputs=len(task.outputs))
            if span is not None and task.outputs
            else None
        )
        publish_meta0 = metadata_time
        for f in task.outputs:
            self.transfer.store(
                vm.site,
                StoredFile(f.name, f.size, self.env.now, producer=task.task_id),
            )
            t0 = self.env.now
            yield from self.strategy.write(
                vm.site,
                RegistryEntry(
                    key=f.name, locations=frozenset({vm.site}), size=f.size
                ),
                run=run,
            )
            metadata_time += self.env.now - t0
        if publish_span is not None:
            publish_span.finish(metadata_s=metadata_time - publish_meta0)

        # 5. Extra registry ops in the write-once/read-many pattern:
        # even ops publish this task's own scratch entries; odd ops read
        # entries published by the task's *parents* (the cross-task
        # consumption that makes metadata placement matter).  Root tasks
        # read back their own scratch space instead.
        parent_keys: List[str] = []
        for p in parents or []:
            parent_keys.extend(self.scratch_keys(p))
            parent_keys.extend(f.name for f in p.outputs)
        own_written: List[str] = []
        ops_span = (
            span.child("ops", extra_ops=task.extra_ops)
            if span is not None and task.extra_ops
            else None
        )
        ops_meta0, ops_compute0 = metadata_time, compute_time
        for i in range(task.extra_ops):
            if think_slice > 0:
                t0 = self.env.now
                yield from vm.compute(think_slice)
                compute_time += self.env.now - t0
            t0 = self.env.now
            if i % 2 == 0:
                key = f"{task.task_id}/scratch-{i}"
                yield from self.strategy.write(
                    vm.site,
                    RegistryEntry(key=key, locations=frozenset({vm.site})),
                    run=run,
                )
                own_written.append(key)
            else:
                pool = parent_keys or own_written
                key = pool[int(self._rng.integers(len(pool)))]
                yield from self.strategy.read(
                    vm.site, key, require_found=True, run=run
                )
            metadata_time += self.env.now - t0
        if ops_span is not None:
            # Attribution split for repro.obs.analyze: the ops loop
            # interleaves think slices (compute) with registry traffic.
            ops_span.finish(
                metadata_s=metadata_time - ops_meta0,
                compute_s=compute_time - ops_compute0,
            )

        return TaskResult(
            task_id=task.task_id,
            vm=vm.name,
            site=vm.site,
            started_at=start,
            finished_at=self.env.now,
            metadata_time=metadata_time,
            transfer_time=transfer_time,
            compute_time=compute_time,
        )

    def _stage_input(
        self, f: WorkflowFile, site: str, run: str = ""
    ) -> Generator:
        """Process: resolve one input's metadata and fetch its data.

        Returns ``(metadata_seconds, transfer_seconds)`` so the caller
        can attribute time under concurrent staging.
        """
        t0 = self.env.now
        entry = yield from self.strategy.read(
            site, f.name, require_found=True, run=run
        )
        meta_t = self.env.now - t0
        locations = entry.locations if entry is not None else ()
        t0 = self.env.now
        yield from self.transfer.fetch(
            f.name, site, known_locations=locations
        )
        return meta_t, self.env.now - t0
