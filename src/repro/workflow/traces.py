"""Workflow trace generation and characterization.

The paper's design is "driven by recent workflow workload studies on
traces from several applications domains" (Section II-A): workflows
generate many small files, follow a handful of access patterns, and
write once / read many times.  This module provides both directions:

- :func:`generate_trace_workflow` -- synthesize a workflow whose file
  sizes follow the published distributions (lognormal bodies around a
  configurable median, e.g. the Sloan survey's <1 MB images or the
  genome traces' 190 KB average), with a chosen pattern mix;
- :func:`characterize` -- analyze any workflow DAG back into the
  paper's vocabulary: pattern mix, file-size statistics, metadata
  intensity, read/write ratio.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.util.rng import RngStreams
from repro.util.units import KB, MB
from repro.workflow.dag import Task, Workflow, WorkflowFile

__all__ = [
    "TraceProfile",
    "WorkflowCharacterization",
    "characterize",
    "generate_trace_workflow",
]


@dataclass(frozen=True)
class TraceProfile:
    """Parameters of a synthetic workload family.

    ``median_file_size`` / ``sigma`` parameterize the lognormal file
    size body; ``pattern_mix`` weights the structural motifs.
    """

    name: str = "generic"
    median_file_size: int = 190 * KB
    sigma: float = 1.0
    #: relative weights of (pipeline, scatter, gather) stages.
    pattern_mix: Sequence[float] = (0.5, 0.25, 0.25)
    ops_per_task: int = 100
    compute_time: float = 1.0

    def __post_init__(self):
        if self.median_file_size <= 0:
            raise ValueError("median_file_size must be positive")
        if len(self.pattern_mix) != 3:
            raise ValueError("pattern_mix is (pipeline, scatter, gather)")
        if not np.isclose(sum(self.pattern_mix), 1.0):
            raise ValueError("pattern_mix must sum to 1")


#: Published workload families the paper cites.
SLOAN_SKY_SURVEY = TraceProfile(
    name="sloan-sky-survey",
    median_file_size=700 * KB,  # "average size of less than 1 MB"
    sigma=0.8,
    pattern_mix=(0.2, 0.5, 0.3),
)
HUMAN_GENOME = TraceProfile(
    name="human-genome",
    median_file_size=190 * KB,  # "30 million files averaging 190 KB"
    sigma=0.5,
    pattern_mix=(0.6, 0.2, 0.2),
)


def generate_trace_workflow(
    profile: TraceProfile,
    n_stages: int = 6,
    stage_width: int = 4,
    seed: int = 0,
    name: Optional[str] = None,
) -> Workflow:
    """Synthesize a workflow with the profile's size/pattern statistics.

    Stages alternate motifs drawn from the pattern mix:

    - *pipeline* stage: each task consumes one predecessor output;
    - *scatter* stage: every task consumes the same (hot) predecessor
      output;
    - *gather* stage: a single task consumes all predecessor outputs.
    """
    if n_stages <= 0 or stage_width <= 0:
        raise ValueError("n_stages and stage_width must be positive")
    rng = RngStreams(seed=seed).get(f"trace-{profile.name}")
    wf = Workflow(name or f"trace-{profile.name}")

    def draw_size() -> int:
        # Lognormal around the median: exp(mu) == median.
        return max(
            1, int(profile.median_file_size * rng.lognormal(0, profile.sigma))
        )

    prev_outputs: List[WorkflowFile] = []
    motifs = ("pipeline", "scatter", "gather")
    for stage in range(n_stages):
        motif = motifs[
            int(rng.choice(3, p=np.asarray(profile.pattern_mix)))
        ]
        outputs: List[WorkflowFile] = []
        if motif == "gather" and prev_outputs:
            out = WorkflowFile(f"{wf.name}/s{stage}-gather", size=draw_size())
            wf.add_task(
                Task(
                    f"{wf.name}-{stage}-gather",
                    inputs=list(prev_outputs),
                    outputs=[out],
                    compute_time=profile.compute_time,
                    extra_ops=profile.ops_per_task,
                    stage=f"s{stage}:{motif}",
                )
            )
            outputs = [out]
        else:
            for j in range(stage_width):
                if not prev_outputs:
                    inputs: List[WorkflowFile] = []
                elif motif == "scatter":
                    inputs = [prev_outputs[0]]  # the hot file
                else:  # pipeline
                    inputs = [prev_outputs[j % len(prev_outputs)]]
                out = WorkflowFile(
                    f"{wf.name}/s{stage}-t{j}", size=draw_size()
                )
                outputs.append(out)
                wf.add_task(
                    Task(
                        f"{wf.name}-{stage}-{j}",
                        inputs=inputs,
                        outputs=[out],
                        compute_time=profile.compute_time,
                        extra_ops=profile.ops_per_task,
                        stage=f"s{stage}:{motif}",
                    )
                )
        prev_outputs = outputs
    return wf


@dataclass
class WorkflowCharacterization:
    """A workflow described in the paper's Section II-A vocabulary."""

    n_tasks: int
    n_files: int
    total_bytes: int
    mean_file_size: float
    median_file_size: float
    small_file_fraction: float  # below the 64 MB striping threshold
    metadata_ops_per_task: float
    read_write_ratio: float
    #: motif histogram over consumer edges.
    pattern_counts: Dict[str, int] = field(default_factory=dict)

    @property
    def dominant_pattern(self) -> str:
        if not self.pattern_counts:
            return "none"
        return max(self.pattern_counts, key=self.pattern_counts.get)

    def is_metadata_intensive(self, threshold: int = 500) -> bool:
        """The paper's MI regime: many registry ops per task."""
        return self.metadata_ops_per_task >= threshold


SMALL_FILE_THRESHOLD = 64 * MB  # "no larger than the block size" (II-A)


def characterize(workflow: Workflow) -> WorkflowCharacterization:
    """Describe a workflow DAG in the paper's workload-study terms.

    Pattern classification per task, based on in/out degree versus its
    neighbours:

    - ``pipeline``: single input from a task with a single consumer;
    - ``broadcast``: input shared with >= 2 sibling consumers;
    - ``gather``: >= 2 inputs from distinct producers;
    - ``scatter``: no produced inputs but >= 2 outputs consumed by
      distinct tasks;
    - ``source``/``sink`` degenerate cases are counted as their nearest
      motif.
    """
    tasks = list(workflow)
    if not tasks:
        raise ValueError("empty workflow")
    files: List[WorkflowFile] = []
    seen = set()
    for t in tasks:
        for f in list(t.inputs) + list(t.outputs):
            if f.name not in seen:
                seen.add(f.name)
                files.append(f)
    sizes = np.array([f.size for f in files]) if files else np.array([0])

    patterns: Dict[str, int] = {
        "pipeline": 0,
        "broadcast": 0,
        "gather": 0,
        "scatter": 0,
    }
    for t in tasks:
        parents = workflow.parents(t)
        children = workflow.children(t)
        if len(parents) >= 2:
            patterns["gather"] += 1
        elif len(parents) == 1:
            # Shared input -> broadcast; exclusive input -> pipeline.
            siblings = workflow.children(parents[0])
            if len(siblings) >= 2:
                patterns["broadcast"] += 1
            else:
                patterns["pipeline"] += 1
        elif len(children) >= 2:
            patterns["scatter"] += 1
        elif children:
            patterns["pipeline"] += 1

    reads = sum(len(t.inputs) + t.extra_ops // 2 for t in tasks)
    writes = sum(
        len(t.outputs) + (t.extra_ops + 1) // 2 for t in tasks
    )
    return WorkflowCharacterization(
        n_tasks=len(tasks),
        n_files=len(files),
        total_bytes=int(sizes.sum()),
        mean_file_size=float(sizes.mean()),
        median_file_size=float(np.median(sizes)),
        small_file_fraction=float((sizes < SMALL_FILE_THRESHOLD).mean()),
        metadata_ops_per_task=workflow.total_metadata_ops / len(tasks),
        read_write_ratio=reads / writes if writes else 0.0,
        pattern_counts=patterns,
    )
