"""Workflow DAG serialization: JSON save/load.

Lets users define custom workflows in files and feed them to the
engine, advisor and CLI without writing Python.  The format is the
natural JSON projection of :class:`~repro.workflow.dag.Workflow`::

    {
      "name": "my-workflow",
      "tasks": [
        {"task_id": "a", "outputs": [{"name": "x", "size": 1024}],
         "compute_time": 1.0, "extra_ops": 10, "stage": "prep"},
        {"task_id": "b", "inputs": [{"name": "x"}]}
      ]
    }

Input files may omit ``size``; it is resolved from the producing
task's declaration (sizes are a property of the file, declared once at
its producer, exactly like the write-once rule).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Union

from repro.workflow.dag import Task, Workflow, WorkflowFile

__all__ = ["workflow_from_dict", "workflow_to_dict", "load_workflow", "save_workflow"]


class WorkflowFormatError(Exception):
    """The serialized document does not describe a valid workflow."""


def workflow_to_dict(workflow: Workflow) -> Dict[str, Any]:
    """Project a workflow onto plain JSON-compatible data."""
    tasks: List[Dict[str, Any]] = []
    for task in workflow.topological_order():
        entry: Dict[str, Any] = {"task_id": task.task_id}
        if task.inputs:
            entry["inputs"] = [{"name": f.name} for f in task.inputs]
        if task.outputs:
            entry["outputs"] = [
                {"name": f.name, "size": f.size} for f in task.outputs
            ]
        if task.compute_time != 1.0:
            entry["compute_time"] = task.compute_time
        if task.extra_ops:
            entry["extra_ops"] = task.extra_ops
        if task.stage:
            entry["stage"] = task.stage
        tasks.append(entry)
    return {"name": workflow.name, "tasks": tasks}


def workflow_from_dict(doc: Dict[str, Any]) -> Workflow:
    """Rebuild a workflow from its dict form (validates the DAG)."""
    if not isinstance(doc, dict) or "name" not in doc:
        raise WorkflowFormatError("document must be an object with 'name'")
    raw_tasks = doc.get("tasks")
    if not isinstance(raw_tasks, list) or not raw_tasks:
        raise WorkflowFormatError("'tasks' must be a non-empty list")

    # First pass: file sizes are declared at producers.
    sizes: Dict[str, int] = {}
    for t in raw_tasks:
        for out in t.get("outputs", []):
            if "name" not in out:
                raise WorkflowFormatError(f"output without name in {t}")
            sizes[out["name"]] = int(out.get("size", WorkflowFile("x").size))

    wf = Workflow(doc["name"])
    for t in raw_tasks:
        if "task_id" not in t:
            raise WorkflowFormatError(f"task without task_id: {t}")
        inputs = [
            WorkflowFile(
                i["name"],
                size=sizes.get(
                    i["name"], int(i.get("size", WorkflowFile("x").size))
                ),
            )
            for i in t.get("inputs", [])
        ]
        outputs = [
            WorkflowFile(o["name"], size=sizes[o["name"]])
            for o in t.get("outputs", [])
        ]
        wf.add_task(
            Task(
                task_id=t["task_id"],
                inputs=inputs,
                outputs=outputs,
                compute_time=float(t.get("compute_time", 1.0)),
                extra_ops=int(t.get("extra_ops", 0)),
                stage=t.get("stage", ""),
            )
        )
    wf.validate()
    return wf


def save_workflow(workflow: Workflow, path: Union[str, Path]) -> None:
    """Write a workflow to a JSON file."""
    Path(path).write_text(
        json.dumps(workflow_to_dict(workflow), indent=2) + "\n",
        encoding="utf-8",
    )


def load_workflow(path: Union[str, Path]) -> Workflow:
    """Read a workflow from a JSON file."""
    try:
        doc = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise WorkflowFormatError(f"invalid JSON in {path}: {exc}") from exc
    return workflow_from_dict(doc)
