"""The five canonical workflow data access patterns (Section II-A).

Workflow characterization studies identify pipeline, scatter, gather,
reduce and broadcast as the building blocks of real applications, which
are "typically a combination of these patterns".  Each generator below
returns a fresh :class:`~repro.workflow.dag.Workflow`; they compose by
passing an existing workflow plus input files.
"""

from __future__ import annotations

from typing import List, Optional

from repro.util.units import KB
from repro.workflow.dag import Task, Workflow, WorkflowFile

__all__ = ["broadcast", "gather", "pipeline", "reduce_tree", "scatter"]

DEFAULT_FILE_SIZE = 190 * KB


def _out(prefix: str, i: int, size: int) -> WorkflowFile:
    return WorkflowFile(f"{prefix}/out-{i}", size=size)


def pipeline(
    n_stages: int,
    compute_time: float = 1.0,
    extra_ops: int = 0,
    file_size: int = DEFAULT_FILE_SIZE,
    name: str = "pipeline",
) -> Workflow:
    """A linear chain: each stage consumes the previous stage's output.

    The pattern with the tightest producer/consumer locality -- the one
    the paper says the *locally replicated* registry fits best.
    """
    if n_stages <= 0:
        raise ValueError("n_stages must be positive")
    wf = Workflow(name)
    prev: Optional[WorkflowFile] = None
    for i in range(n_stages):
        out = _out(f"{name}/stage-{i}", 0, file_size)
        wf.add_task(
            Task(
                task_id=f"{name}-{i}",
                inputs=[prev] if prev is not None else [],
                outputs=[out],
                compute_time=compute_time,
                extra_ops=extra_ops,
                stage=f"stage-{i}",
            )
        )
        prev = out
    return wf


def scatter(
    fan_out: int,
    compute_time: float = 1.0,
    extra_ops: int = 0,
    file_size: int = DEFAULT_FILE_SIZE,
    name: str = "scatter",
) -> Workflow:
    """One splitter task fans out to ``fan_out`` independent workers."""
    if fan_out <= 0:
        raise ValueError("fan_out must be positive")
    wf = Workflow(name)
    split_outs = [
        _out(f"{name}/split", i, file_size) for i in range(fan_out)
    ]
    wf.add_task(
        Task(
            task_id=f"{name}-split",
            outputs=split_outs,
            compute_time=compute_time,
            extra_ops=extra_ops,
            stage="split",
        )
    )
    for i in range(fan_out):
        wf.add_task(
            Task(
                task_id=f"{name}-worker-{i}",
                inputs=[split_outs[i]],
                outputs=[_out(f"{name}/worker-{i}", 0, file_size)],
                compute_time=compute_time,
                extra_ops=extra_ops,
                stage="worker",
            )
        )
    return wf


def gather(
    fan_in: int,
    compute_time: float = 1.0,
    extra_ops: int = 0,
    file_size: int = DEFAULT_FILE_SIZE,
    name: str = "gather",
) -> Workflow:
    """``fan_in`` independent producers feed one collector task."""
    if fan_in <= 0:
        raise ValueError("fan_in must be positive")
    wf = Workflow(name)
    produced: List[WorkflowFile] = []
    for i in range(fan_in):
        out = _out(f"{name}/producer-{i}", 0, file_size)
        produced.append(out)
        wf.add_task(
            Task(
                task_id=f"{name}-producer-{i}",
                outputs=[out],
                compute_time=compute_time,
                extra_ops=extra_ops,
                stage="producer",
            )
        )
    wf.add_task(
        Task(
            task_id=f"{name}-collect",
            inputs=produced,
            outputs=[_out(f"{name}/collect", 0, file_size)],
            compute_time=compute_time,
            extra_ops=extra_ops,
            stage="collect",
        )
    )
    return wf


def reduce_tree(
    n_leaves: int,
    arity: int = 2,
    compute_time: float = 1.0,
    extra_ops: int = 0,
    file_size: int = DEFAULT_FILE_SIZE,
    name: str = "reduce",
) -> Workflow:
    """A k-ary reduction tree over ``n_leaves`` leaf producers."""
    if n_leaves <= 0:
        raise ValueError("n_leaves must be positive")
    if arity < 2:
        raise ValueError("arity must be >= 2")
    wf = Workflow(name)
    frontier: List[WorkflowFile] = []
    for i in range(n_leaves):
        out = _out(f"{name}/leaf-{i}", 0, file_size)
        frontier.append(out)
        wf.add_task(
            Task(
                task_id=f"{name}-leaf-{i}",
                outputs=[out],
                compute_time=compute_time,
                extra_ops=extra_ops,
                stage="leaf",
            )
        )
    level = 0
    while len(frontier) > 1:
        next_frontier: List[WorkflowFile] = []
        for j in range(0, len(frontier), arity):
            group = frontier[j : j + arity]
            out = _out(f"{name}/reduce-{level}", j // arity, file_size)
            next_frontier.append(out)
            wf.add_task(
                Task(
                    task_id=f"{name}-reduce-{level}-{j // arity}",
                    inputs=list(group),
                    outputs=[out],
                    compute_time=compute_time,
                    extra_ops=extra_ops,
                    stage=f"reduce-{level}",
                )
            )
        frontier = next_frontier
        level += 1
    return wf


def broadcast(
    fan_out: int,
    compute_time: float = 1.0,
    extra_ops: int = 0,
    file_size: int = DEFAULT_FILE_SIZE,
    name: str = "broadcast",
) -> Workflow:
    """One producer's single output is read by ``fan_out`` consumers.

    Stresses hot-entry behaviour: every consumer resolves the *same*
    metadata key (the paper's related work notes hot entries defeat
    subtree partitioning; hashing handles them by caching/locality).
    """
    if fan_out <= 0:
        raise ValueError("fan_out must be positive")
    wf = Workflow(name)
    shared = _out(f"{name}/source", 0, file_size)
    wf.add_task(
        Task(
            task_id=f"{name}-source",
            outputs=[shared],
            compute_time=compute_time,
            extra_ops=extra_ops,
            stage="source",
        )
    )
    for i in range(fan_out):
        wf.add_task(
            Task(
                task_id=f"{name}-consumer-{i}",
                inputs=[shared],
                outputs=[_out(f"{name}/consumer-{i}", 0, file_size)],
                compute_time=compute_time,
                extra_ops=extra_ops,
                stage="consumer",
            )
        )
    return wf
