"""Workflow DAG structures: files, tasks and the dependency graph.

A :class:`Workflow` is a DAG whose edges are *implied by files*: task B
depends on task A iff B reads a file A writes, mirroring how real
engines (Swift, Chiron, Pegasus) derive the task graph from declared
inputs/outputs rather than explicit edges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set

from repro.util.units import KB

__all__ = ["Task", "Workflow", "WorkflowFile", "WorkflowValidationError"]


class WorkflowValidationError(Exception):
    """The task graph is malformed (cycle, missing producer, ...)."""


@dataclass(frozen=True)
class WorkflowFile:
    """A (small) file exchanged between tasks.

    Workflow studies report median sizes in the KB-MB range; the default
    here is a representative small file.  Initial inputs have no
    producer.
    """

    name: str
    size: int = 190 * KB  # the human-genome trace average from the paper

    def __post_init__(self):
        if not self.name:
            raise ValueError("file name must be non-empty")
        if self.size < 0:
            raise ValueError("file size must be >= 0")


@dataclass
class Task:
    """One workflow job: inputs, outputs and simulated computation.

    Attributes
    ----------
    task_id:
        Unique id within the workflow.
    inputs / outputs:
        Files read / written.  Dependencies are derived from these.
    compute_time:
        Simulated execution time (the paper models task internals as a
        sleep; so do we).
    extra_ops:
        Additional metadata operations the task performs beyond its
        input reads and output writes.  This is how Table I's
        "operations per node" (100 / 200 / 1000) are expressed: each job
        touches many more small registry entries than its declared
        input/output files (intermediate products, logs, provenance).
        Split evenly between reads (of already-published keys) and
        writes (of fresh keys).
    stage:
        Optional label for reporting (e.g. "mProject", "merge").
    """

    task_id: str
    inputs: List[WorkflowFile] = field(default_factory=list)
    outputs: List[WorkflowFile] = field(default_factory=list)
    compute_time: float = 1.0
    extra_ops: int = 0
    stage: str = ""

    def __post_init__(self):
        if not self.task_id:
            raise ValueError("task_id must be non-empty")
        if self.compute_time < 0:
            raise ValueError("compute_time must be >= 0")
        if self.extra_ops < 0:
            raise ValueError("extra_ops must be >= 0")
        out_names = [f.name for f in self.outputs]
        if len(set(out_names)) != len(out_names):
            raise ValueError(f"duplicate outputs in task {self.task_id}")

    @property
    def metadata_ops(self) -> int:
        """Total registry operations this task will perform."""
        return len(self.inputs) + len(self.outputs) + self.extra_ops

    def __hash__(self) -> int:
        return hash(self.task_id)

    def __repr__(self) -> str:
        return (
            f"<Task {self.task_id} in={len(self.inputs)} "
            f"out={len(self.outputs)} t={self.compute_time}s>"
        )


class Workflow:
    """A file-linked task DAG with structural validation.

    >>> wf = Workflow("demo")
    >>> a = wf.add_task(Task("a", outputs=[WorkflowFile("x")]))
    >>> b = wf.add_task(Task("b", inputs=[WorkflowFile("x")]))
    >>> [t.task_id for t in wf.topological_order()]
    ['a', 'b']
    """

    def __init__(self, name: str):
        if not name:
            raise ValueError("workflow name must be non-empty")
        self.name = name
        self.tasks: Dict[str, Task] = {}
        self._producer: Dict[str, str] = {}  # file name -> task id

    # -- construction -----------------------------------------------------------

    def add_task(self, task: Task) -> Task:
        if task.task_id in self.tasks:
            raise WorkflowValidationError(
                f"duplicate task id {task.task_id!r}"
            )
        for f in task.outputs:
            if f.name in self._producer:
                raise WorkflowValidationError(
                    f"file {f.name!r} produced by both "
                    f"{self._producer[f.name]!r} and {task.task_id!r} "
                    "(workflow files are write-once)"
                )
        self.tasks[task.task_id] = task
        for f in task.outputs:
            self._producer[f.name] = task.task_id
        return task

    def namespaced(self, prefix: str) -> "Workflow":
        """A copy of this workflow with every key under ``prefix``.

        Task ids and file names are rewritten to ``{prefix}/{original}``
        (the workflow name to ``{prefix}:{name}``), so two concurrent
        instances of the same application submitted to one shared
        deployment touch disjoint :class:`~repro.storage.filestore.FileStore`
        keys, registry entries and scheduler bookkeeping (scratch keys
        and placement-ledger claims derive from task ids).  Structure,
        sizes, compute times and op counts are preserved, as is task
        insertion order -- the namespaced DAG schedules identically to
        the original.
        """
        if not prefix:
            raise ValueError("namespace prefix must be non-empty")
        clone = Workflow(f"{prefix}:{self.name}")

        def rename(f: WorkflowFile) -> WorkflowFile:
            return WorkflowFile(f"{prefix}/{f.name}", size=f.size)

        for task in self.tasks.values():
            clone.add_task(
                Task(
                    task_id=f"{prefix}/{task.task_id}",
                    inputs=[rename(f) for f in task.inputs],
                    outputs=[rename(f) for f in task.outputs],
                    compute_time=task.compute_time,
                    extra_ops=task.extra_ops,
                    stage=task.stage,
                )
            )
        return clone

    # -- graph queries ------------------------------------------------------------

    def producer_of(self, file_name: str) -> Optional[Task]:
        """The task writing ``file_name``, or None for initial inputs."""
        tid = self._producer.get(file_name)
        return self.tasks[tid] if tid is not None else None

    def parents(self, task: Task) -> List[Task]:
        """Distinct tasks producing this task's inputs."""
        seen: Set[str] = set()
        out: List[Task] = []
        for f in task.inputs:
            p = self.producer_of(f.name)
            if p is not None and p.task_id not in seen:
                seen.add(p.task_id)
                out.append(p)
        return out

    def children(self, task: Task) -> List[Task]:
        """Distinct tasks consuming this task's outputs."""
        out_names = {f.name for f in task.outputs}
        return [
            t
            for t in self.tasks.values()
            if any(f.name in out_names for f in t.inputs)
        ]

    def initial_inputs(self) -> List[WorkflowFile]:
        """Files read by tasks but produced by none (external inputs)."""
        seen: Set[str] = set()
        out: List[WorkflowFile] = []
        for t in self.tasks.values():
            for f in t.inputs:
                if f.name not in self._producer and f.name not in seen:
                    seen.add(f.name)
                    out.append(f)
        return out

    def roots(self) -> List[Task]:
        """Tasks with no produced inputs (may still read initial inputs)."""
        return [t for t in self.tasks.values() if not self.parents(t)]

    def sinks(self) -> List[Task]:
        return [t for t in self.tasks.values() if not self.children(t)]

    # -- ordering --------------------------------------------------------------------

    def topological_order(self) -> List[Task]:
        """Kahn's algorithm; raises on cycles."""
        indeg = {tid: len(self.parents(t)) for tid, t in self.tasks.items()}
        # Deterministic ordering: process ready tasks in id order.
        ready = sorted(tid for tid, d in indeg.items() if d == 0)
        order: List[Task] = []
        while ready:
            tid = ready.pop(0)
            task = self.tasks[tid]
            order.append(task)
            for child in sorted(
                self.children(task), key=lambda t: t.task_id
            ):
                indeg[child.task_id] -= 1
                if indeg[child.task_id] == 0:
                    # Insertion keeping 'ready' sorted (small lists).
                    ready.append(child.task_id)
                    ready.sort()
        if len(order) != len(self.tasks):
            raise WorkflowValidationError(
                f"workflow {self.name!r} contains a cycle"
            )
        return order

    def levels(self) -> List[List[Task]]:
        """Tasks grouped by depth (parallel waves)."""
        depth: Dict[str, int] = {}
        for task in self.topological_order():
            ps = self.parents(task)
            depth[task.task_id] = (
                1 + max(depth[p.task_id] for p in ps) if ps else 0
            )
        n_levels = max(depth.values()) + 1 if depth else 0
        out: List[List[Task]] = [[] for _ in range(n_levels)]
        for tid, d in depth.items():
            out[d].append(self.tasks[tid])
        for level in out:
            level.sort(key=lambda t: t.task_id)
        return out

    def validate(self) -> None:
        """Full structural check: acyclicity (implicit) + sanity."""
        self.topological_order()

    # -- aggregate properties -----------------------------------------------------------

    @property
    def total_metadata_ops(self) -> int:
        return sum(t.metadata_ops for t in self.tasks.values())

    @property
    def total_compute_time(self) -> float:
        return sum(t.compute_time for t in self.tasks.values())

    def critical_path_time(self) -> float:
        """Lower bound on makespan from compute times alone."""
        finish: Dict[str, float] = {}
        for task in self.topological_order():
            start = max(
                (finish[p.task_id] for p in self.parents(task)), default=0.0
            )
            finish[task.task_id] = start + task.compute_time
        return max(finish.values(), default=0.0)

    def __len__(self) -> int:
        return len(self.tasks)

    def __iter__(self) -> Iterator[Task]:
        return iter(self.tasks.values())

    def __repr__(self) -> str:
        return f"<Workflow {self.name} tasks={len(self)}>"
