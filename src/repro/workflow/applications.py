"""Models of the paper's two real-life workflows (Section VI-D, Fig. 9).

**BuzzFlow** -- "a near-pipelined application that searches for trends
and correlations in large scientific publications databases like DBLP
or PubMed".  Modeled as a narrow chain of super-stages with a small
parallel width, each stage consuming the previous stage's outputs.
72 jobs, so Table I's per-job op counts yield the paper's totals
(72 x 100 = 7,200 ... 72 x 1,000 = 72,000).

**Montage** -- "an astronomy application, in which mosaics of the sky
are created based on user requests.  It includes a split followed by a
set of parallelized jobs and finally a merge operation."  Modeled as
split -> N parallel projection jobs -> regional merges -> final mosaic.
160 jobs, matching Table I's totals (160 x 100 = 16,000; 160 x 200 =
32,000; the paper rounds the MI total to 150,000 -- see EXPERIMENTS.md).

Both builders take ``ops_per_task`` and ``compute_time`` so the three
evaluation scenarios (Small Scale / Computation Intensive / Metadata
Intensive) are just parameterizations; presets live in
``repro.experiments.scenarios``.
"""

from __future__ import annotations

from typing import List

from repro.util.units import KB, MB
from repro.workflow.dag import Task, Workflow, WorkflowFile

__all__ = ["buzzflow", "montage", "BUZZFLOW_JOBS", "MONTAGE_JOBS"]

#: Job counts implied by Table I's totals.
BUZZFLOW_JOBS = 72
MONTAGE_JOBS = 160


def _extra(ops_per_task: int, n_inputs: int, n_outputs: int) -> int:
    """Extra registry ops so the task's total equals ``ops_per_task``."""
    return max(0, ops_per_task - n_inputs - n_outputs)


def buzzflow(
    ops_per_task: int = 100,
    compute_time: float = 1.0,
    width: int = 4,
    n_stages: int = 18,
    file_size: int = 190 * KB,
) -> Workflow:
    """The near-pipelined BuzzFlow DAG: ``n_stages`` x ``width`` jobs.

    Stage ``k`` tasks each read every output of stage ``k-1`` (the
    trend/correlation passes repeatedly re-aggregate the previous
    analysis round), keeping the graph "near-pipelined": long and
    narrow rather than wide and flat.
    """
    if width <= 0 or n_stages <= 0:
        raise ValueError("width and n_stages must be positive")
    wf = Workflow("buzzflow")
    prev_outputs: List[WorkflowFile] = []
    for stage in range(n_stages):
        stage_outputs: List[WorkflowFile] = []
        for j in range(width):
            out = WorkflowFile(f"buzz/s{stage}/t{j}", size=file_size)
            stage_outputs.append(out)
            wf.add_task(
                Task(
                    task_id=f"buzz-{stage}-{j}",
                    inputs=list(prev_outputs),
                    outputs=[out],
                    compute_time=compute_time,
                    extra_ops=_extra(ops_per_task, len(prev_outputs), 1),
                    stage=f"stage-{stage}",
                )
            )
        prev_outputs = stage_outputs
    assert len(wf) == n_stages * width
    return wf


def montage(
    ops_per_task: int = 100,
    compute_time: float = 1.0,
    n_parallel: int = 156,
    n_merges: int = 2,
    file_size: int = 1 * MB,
) -> Workflow:
    """The Montage mosaic DAG: split -> parallel jobs -> merge -> mosaic.

    ``1 + n_parallel + n_merges + 1`` jobs; defaults give the 160 jobs
    of Table I.  The parallel projection jobs are independent (a
    scatter), then regional merges gather disjoint halves and the final
    task assembles the mosaic -- the "parallel, geo-distributed"
    structure for which the paper reports its best result (28 % gain).
    """
    if n_parallel <= 0 or n_merges <= 0:
        raise ValueError("n_parallel and n_merges must be positive")
    if n_parallel % n_merges != 0:
        raise ValueError("n_parallel must divide evenly across merges")
    wf = Workflow("montage")
    split_outs = [
        WorkflowFile(f"montage/tile-{i}", size=file_size)
        for i in range(n_parallel)
    ]
    wf.add_task(
        Task(
            task_id="montage-split",
            outputs=split_outs,
            compute_time=compute_time,
            extra_ops=_extra(ops_per_task, 0, n_parallel),
            stage="split",
        )
    )
    proj_outs: List[WorkflowFile] = []
    for i in range(n_parallel):
        out = WorkflowFile(f"montage/proj-{i}", size=file_size)
        proj_outs.append(out)
        wf.add_task(
            Task(
                task_id=f"montage-project-{i}",
                inputs=[split_outs[i]],
                outputs=[out],
                compute_time=compute_time,
                extra_ops=_extra(ops_per_task, 1, 1),
                stage="project",
            )
        )
    per_merge = n_parallel // n_merges
    merge_outs: List[WorkflowFile] = []
    for m in range(n_merges):
        group = proj_outs[m * per_merge : (m + 1) * per_merge]
        out = WorkflowFile(f"montage/merge-{m}", size=file_size * 4)
        merge_outs.append(out)
        wf.add_task(
            Task(
                task_id=f"montage-merge-{m}",
                inputs=group,
                outputs=[out],
                compute_time=compute_time,
                extra_ops=_extra(ops_per_task, len(group), 1),
                stage="merge",
            )
        )
    wf.add_task(
        Task(
            task_id="montage-mosaic",
            inputs=merge_outs,
            outputs=[WorkflowFile("montage/mosaic", size=file_size * 8)],
            compute_time=compute_time,
            extra_ops=_extra(ops_per_task, len(merge_outs), 1),
            stage="mosaic",
        )
    )
    assert len(wf) == 1 + n_parallel + n_merges + 1
    return wf
