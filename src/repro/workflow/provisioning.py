"""Proactive data provisioning (Section III-C / Section VII).

The paper's stated purpose for fast multi-site metadata: "By efficiently
querying the workflow's metadata, we can obtain information about data
location and data dependencies which allow to proactively move data
between nodes in distant datacenters before it is needed, keeping idle
times as low as possible" -- and, in Section VII, "tasks would learn
about remote data location early enough and could request the data to
be streamed as it is being generated".

:class:`DataProvisioner` implements the first step beyond the engine's
built-in staging: as soon as *any* producer of a waiting task finishes,
its outputs start moving toward the site where the consumer is likely
to run, overlapping WAN transfers with the remaining producers'
execution instead of serializing them after the last one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional

from repro.sim import Environment
from repro.metadata.strategies.base import MetadataStrategy
from repro.storage.transfer import TransferService
from repro.workflow.dag import Task, Workflow

__all__ = ["DataProvisioner", "PrefetchRecord"]


@dataclass(frozen=True)
class PrefetchRecord:
    """One speculative transfer decision, for post-run evaluation."""

    file: str
    target_site: str
    started_at: float
    #: Whether the consumer actually ran at the prefetched site.
    useful: Optional[bool] = None


class DataProvisioner:
    """Moves produced files toward their consumers ahead of need.

    Wired by the engine: :meth:`on_task_complete` is called whenever a
    task finishes at ``site``; the provisioner looks up the completed
    task's consumers, predicts where each will run (the data-weight
    heuristic the scheduler itself uses) and starts background
    transfers of the ready inputs toward that site.

    The prediction can be wrong -- a consumer may be spilled elsewhere
    -- so prefetching is *speculative*: it never blocks anything, and
    its hit rate is reported for the cost/benefit analysis.
    """

    def __init__(
        self,
        env: Environment,
        workflow: Workflow,
        strategy: MetadataStrategy,
        transfer: TransferService,
    ):
        self.env = env
        self.workflow = workflow
        self.strategy = strategy
        self.transfer = transfer
        #: task id -> site where it completed (observed).
        self._completed_at: Dict[str, str] = {}
        self.records: List[PrefetchRecord] = []
        self.prefetches_started = 0
        #: file -> predicted target, to evaluate usefulness later.
        self._predictions: Dict[str, str] = {}

    # -- engine hooks ------------------------------------------------------

    def on_task_complete(self, task: Task, site: str) -> None:
        """A producer finished; push its outputs toward consumers."""
        self._completed_at[task.task_id] = site
        for consumer in self.workflow.children(task):
            target = self._predict_site(consumer)
            if target is None:
                continue
            for f in task.outputs:
                if f.name in self._predictions:
                    continue  # already being prefetched
                if self.transfer.stores[target].has(f.name):
                    continue  # already there
                self._predictions[f.name] = target
                self.prefetches_started += 1
                self.records.append(
                    PrefetchRecord(f.name, target, self.env.now)
                )
                self.env.process(
                    self._prefetch(f.name, site, target),
                    name=f"prefetch-{f.name}",
                )

    def on_task_placed(self, task: Task, site: str) -> None:
        """A consumer was actually placed: score earlier predictions."""
        for f in task.inputs:
            predicted = self._predictions.get(f.name)
            if predicted is None:
                continue
            for i, rec in enumerate(self.records):
                if rec.file == f.name and rec.useful is None:
                    self.records[i] = PrefetchRecord(
                        rec.file,
                        rec.target_site,
                        rec.started_at,
                        useful=(rec.target_site == site),
                    )

    # -- internals -----------------------------------------------------------

    def _predict_site(self, consumer: Task) -> Optional[str]:
        """Predict the consumer's site: where most of its ready input
        bytes already are (mirrors the scheduler's locality weight)."""
        weight: Dict[str, float] = {}
        for parent in self.workflow.parents(consumer):
            site = self._completed_at.get(parent.task_id)
            if site is None:
                continue
            produced = sum(f.size for f in parent.outputs) or 1
            weight[site] = weight.get(site, 0.0) + produced
        if not weight:
            return None
        return max(weight.items(), key=lambda kv: kv[1])[0]

    def _prefetch(self, name: str, src_site: str, target: str) -> Generator:
        try:
            yield from self.transfer.fetch(
                name, target, known_locations=[src_site]
            )
        except Exception:  # noqa: BLE001 - speculative: never disrupt the run
            pass

    # -- reporting --------------------------------------------------------------

    @property
    def hit_rate(self) -> float:
        scored = [r for r in self.records if r.useful is not None]
        if not scored:
            return 0.0
        return sum(1 for r in scored if r.useful) / len(scored)

    def __repr__(self) -> str:
        return (
            f"<DataProvisioner prefetches={self.prefetches_started} "
            f"hit_rate={self.hit_rate:.0%}>"
        )
