"""Which strategy fits what type of workflow on what kind of deployment?

Codifies the Section VII best-match analysis:

- **centralized**: small-scale workflows -- few tens of nodes, at most
  ~500 files each, single site;
- **replicated**: average sets of very large files, infrequent metadata
  operations (the sync agent keeps up, everything is local);
- **decentralized (non-replicated)**: many small files, high degree of
  parallelism (scatter/gather), tasks and data widely distributed;
- **hybrid (decentralized + local replication)**: many small files with
  a larger proportion of *sequential* jobs (pipeline patterns), where
  consecutive tasks scheduled in the same datacenter find metadata
  locally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.metadata.controller import StrategyName
from repro.util.units import MB
from repro.workflow.dag import Workflow

__all__ = ["WorkloadProfile", "profile_workflow", "recommend_strategy"]

#: Above this mean file size the workflow counts as "very large files".
LARGE_FILE_THRESHOLD = 64 * MB
#: At or below this ops-per-task level the workflow is metadata-light.
LOW_OPS_THRESHOLD = 500
#: Parallelism ratio (max level width / total tasks) splitting
#: scatter-like from pipeline-like workflows.
PARALLEL_RATIO = 0.30


@dataclass(frozen=True)
class WorkloadProfile:
    """The features the Section VII analysis keys on."""

    n_sites: int
    n_nodes: int
    ops_per_task: float
    mean_file_size: float
    #: Fraction of tasks in the widest parallel wave.
    parallelism_ratio: float
    n_tasks: int

    def __post_init__(self):
        if self.n_sites <= 0 or self.n_nodes <= 0:
            raise ValueError("n_sites and n_nodes must be positive")
        if not 0 <= self.parallelism_ratio <= 1:
            raise ValueError("parallelism_ratio must be in [0, 1]")


def profile_workflow(
    workflow: Workflow, n_sites: int, n_nodes: int
) -> WorkloadProfile:
    """Extract a :class:`WorkloadProfile` from a workflow DAG."""
    tasks = list(workflow)
    n_tasks = len(tasks)
    if n_tasks == 0:
        raise ValueError("empty workflow")
    files = [f for t in tasks for f in list(t.inputs) + list(t.outputs)]
    mean_size = (
        sum(f.size for f in files) / len(files) if files else 0.0
    )
    widest = max(len(level) for level in workflow.levels())
    return WorkloadProfile(
        n_sites=n_sites,
        n_nodes=n_nodes,
        ops_per_task=workflow.total_metadata_ops / n_tasks,
        mean_file_size=mean_size,
        parallelism_ratio=widest / n_tasks,
        n_tasks=n_tasks,
    )


def recommend_strategy(
    profile: WorkloadProfile,
) -> Tuple[str, List[str]]:
    """Return (strategy name, human-readable reasons) for a profile.

    Decision procedure, in the paper's order of precedence:

    1. single site, or small scale -> centralized;
    2. few very large files / infrequent metadata ops -> replicated;
    3. many small files + high parallelism -> decentralized;
    4. many small files + mostly sequential -> hybrid.
    """
    reasons: List[str] = []

    if profile.n_sites == 1:
        reasons.append("single-site deployment: WAN latency is irrelevant")
        return StrategyName.CENTRALIZED, reasons
    if profile.n_nodes <= 32 and profile.ops_per_task <= LOW_OPS_THRESHOLD and (
        profile.n_tasks * profile.ops_per_task <= 16_000
    ):
        reasons.append(
            "small scale (few tens of nodes, <=500 ops/task): "
            "intra-DC latency and data/metadata proximity dominate"
        )
        return StrategyName.CENTRALIZED, reasons

    if (
        profile.mean_file_size >= LARGE_FILE_THRESHOLD
        and profile.ops_per_task <= LOW_OPS_THRESHOLD
    ):
        reasons.append(
            "few very large files with infrequent metadata operations: "
            "the synchronization agent has time to keep replicas "
            "consistent and every op stays local"
        )
        return StrategyName.REPLICATED, reasons

    if profile.parallelism_ratio >= PARALLEL_RATIO:
        reasons.append(
            "many small files with a high degree of parallelism "
            "(scatter/gather): hash partitioning preserves throughput "
            "at scale"
        )
        return StrategyName.DECENTRALIZED, reasons

    reasons.append(
        "many small files with mostly sequential (pipeline) stages: "
        "local replicas make consecutive same-site tasks' metadata "
        "reads local"
    )
    return StrategyName.HYBRID, reasons
