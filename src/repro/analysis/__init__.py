"""Analysis utilities: the Section VII strategy advisor and run metrics."""

from repro.analysis.advisor import (
    WorkloadProfile,
    recommend_strategy,
    profile_workflow,
)
from repro.analysis.export import (
    export_json,
    ops_to_records,
    workflow_result_to_dict,
)
from repro.analysis.metrics import RunMetrics, summarize_ops
from repro.analysis.monitor import RegistryMonitor, Sample
from repro.analysis.queueing import (
    closed_network_throughput,
    mm1_mean_wait,
    mm1_utilization,
    saturation_point,
    throughput_upper_bound,
)

__all__ = [
    "RegistryMonitor",
    "RunMetrics",
    "Sample",
    "WorkloadProfile",
    "closed_network_throughput",
    "export_json",
    "mm1_mean_wait",
    "mm1_utilization",
    "ops_to_records",
    "profile_workflow",
    "recommend_strategy",
    "saturation_point",
    "summarize_ops",
    "throughput_upper_bound",
    "workflow_result_to_dict",
]
