"""Aggregate metrics over operation traces and workflow results."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.metadata.stats import OpKind, OpStats

__all__ = ["RunMetrics", "summarize_ops"]


@dataclass(frozen=True)
class RunMetrics:
    """Headline numbers of one experiment run."""

    total_ops: int
    makespan: float
    throughput: float
    mean_read_latency: float
    mean_write_latency: float
    p99_latency: float
    local_fraction: float
    total_retries: int

    def as_dict(self) -> Dict[str, float]:
        return {
            "total_ops": self.total_ops,
            "makespan": self.makespan,
            "throughput": self.throughput,
            "mean_read_latency": self.mean_read_latency,
            "mean_write_latency": self.mean_write_latency,
            "p99_latency": self.p99_latency,
            "local_fraction": self.local_fraction,
            "total_retries": self.total_retries,
        }


def summarize_ops(stats: OpStats) -> RunMetrics:
    """Collapse an :class:`OpStats` trace into headline metrics."""
    return RunMetrics(
        total_ops=stats.count,
        makespan=stats.makespan(),
        throughput=stats.throughput(),
        mean_read_latency=stats.mean_latency(OpKind.READ),
        mean_write_latency=stats.mean_latency(OpKind.WRITE),
        p99_latency=stats.latency_percentile(99),
        local_fraction=stats.local_fraction,
        total_retries=stats.total_retries,
    )
