"""Analytic queueing models for validating the simulator.

The registry instances are single-server queues fed by a closed
population of clients -- a textbook *machine-repairman* (closed M/M/1//N)
system.  This module computes the analytic predictions so tests can
check the discrete-event simulator against theory:

- :func:`mm1_utilization`, :func:`mm1_mean_wait` -- open M/M/1 formulas
  for the registry under Poisson-ish load;
- :func:`closed_network_throughput` -- the classic machine-repairman
  fixed point for N clients with think time Z cycling through a server
  with mean service time S; also yields the asymptotic bound
  ``min(N / (Z + S), 1 / S)`` that explains both regimes of Fig. 7:
  the client-bound linear ramp and the server-bound plateau;
- :func:`saturation_point` -- the node count where a strategy's
  registry capacity stops the linear ramp (the knee of the paper's
  throughput curves).

These are *models of the model*: they deliberately ignore WAN jitter
and non-exponential service, so agreement within ~10-15 % is the
expected outcome (asserted in ``tests/analysis/test_queueing.py``).
"""

from __future__ import annotations

from typing import Tuple

__all__ = [
    "closed_network_throughput",
    "mm1_mean_wait",
    "mm1_utilization",
    "saturation_point",
    "throughput_upper_bound",
]


def mm1_utilization(arrival_rate: float, service_time: float) -> float:
    """Offered load rho = lambda * S of an M/M/1 server."""
    if arrival_rate < 0 or service_time <= 0:
        raise ValueError("arrival_rate >= 0 and service_time > 0 required")
    return arrival_rate * service_time


def mm1_mean_wait(arrival_rate: float, service_time: float) -> float:
    """Mean time in system (wait + service) of a stable M/M/1 queue.

    Returns ``inf`` for rho >= 1 (saturated).
    """
    rho = mm1_utilization(arrival_rate, service_time)
    if rho >= 1.0:
        return float("inf")
    return service_time / (1.0 - rho)


def throughput_upper_bound(
    n_clients: int, think_time: float, service_time: float
) -> float:
    """The two-regime asymptotic bound of a closed single-server system.

    ``min(N / (Z + S), 1 / S)``: linear in N while client-bound, capped
    at the server rate once saturated.
    """
    if n_clients <= 0:
        raise ValueError("n_clients must be positive")
    if think_time < 0 or service_time <= 0:
        raise ValueError("think_time >= 0 and service_time > 0 required")
    return min(
        n_clients / (think_time + service_time), 1.0 / service_time
    )


def closed_network_throughput(
    n_clients: int, think_time: float, service_time: float
) -> Tuple[float, float]:
    """Exact machine-repairman throughput and mean response time.

    N clients cycle: think for Z (exponential), then queue at one
    exponential server with mean S.  Uses the standard recursive MVA
    (mean value analysis) for a closed network with one queueing
    station and one delay station.

    Returns ``(throughput, mean_response_time_at_server)``.
    """
    if n_clients <= 0:
        raise ValueError("n_clients must be positive")
    if think_time < 0 or service_time <= 0:
        raise ValueError("think_time >= 0 and service_time > 0 required")
    q = 0.0  # mean queue length at the server
    throughput = 0.0
    response = service_time
    for n in range(1, n_clients + 1):
        response = service_time * (1.0 + q)
        throughput = n / (think_time + response)
        q = throughput * response
    return throughput, response


def saturation_point(think_time: float, service_time: float) -> float:
    """The client count N* where the two asymptotes of the closed
    system cross: ``N* = (Z + S) / S``.

    Below N* the system is client-bound (throughput ~ N / (Z+S));
    above, server-bound (throughput ~ 1/S).  For the paper's Fig. 7:
    with a remote-op think time of ~100 ms and ~3 ms of service, the
    centralized instance saturates around N* ~ 35 clients -- which is
    why its curve flattens right past the 32-node run.
    """
    if think_time < 0 or service_time <= 0:
        raise ValueError("think_time >= 0 and service_time > 0 required")
    return (think_time + service_time) / service_time
