"""Result export: persist experiment outcomes as JSON.

Experiments produce rich in-memory objects (op traces, per-task
records, figure series); this module flattens them to JSON documents
so results can be archived, diffed across calibrations and loaded into
external analysis stacks.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Union

from repro.analysis.metrics import summarize_ops
from repro.metadata.stats import OpStats
from repro.workflow.engine import TaskResult, WorkflowResult

__all__ = [
    "export_json",
    "ops_to_records",
    "workflow_result_to_dict",
]


def ops_to_records(stats: OpStats, limit: int = 0) -> List[Dict[str, Any]]:
    """Flatten an op trace to dicts (optionally only the first N)."""
    records = stats.records[:limit] if limit else stats.records
    return [
        {
            "kind": r.kind.value,
            "key": r.key,
            "site": r.site,
            "started_at": r.started_at,
            "finished_at": r.finished_at,
            "latency": r.latency,
            "local": r.local,
            "found": r.found,
            "retries": r.retries,
            "run": r.run,
        }
        for r in records
    ]


def _task_result_to_dict(r: TaskResult) -> Dict[str, Any]:
    return {
        "task_id": r.task_id,
        "vm": r.vm,
        "site": r.site,
        "started_at": r.started_at,
        "finished_at": r.finished_at,
        "duration": r.duration,
        "metadata_time": r.metadata_time,
        "transfer_time": r.transfer_time,
        "compute_time": r.compute_time,
    }


def workflow_result_to_dict(
    result: WorkflowResult, include_ops: bool = False
) -> Dict[str, Any]:
    """Flatten a workflow run, with headline op metrics always included."""
    doc: Dict[str, Any] = {
        "workflow": result.workflow,
        "strategy": result.strategy,
        "makespan": result.makespan,
        "total_metadata_time": result.total_metadata_time,
        "total_transfer_time": result.total_transfer_time,
        "tasks_per_site": result.tasks_per_site(),
        "tasks": [_task_result_to_dict(r) for r in result.task_results],
    }
    if result.ops is not None:
        doc["op_metrics"] = summarize_ops(result.ops).as_dict()
        if include_ops:
            doc["ops"] = ops_to_records(result.ops)
    return doc


def workload_result_to_dict(result: Any) -> Dict[str, Any]:
    """Flatten a :class:`~repro.workload.result.WorkloadResult`.

    Takes the result duck-typed (no import: the workload layer sits
    above analysis in the package layering).
    """
    return {
        "name": result.name,
        "strategy": result.strategy,
        "scheduler": result.scheduler,
        "admission": result.admission,
        "mode": result.mode,
        "makespan": result.makespan,
        "peak_in_flight": result.peak_in_flight,
        "admission_bound": result.admission_bound,
        "total_ops": result.total_ops,
        "wan_bytes": result.wan_bytes,
        "jain_fairness": result.jain_fairness(),
        "makespan_by_tenant": result.makespan_by_tenant(),
        "queue_wait_by_tenant": result.queue_wait_by_tenant(),
        "slowdown_by_tenant": result.slowdown_by_tenant(),
        "instances": [
            {
                "tenant": r.tenant,
                "application": r.application,
                "run": r.run,
                "submitted_at": r.submitted_at,
                "admitted_at": r.admitted_at,
                "finished_at": r.finished_at,
                "queue_wait": r.queue_wait,
                "makespan": r.makespan,
                "result": workflow_result_to_dict(r.result),
            }
            for r in result.records
        ],
    }


def export_json(obj: Any, path: Union[str, Path]) -> None:
    """Write any JSON-compatible document (or a result object) to disk."""
    if isinstance(obj, WorkflowResult):
        obj = workflow_result_to_dict(obj)
    elif hasattr(obj, "records") and hasattr(obj, "jain_fairness"):
        obj = workload_result_to_dict(obj)
    Path(path).write_text(
        json.dumps(obj, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
