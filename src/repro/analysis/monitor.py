"""Runtime monitoring: time-series sampling of the metadata service.

Samples registry queue lengths, utilizations and replication backlogs
on a fixed simulated-time cadence, producing the timelines behind the
paper's saturation narratives (e.g. the centralized registry's queue
growing without bound in Fig. 5, or the sync agent falling behind past
32 nodes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional

import numpy as np

from repro.sim import Environment
from repro.metadata.strategies.base import MetadataStrategy

__all__ = ["RegistryMonitor", "Sample"]


@dataclass(frozen=True)
class Sample:
    """One sampling instant across all registry instances."""

    at: float
    #: site -> pending requests at the instance.
    queue_lengths: Dict[str, int]
    #: site -> cumulative utilization (busy fraction so far).
    utilizations: Dict[str, float]
    #: total replication/synchronization backlog (entries).
    propagation_backlog: int


class RegistryMonitor:
    """Samples a strategy's registries every ``interval`` sim-seconds.

    Start it before the workload, stop (or just stop sampling) after::

        mon = RegistryMonitor(env, strategy, interval=1.0)
        ... run workload ...
        mon.stop()
        print(mon.peak_queue_length("west-europe"))
    """

    def __init__(
        self,
        env: Environment,
        strategy: MetadataStrategy,
        interval: float = 1.0,
    ):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.env = env
        self.strategy = strategy
        self.interval = interval
        self.samples: List[Sample] = []
        self._stopped = False
        env.process(self._run(), name="registry-monitor")

    def stop(self) -> None:
        self._stopped = True

    def _run(self) -> Generator:
        while not self._stopped:
            self.samples.append(self._sample())
            yield self.env.timeout(self.interval)

    def _sample(self) -> Sample:
        backlog = 0
        pumps = getattr(self.strategy, "pumps", None)
        if pumps:
            backlog += sum(p.backlog for p in pumps.values())
        agent = getattr(self.strategy, "agent", None)
        if agent is not None:
            backlog += agent.lag
        return Sample(
            at=self.env.now,
            queue_lengths={
                site: reg.queue_length
                for site, reg in self.strategy.registries.items()
            },
            utilizations={
                site: reg.utilization()
                for site, reg in self.strategy.registries.items()
            },
            propagation_backlog=backlog,
        )

    # -- post-run analysis -------------------------------------------------

    def peak_queue_length(self, site: Optional[str] = None) -> int:
        """Max observed queue length, per site or across all."""
        if not self.samples:
            return 0
        if site is not None:
            return max(s.queue_lengths.get(site, 0) for s in self.samples)
        return max(
            max(s.queue_lengths.values(), default=0) for s in self.samples
        )

    def mean_backlog(self) -> float:
        if not self.samples:
            return 0.0
        return float(
            np.mean([s.propagation_backlog for s in self.samples])
        )

    def peak_backlog(self) -> int:
        if not self.samples:
            return 0
        return max(s.propagation_backlog for s in self.samples)

    def queue_timeline(self, site: str) -> List[tuple]:
        """(time, queue length) pairs for one site."""
        return [
            (s.at, s.queue_lengths.get(site, 0)) for s in self.samples
        ]

    def saturation_onset(self, site: str, threshold: int = 5) -> Optional[float]:
        """First sampling time the site's queue exceeded ``threshold``."""
        for s in self.samples:
            if s.queue_lengths.get(site, 0) > threshold:
                return s.at
        return None

    def __len__(self) -> int:
        return len(self.samples)
