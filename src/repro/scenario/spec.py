"""Declarative scenario specs: one validated description per experiment.

The paper's contribution is a comparison *matrix* -- metadata strategies
crossed with deployments, placement policies and workloads -- and before
this module every axis of that matrix travelled through a different
ad-hoc channel (``MetadataConfig.from_*_args`` classmethods, a dozen
``Deployment`` keywords, ~25 CLI flags, per-figure plumbing).  A
:class:`ScenarioSpec` is the single composable description of "a
scenario": a frozen dataclass tree that is

- **validated once** (:meth:`ScenarioSpec.validate` owns every
  cross-field rule: policy-specific knobs are rejected under other
  policies, fair-only WAN knobs under the slot model, workload-only
  knobs in single-workflow mode);
- **serializable** (``to_dict``/``from_dict`` and a JSON round-trip
  that is exactly identity, so every run is reproducible from a file
  artifact -- see ``repro.cli run --spec/--dump-spec``);
- **functionally composable** (:meth:`ScenarioSpec.replace` accepts
  dotted paths like ``"scheduler.name"`` so sweeps derive variant
  specs without mutating anything);
- **runnable** (:meth:`ScenarioSpec.run` builds the deployment --
  always on a *fresh* topology, never mutating a shared one -- wires
  fault injectors, dispatches to the right execution surface and
  collects stats; see ``repro.scenario.runner``).

Three execution surfaces cover every experiment shape in the repo:
``"workflow"`` (one DAG through the workflow engine), ``"synthetic"``
(the Section VI-B reader/writer benchmark behind Figs. 5-8) and
``"workload"`` (the multi-tenant layer, with an embedded
:class:`~repro.workload.spec.WorkloadSpec`).  See ``docs/scenarios.md``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.cloud.network import BANDWIDTH_MODELS
from repro.cloud.presets import (
    AZURE_4DC,
    HETERO_FANOUT_SITES,
    azure_4dc_topology,
    heterogeneous_fanout_topology,
    make_topology,
)
from repro.cloud.topology import CloudTopology
from repro.elastic.policies import ELASTICITY_NAMES
from repro.metadata.config import MetadataConfig
from repro.metadata.controller import STRATEGIES, StrategyName
from repro.obs import TRACE_CATEGORIES
from repro.scenario.slo import SLOSpec
from repro.scheduling import SCHEDULER_NAMES
from repro.util.units import MB
from repro.workflow.applications import buzzflow, montage
from repro.workload.admission import ADMISSION_NAMES
from repro.workload.spec import WorkloadSpec

__all__ = [
    "ElasticitySpec",
    "FAULT_KINDS",
    "FaultSpec",
    "NetworkSpec",
    "ObservabilitySpec",
    "SLOSpec",
    "SURFACES",
    "ScenarioSpec",
    "SchedulerSpec",
    "StrategySpec",
    "TOPOLOGY_PRESETS",
    "TopologySpec",
    "WORKFLOW_APPLICATIONS",
    "WORKFLOW_BUILDERS",
    "config_from_specs",
]

#: Recognized topology presets (see ``repro.cloud.presets``).
TOPOLOGY_PRESETS: Tuple[str, ...] = ("azure_4dc", "hetero_fanout", "uniform")

#: Execution surfaces a scenario can dispatch to.
SURFACES: Tuple[str, ...] = ("workflow", "synthetic", "workload")

#: Applications the single-workflow surface can build (the paper's two
#: real DAGs; arbitrary DAGs come in via ``workflow_file``).  The one
#: name -> builder mapping every consumer (validation, the scenario
#: runner, the CLI) derives from.
WORKFLOW_BUILDERS = {"buzzflow": buzzflow, "montage": montage}

#: Recognized workflow-surface application names, in a stable order.
WORKFLOW_APPLICATIONS: Tuple[str, ...] = tuple(sorted(WORKFLOW_BUILDERS))

#: Recognized fault kinds (see ``repro.cloud.faults``).
FAULT_KINDS: Tuple[str, ...] = (
    "site_outage",
    "region_outage",
    "link_flap",
    "latency_spike",
)


def _check_keys(label: str, data: Mapping, allowed) -> None:
    unknown = sorted(set(data) - set(allowed))
    if unknown:
        raise ValueError(f"unknown {label} keys: {unknown}")


def _sub_from_dict(cls, data: Mapping):
    _check_keys(cls.__name__, data, (f.name for f in dataclasses.fields(cls)))
    return cls(**data)


@dataclass(frozen=True)
class TopologySpec:
    """Which site layout to build -- always *fresh* per run.

    ``Scenario.run`` never hands a previously-used
    :class:`~repro.cloud.topology.CloudTopology` object to a deployment:
    site-cap and fault-latency edits mutate topologies in place, so a
    shared one would leak state between runs.  Building from a preset
    name sidesteps the footgun entirely (and
    :meth:`CloudTopology.copy <repro.cloud.topology.CloudTopology.copy>`
    exists for callers holding a concrete topology).

    Attributes
    ----------
    preset:
        ``"azure_4dc"`` (the paper's testbed), ``"hetero_fanout"`` (the
        scheduler-comparison WAN where proximity and capacity disagree)
        or ``"uniform"`` (synthetic latency classes over ``sites``).
    jitter:
        ``azure_4dc`` only: sample latency jitter (the other presets
        are deterministic by construction).
    wan_bandwidth_mb:
        ``azure_4dc``/``uniform``: override every WAN link's bandwidth
        (megabytes/s); ``None`` keeps the preset default.
    hub_egress_mb:
        ``hetero_fanout`` only: aggregate egress cap of the ``hub``
        site (megabytes/s; enforced by the fair bandwidth model).
    sites / regions:
        ``uniform`` only: site names, plus optional ``(site, region)``
        pairs grouping them (unlisted sites get singleton regions).
    """

    preset: str = "azure_4dc"
    jitter: bool = True
    wan_bandwidth_mb: Optional[float] = None
    hub_egress_mb: Optional[float] = None
    sites: Optional[Tuple[str, ...]] = None
    regions: Optional[Tuple[Tuple[str, str], ...]] = None

    def __post_init__(self):
        if self.sites is not None:
            object.__setattr__(self, "sites", tuple(self.sites))
        if self.regions is not None:
            object.__setattr__(
                self,
                "regions",
                tuple((pair[0], pair[1]) for pair in self.regions),
            )

    def validate(self) -> None:
        if self.preset not in TOPOLOGY_PRESETS:
            raise ValueError(
                f"unknown topology preset {self.preset!r}; expected one "
                f"of {TOPOLOGY_PRESETS}"
            )
        if self.hub_egress_mb is not None:
            if self.preset != "hetero_fanout":
                raise ValueError(
                    "hub_egress_mb is a hetero_fanout-preset knob"
                )
            if self.hub_egress_mb <= 0:
                raise ValueError("hub_egress_mb must be positive")
        if self.wan_bandwidth_mb is not None:
            if self.preset == "hetero_fanout":
                raise ValueError(
                    "wan_bandwidth_mb does not apply to hetero_fanout "
                    "(its thin/fat link classes are fixed)"
                )
            if self.wan_bandwidth_mb <= 0:
                raise ValueError("wan_bandwidth_mb must be positive")
        if not self.jitter and self.preset != "azure_4dc":
            raise ValueError(
                "jitter is an azure_4dc-preset knob (the other presets "
                "are always jitter-free)"
            )
        if self.preset == "uniform":
            if not self.sites:
                raise ValueError("the uniform preset needs sites")
            if len(set(self.sites)) != len(self.sites):
                raise ValueError(f"duplicate sites in {self.sites}")
            for site, _region in self.regions or ():
                if site not in self.sites:
                    raise ValueError(
                        f"regions names unknown site {site!r}"
                    )
        elif self.sites is not None or self.regions is not None:
            raise ValueError("sites/regions are uniform-preset knobs")

    def site_names(self) -> Tuple[str, ...]:
        """Site names of the topology this spec builds, in order."""
        if self.preset == "azure_4dc":
            return AZURE_4DC
        if self.preset == "hetero_fanout":
            return HETERO_FANOUT_SITES
        return self.sites or ()

    def region_names(self) -> Tuple[str, ...]:
        """Region tags of the topology this spec builds, sorted.

        What a ``region_outage`` fault's ``region`` may name (mirrors
        :meth:`CloudTopology.sites_in_region
        <repro.cloud.topology.CloudTopology.sites_in_region>`
        resolution, including the singleton ``region-<site>`` tags the
        uniform preset assigns to unlisted sites).
        """
        if self.preset == "azure_4dc":
            return ("europe", "us")
        if self.preset == "hetero_fanout":
            return ("hetero",)
        listed = dict(self.regions or ())
        return tuple(
            sorted(
                {
                    listed.get(site, f"region-{site}")
                    for site in self.sites or ()
                }
            )
        )

    def build(self) -> CloudTopology:
        """Construct a fresh topology (never a shared/mutated one)."""
        if self.preset == "azure_4dc":
            kwargs: Dict[str, Any] = {"jitter": self.jitter}
            if self.wan_bandwidth_mb is not None:
                kwargs["wan_bandwidth"] = self.wan_bandwidth_mb * MB
            return azure_4dc_topology(**kwargs)
        if self.preset == "hetero_fanout":
            return heterogeneous_fanout_topology(
                hub_egress_bw=(
                    self.hub_egress_mb * MB
                    if self.hub_egress_mb is not None
                    else None
                )
            )
        kwargs = {}
        if self.wan_bandwidth_mb is not None:
            kwargs["wan_bandwidth"] = self.wan_bandwidth_mb * MB
        return make_topology(
            list(self.sites or ()),
            regions=dict(self.regions) if self.regions else None,
            **kwargs,
        )


@dataclass(frozen=True)
class NetworkSpec:
    """WAN bandwidth-sharing model plus its fair-model-only knobs.

    ``bandwidth_model=None`` keeps the deployment default (``"slots"``,
    the seed-exact model).  The caps/weights are enforced by the
    flow-level fair model only, so pinning them under any other model
    is rejected -- silently producing uncapped slots numbers would
    masquerade as a capped run (see ``docs/network-model.md``).
    """

    bandwidth_model: Optional[str] = None
    egress_cap_mb: Optional[float] = None
    ingress_cap_mb: Optional[float] = None
    rpc_flow_weight: float = 1.0
    transfer_flow_weight: float = 1.0

    def validate(self) -> None:
        if self.bandwidth_model is not None and (
            self.bandwidth_model not in BANDWIDTH_MODELS
        ):
            raise ValueError(
                f"bandwidth_model must be None or one of {BANDWIDTH_MODELS}"
            )
        fair_only_knobs = (
            self.egress_cap_mb is not None
            or self.ingress_cap_mb is not None
            or self.rpc_flow_weight != 1.0
        )
        if fair_only_knobs and self.bandwidth_model != "fair":
            raise ValueError(
                "--egress-cap-mb/--ingress-cap-mb/--rpc-flow-weight "
                "require --bandwidth-model fair"
            )
        if self.transfer_flow_weight != 1.0 and self.bandwidth_model != "fair":
            raise ValueError(
                "transfer_flow_weight requires bandwidth_model='fair'"
            )
        if self.egress_cap_mb is not None and self.egress_cap_mb <= 0:
            raise ValueError("egress_cap_mb must be positive")
        if self.ingress_cap_mb is not None and self.ingress_cap_mb <= 0:
            raise ValueError("ingress_cap_mb must be positive")
        if self.rpc_flow_weight <= 0:
            raise ValueError("rpc_flow_weight must be positive")
        if self.transfer_flow_weight <= 0:
            raise ValueError("transfer_flow_weight must be positive")


@dataclass(frozen=True)
class StrategySpec:
    """Which metadata strategy runs the registry, plus its key knobs.

    ``name`` accepts the canonical names and the paper-figure aliases
    (``dn``, ``dr``, ``baseline``, ...).  The remaining fields are the
    strategy knobs experiments actually vary; anything finer-grained
    stays on :class:`~repro.metadata.config.MetadataConfig`.
    """

    name: str = "hybrid"
    home_site: Optional[str] = None
    hybrid_sync_replication: bool = False
    write_lookup: bool = False
    sync_period: Optional[float] = None

    @property
    def canonical_name(self) -> str:
        return StrategyName.canonical(self.name)

    def validate(self) -> None:
        if self.canonical_name not in STRATEGIES:
            raise ValueError(
                f"unknown strategy {self.name!r}; available: "
                f"{sorted(STRATEGIES)}"
            )
        if self.sync_period is not None and self.sync_period <= 0:
            raise ValueError("sync_period must be positive")


@dataclass(frozen=True)
class SchedulerSpec:
    """Task-placement policy plus its policy-specific knobs.

    ``name=None`` keeps the engine default (``"locality"``, the
    paper's bit-for-bit heuristic).  The hybrid coefficients act only
    under ``hybrid`` and the pending penalty only under
    ``bandwidth_aware``/``hybrid``; pinning them under any other policy
    is rejected -- silently accepting them would masquerade as a tuned
    run (see ``docs/scheduling.md``).
    """

    name: Optional[str] = None
    hybrid_locality_weight: float = 1.0
    hybrid_load_weight: float = 1.0
    hybrid_transfer_weight: float = 1.0
    bw_pending_penalty: float = 1.0
    input_site: Optional[str] = None

    def validate(self) -> None:
        if self.name is not None and self.name not in SCHEDULER_NAMES:
            raise ValueError(
                f"scheduler must be None or one of {SCHEDULER_NAMES}"
            )
        hybrid_knobs = (
            self.hybrid_locality_weight != 1.0
            or self.hybrid_load_weight != 1.0
            or self.hybrid_transfer_weight != 1.0
        )
        if hybrid_knobs and self.name != "hybrid":
            raise ValueError(
                "--hybrid-locality-weight/--hybrid-load-weight/"
                "--hybrid-transfer-weight require --scheduler hybrid"
            )
        if self.bw_pending_penalty != 1.0 and self.name not in (
            "bandwidth_aware",
            "hybrid",
        ):
            raise ValueError(
                "--bw-pending-penalty requires --scheduler "
                "bandwidth_aware (or hybrid)"
            )
        for label in (
            "hybrid_locality_weight",
            "hybrid_load_weight",
            "hybrid_transfer_weight",
            "bw_pending_penalty",
        ):
            if getattr(self, label) < 0:
                raise ValueError(f"{label} must be >= 0")


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault (see ``repro.cloud.faults``).

    Kinds and their fields:

    - ``site_outage``: ``site`` + ``start``/``duration`` -- registry
      slots held, fair flows through the site torn down;
    - ``region_outage``: ``sites`` tuple *or* ``region`` tag +
      ``start``/``duration`` -- correlated multi-site outage, one
      batched teardown;
    - ``link_flap``: ``link`` pair + ``times`` (absolute sim instants)
      -- transient flaps killing in-flight fair flows, no down window;
    - ``latency_spike``: ``link`` pair + ``start``/``duration`` +
      ``factor`` -- a brown-out inflating one link's latency.

    Fields that belong to a different kind are rejected, mirroring the
    policy-knob validation elsewhere in the spec tree.
    """

    kind: str
    start: float = 0.0
    duration: float = 0.0
    site: Optional[str] = None
    sites: Optional[Tuple[str, ...]] = None
    region: Optional[str] = None
    link: Optional[Tuple[str, str]] = None
    times: Optional[Tuple[float, ...]] = None
    factor: float = 10.0

    def __post_init__(self):
        for name in ("sites", "link", "times"):
            value = getattr(self, name)
            if value is not None:
                object.__setattr__(self, name, tuple(value))

    def _forbid(self, *names: str) -> None:
        for name in names:
            if getattr(self, name) is not None:
                raise ValueError(
                    f"{name} does not apply to {self.kind} faults"
                )

    def validate(self, site_names: Optional[Tuple[str, ...]] = None) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{FAULT_KINDS}"
            )
        if self.start < 0:
            raise ValueError("fault start must be >= 0")
        if self.kind == "site_outage":
            self._forbid("sites", "region", "link", "times")
            if self.site is None:
                raise ValueError("site_outage needs a site")
            if self.duration <= 0:
                raise ValueError("site_outage duration must be positive")
        elif self.kind == "region_outage":
            self._forbid("site", "link", "times")
            if (self.sites is None) == (self.region is None):
                raise ValueError(
                    "region_outage needs exactly one of sites or region"
                )
            if self.sites is not None and not self.sites:
                raise ValueError("region_outage sites must be non-empty")
            if self.duration <= 0:
                raise ValueError("region_outage duration must be positive")
        elif self.kind == "link_flap":
            self._forbid("site", "sites", "region")
            if self.link is None:
                raise ValueError("link_flap needs a link (a, b)")
            if not self.times:
                raise ValueError("link_flap needs at least one flap time")
            if any(t < 0 for t in self.times):
                raise ValueError("link_flap times must be >= 0")
            if self.duration:
                raise ValueError(
                    "duration does not apply to link_flap faults "
                    "(flaps are instantaneous)"
                )
        else:  # latency_spike
            self._forbid("site", "sites", "region", "times")
            if self.link is None:
                raise ValueError("latency_spike needs a link (a, b)")
            if self.duration <= 0:
                raise ValueError("latency_spike duration must be positive")
            if self.factor <= 0:
                raise ValueError("latency_spike factor must be positive")
        if self.link is not None:
            if len(self.link) != 2 or self.link[0] == self.link[1]:
                raise ValueError(
                    f"link must name two distinct sites, got {self.link}"
                )
        if site_names is not None:
            named = []
            if self.site is not None:
                named.append(self.site)
            named.extend(self.sites or ())
            named.extend(self.link or ())
            for site in named:
                if site not in site_names:
                    raise ValueError(
                        f"fault {self.kind!r} names unknown site "
                        f"{site!r}; topology has {list(site_names)}"
                    )


@dataclass(frozen=True)
class ObservabilitySpec:
    """Tracing + metrics plane configuration (see ``repro.obs``).

    Disabled by default: a run with ``enabled=False`` attaches no
    tracer at all, keeping the kernel hot paths on their no-op fast
    path.  Because the tracer only *observes* (it schedules no events
    and consumes no randomness), this block is deliberately **excluded
    from** :meth:`ScenarioSpec.canonical_json` / ``spec_hash`` -- the
    same experiment traced and untraced stores under the same artifact
    key.

    Attributes
    ----------
    enabled:
        Master switch.  The remaining knobs require it (pinning
        sampling detail on a disabled tracer would masquerade as an
        observed run).
    categories:
        Subset of :data:`repro.obs.TRACE_CATEGORIES` to record;
        ``None`` means all of them.
    sample_interval:
        Simulated seconds between counter/gauge time-series samples.
    max_events:
        Retained event/span cap; beyond it events are counted as
        dropped, bounding trace memory.
    histogram_capacity:
        Reservoir size per streaming histogram (quantiles are exact up
        to this many observations; see ``docs/observability.md``).
    """

    enabled: bool = False
    categories: Optional[Tuple[str, ...]] = None
    sample_interval: float = 1.0
    max_events: int = 1_000_000
    histogram_capacity: int = 2048

    def __post_init__(self):
        if self.categories is not None:
            object.__setattr__(self, "categories", tuple(self.categories))

    def validate(self) -> None:
        if self.categories is not None:
            if not self.categories:
                raise ValueError(
                    "categories must be None (all) or a non-empty tuple"
                )
            unknown = sorted(set(self.categories) - set(TRACE_CATEGORIES))
            if unknown:
                raise ValueError(
                    f"unknown trace categories {unknown}; expected a "
                    f"subset of {list(TRACE_CATEGORIES)}"
                )
        if self.sample_interval <= 0:
            raise ValueError("sample_interval must be positive")
        if self.max_events <= 0:
            raise ValueError("max_events must be positive")
        if self.histogram_capacity < 5:
            raise ValueError(
                "histogram_capacity must be >= 5 (quantile sketches "
                "need at least five retained points)"
            )
        if not self.enabled and (
            self.categories is not None
            or self.sample_interval != 1.0
            or self.max_events != 1_000_000
            or self.histogram_capacity != 2048
        ):
            # The spec tree's masquerade guard: tuning a tracer that
            # records nothing would silently present as an observed run.
            raise ValueError(
                "observability knobs require enabled=True"
            )


@dataclass(frozen=True)
class ElasticitySpec:
    """Elastic provisioning control plane (see ``repro.elastic``).

    Disabled by default: a run with ``enabled=False`` constructs no
    controller, schedules no control-loop events and draws no
    randomness, so every pre-elasticity golden stays bit-for-bit.
    Unlike ``observability``/``slo`` this block **participates in**
    ``spec_hash`` when enabled -- an autoscaled run simulates a
    genuinely different system than a static one -- while a disabled
    block is dropped from the canonical form so existing artifact keys
    never move.

    Attributes
    ----------
    enabled:
        Master switch.  Every other knob requires it (a tuned but
        disabled autoscaler would masquerade as an elastic run).
    policy:
        Decision kernel: ``threshold`` (queue-depth hysteresis bands),
        ``slo_debt`` (scale when projected deadline debt crosses
        ``debt_budget_s``) or ``predictive`` (EWMA arrival-rate
        forecast, pre-provisions ahead of ramps).
    interval_s:
        Control-loop period (simulated seconds between decisions).
    lag_s:
        Provisioning lag: ordered capacity becomes placeable this many
        seconds after the decision.
    warmup_s / warmup_factor:
        Warm-up cost: a freshly provisioned VM's computes are stretched
        by ``warmup_factor`` until ``warmup_s`` after arrival.
    min_vms_per_site / max_vms_per_site:
        Hard fleet bounds every policy's actions are clamped to.
    scale_step:
        VMs added per scale-up decision (drains shed at most this
        many, most policies shed one).
    cooldown_s:
        Per-site dwell time after any action before the next one.
    up_threshold / down_threshold:
        ``threshold`` policy's hysteresis band (tasks per effective
        VM); ``slo_debt`` reuses ``down_threshold`` as its quiet-fleet
        bar.  Must satisfy ``down < up``.
    debt_budget_s:
        ``slo_debt`` only: projected debt (seconds) that triggers a
        scale-up.
    ewma_alpha / target_task_s:
        ``predictive`` only: EWMA smoothing factor and the per-instance
        service-demand estimate (vm-seconds) its Little's-law fleet
        sizing uses.
    cost_rates:
        ``(site_class, rate)`` pairs pricing vm-seconds per site class
        (the datacenter's region tag); unlisted classes bill at 1.0.
    """

    enabled: bool = False
    policy: str = "threshold"
    interval_s: float = 5.0
    lag_s: float = 30.0
    warmup_s: float = 0.0
    warmup_factor: float = 2.0
    min_vms_per_site: int = 1
    max_vms_per_site: int = 8
    scale_step: int = 1
    cooldown_s: float = 0.0
    up_threshold: float = 2.0
    down_threshold: float = 0.25
    debt_budget_s: float = 5.0
    ewma_alpha: float = 0.3
    target_task_s: float = 30.0
    cost_rates: Tuple[Tuple[str, float], ...] = ()

    def __post_init__(self):
        object.__setattr__(
            self,
            "cost_rates",
            tuple((str(c), float(r)) for c, r in self.cost_rates),
        )

    def validate(self) -> None:
        if self.policy not in ELASTICITY_NAMES:
            raise ValueError(
                f"unknown elasticity policy {self.policy!r}; expected "
                f"one of {ELASTICITY_NAMES}"
            )
        if not self.enabled:
            if self != ElasticitySpec():
                # The spec tree's masquerade guard: a tuned autoscaler
                # that never acts would present as an elastic run.
                raise ValueError(
                    "elasticity knobs require enabled=True"
                )
            return
        if self.interval_s <= 0:
            raise ValueError("elasticity.interval_s must be positive")
        if self.lag_s < 0:
            raise ValueError("elasticity.lag_s must be >= 0")
        if self.warmup_s < 0:
            raise ValueError("elasticity.warmup_s must be >= 0")
        if self.warmup_factor < 1.0:
            raise ValueError(
                "elasticity.warmup_factor must be >= 1 (warm-up slows "
                "a VM down, it cannot speed one up)"
            )
        if self.min_vms_per_site < 1:
            raise ValueError(
                "elasticity.min_vms_per_site must be >= 1 (draining a "
                "site to zero would strand its queue)"
            )
        if self.max_vms_per_site < self.min_vms_per_site:
            raise ValueError(
                "elasticity.max_vms_per_site must be >= min_vms_per_site"
            )
        if self.scale_step < 1:
            raise ValueError("elasticity.scale_step must be >= 1")
        if self.cooldown_s < 0:
            raise ValueError("elasticity.cooldown_s must be >= 0")
        if self.down_threshold < 0 or self.up_threshold <= self.down_threshold:
            raise ValueError(
                "elasticity thresholds must satisfy "
                "0 <= down_threshold < up_threshold (the gap is the "
                "hysteresis band)"
            )
        if self.debt_budget_s < 0:
            raise ValueError("elasticity.debt_budget_s must be >= 0")
        if not 0 < self.ewma_alpha <= 1:
            raise ValueError("elasticity.ewma_alpha must be in (0, 1]")
        if self.target_task_s <= 0:
            raise ValueError("elasticity.target_task_s must be positive")
        # Policy-specific knobs are rejected under other policies, like
        # the scheduler/admission sub-specs: a tuned-but-unread knob
        # would masquerade as a tuned run.
        if self.up_threshold != 2.0 and self.policy != "threshold":
            raise ValueError(
                "elasticity.up_threshold requires policy='threshold'"
            )
        if self.down_threshold != 0.25 and self.policy not in (
            "threshold",
            "slo_debt",
        ):
            raise ValueError(
                "elasticity.down_threshold requires policy='threshold' "
                "(or 'slo_debt')"
            )
        if self.debt_budget_s != 5.0 and self.policy != "slo_debt":
            raise ValueError(
                "elasticity.debt_budget_s requires policy='slo_debt'"
            )
        if (
            self.ewma_alpha != 0.3 or self.target_task_s != 30.0
        ) and self.policy != "predictive":
            raise ValueError(
                "elasticity.ewma_alpha/target_task_s require "
                "policy='predictive'"
            )
        seen = set()
        for cls, rate in self.cost_rates:
            if not cls:
                raise ValueError("elasticity.cost_rates needs class names")
            if cls in seen:
                raise ValueError(
                    f"elasticity.cost_rates repeats class {cls!r}"
                )
            seen.add(cls)
            if rate <= 0:
                raise ValueError(
                    f"elasticity cost rate for {cls!r} must be positive"
                )


def _validate_admission_knobs(
    admission: Optional[str],
    max_in_flight: Optional[int],
    token_rate: Optional[float],
    token_burst: Optional[int],
) -> None:
    """The workload-policy knob rules shared by spec and legacy paths."""
    if max_in_flight is not None and admission != "max_in_flight":
        raise ValueError(
            "--max-in-flight requires --admission max_in_flight"
        )
    if (
        token_rate is not None or token_burst is not None
    ) and admission != "token_bucket":
        raise ValueError(
            "--token-rate/--token-burst require "
            "--admission token_bucket"
        )
    if admission is not None and admission not in ADMISSION_NAMES:
        raise ValueError(
            f"admission must be None or one of {ADMISSION_NAMES}"
        )
    if max_in_flight is not None and max_in_flight <= 0:
        raise ValueError("max_in_flight must be positive")
    if token_rate is not None and token_rate <= 0:
        raise ValueError("token_rate must be positive")
    if token_burst is not None and token_burst < 1:
        raise ValueError("token_burst must be >= 1")


def config_from_specs(
    network: Optional[NetworkSpec] = None,
    scheduler: Optional[SchedulerSpec] = None,
    admission: Optional[str] = None,
    max_in_flight: Optional[int] = None,
    token_rate: Optional[float] = None,
    token_burst: Optional[int] = None,
    base: Optional[MetadataConfig] = None,
) -> Optional[MetadataConfig]:
    """Fold validated spec components into a :class:`MetadataConfig`.

    The single successor of the deprecated
    ``MetadataConfig.from_network_args`` / ``from_scheduler_args`` /
    ``from_workload_args`` classmethods (which now delegate here):
    each component is validated, and contributes its fields on top of
    ``base`` only when it actually pins something.  Returns ``base``
    unchanged (possibly ``None``) when nothing is pinned, so callers
    keep their defaults -- a ``None`` config stays ``None``.
    """
    config = base
    if network is not None:
        network.validate()
        if network.bandwidth_model is not None:
            config = MetadataConfig(
                **{
                    **(config.__dict__ if config is not None else {}),
                    "bandwidth_model": network.bandwidth_model,
                    "site_egress_bw": (
                        network.egress_cap_mb * MB
                        if network.egress_cap_mb is not None
                        else None
                    ),
                    "site_ingress_bw": (
                        network.ingress_cap_mb * MB
                        if network.ingress_cap_mb is not None
                        else None
                    ),
                    "rpc_flow_weight": network.rpc_flow_weight,
                    "transfer_flow_weight": network.transfer_flow_weight,
                }
            )
    if scheduler is not None:
        scheduler.validate()
        if scheduler.name is not None:
            config = MetadataConfig(
                **{
                    **(config.__dict__ if config is not None else {}),
                    "scheduler": scheduler.name,
                    "hybrid_locality_weight": scheduler.hybrid_locality_weight,
                    "hybrid_load_weight": scheduler.hybrid_load_weight,
                    "hybrid_transfer_weight": scheduler.hybrid_transfer_weight,
                    "bw_pending_penalty": scheduler.bw_pending_penalty,
                }
            )
    _validate_admission_knobs(admission, max_in_flight, token_rate, token_burst)
    if admission is not None:
        config = MetadataConfig(
            **{
                **(config.__dict__ if config is not None else {}),
                "admission": admission,
                "max_in_flight": max_in_flight,
                "token_rate": token_rate,
                "token_burst": token_burst if token_burst is not None else 1,
            }
        )
    if config is not None:
        config.validate()
    return config


def _nested_replace(obj, path: str, value):
    head, _, rest = path.partition(".")
    if isinstance(obj, (tuple, list)):
        # Numeric segments index into spec tuples, so one fault's field
        # or one tenant's rate is sweepable without replacing the whole
        # list: ``faults.0.duration``, ``workload.tenants.1.arrival_rate``.
        try:
            idx = int(head)
        except ValueError:
            raise ValueError(
                f"cannot descend into {type(obj).__name__} with {path!r}: "
                f"expected a numeric index, got {head!r}"
            ) from None
        if not 0 <= idx < len(obj):
            raise ValueError(
                f"index {idx} out of range: {type(obj).__name__} has "
                f"{len(obj)} element(s)"
            )
        items = list(obj)
        items[idx] = _nested_replace(items[idx], rest, value) if rest else value
        return tuple(items)
    if not dataclasses.is_dataclass(obj):
        raise ValueError(
            f"cannot descend into {type(obj).__name__} with {path!r}"
        )
    if head not in {f.name for f in dataclasses.fields(obj)}:
        raise ValueError(
            f"unknown field {head!r} on {type(obj).__name__}"
        )
    if rest:
        current = getattr(obj, head)
        if current is None:
            raise ValueError(
                f"cannot override {path!r}: {head!r} is unset"
            )
        value = _nested_replace(current, rest, value)
    return dataclasses.replace(obj, **{head: value})


@dataclass(frozen=True)
class ScenarioSpec:
    """The full description of one experiment: validated, serializable.

    Attributes
    ----------
    surface:
        Which execution path :meth:`run` dispatches to: ``"workflow"``
        (one DAG through the engine), ``"synthetic"`` (the Section
        VI-B reader/writer benchmark) or ``"workload"`` (multi-tenant;
        requires an embedded ``workload``).
    topology / network / strategy / scheduler / faults:
        The axes of the comparison matrix, one sub-spec each.
    observability:
        Tracing/metrics plane (:class:`ObservabilitySpec`); off by
        default, and excluded from :meth:`spec_hash` because it only
        observes the run.
    slo:
        Optional service-level objectives
        (:class:`~repro.scenario.slo.SLOSpec`) judged post-run into
        ``ScenarioResult.slo``; excluded from :meth:`spec_hash` for
        the same reason as ``observability`` (re-judging a stored
        experiment must not orphan its artifact).
    elasticity:
        Elastic provisioning control plane
        (:class:`ElasticitySpec`); off by default.  Unlike the two
        lens blocks above it *changes simulated behaviour*, so an
        enabled block participates in :meth:`spec_hash`.
    workload:
        Workload surface only: the embedded
        :class:`~repro.workload.spec.WorkloadSpec`.
    admission / max_in_flight / token_rate / token_burst:
        Workload surface only: admission-control policy and its
        policy-specific knobs.
    application / workflow_file / ops_per_task / compute_time:
        Workflow surface only: which DAG to build (a name from
        :data:`WORKFLOW_APPLICATIONS`, or a workflow JSON file which
        wins when set) and its sizing.  ``compute_time=None`` keeps
        the application default.
    ops_per_node:
        Synthetic surface only: operations per reader/writer node.
    n_nodes / seed:
        Deployment fleet size and master seed (all surfaces).
    """

    name: str = "scenario"
    description: str = ""
    surface: str = "workflow"
    topology: TopologySpec = field(default_factory=TopologySpec)
    network: NetworkSpec = field(default_factory=NetworkSpec)
    strategy: StrategySpec = field(default_factory=StrategySpec)
    scheduler: SchedulerSpec = field(default_factory=SchedulerSpec)
    observability: ObservabilitySpec = field(default_factory=ObservabilitySpec)
    slo: Optional[SLOSpec] = None
    elasticity: ElasticitySpec = field(default_factory=ElasticitySpec)
    faults: Tuple[FaultSpec, ...] = ()
    workload: Optional[WorkloadSpec] = None
    admission: Optional[str] = None
    max_in_flight: Optional[int] = None
    token_rate: Optional[float] = None
    token_burst: Optional[int] = None
    application: str = "montage"
    workflow_file: Optional[str] = None
    ops_per_task: int = 100
    compute_time: Optional[float] = None
    ops_per_node: int = 1000
    n_nodes: int = 32
    seed: int = 0

    def __post_init__(self):
        object.__setattr__(self, "faults", tuple(self.faults))

    # -- validation --------------------------------------------------------

    def validate(self) -> None:
        """Check every cross-field rule; raises ``ValueError``."""
        if self.surface not in SURFACES:
            raise ValueError(
                f"surface must be one of {SURFACES}, got {self.surface!r}"
            )
        self.topology.validate()
        self.network.validate()
        self.strategy.validate()
        self.scheduler.validate()
        self.observability.validate()
        self.elasticity.validate()
        if self.elasticity.enabled:
            if self.surface == "synthetic":
                raise ValueError(
                    "elasticity does not apply to the synthetic surface "
                    "(its reader/writer nodes are the experiment, not a "
                    "schedulable fleet)"
                )
            if self.elasticity.policy == "slo_debt" and (
                self.surface != "workload"
                or self.slo is None
                or not (
                    self.slo.deadline_s is not None
                    or self.slo.tenant_deadlines
                )
            ):
                raise ValueError(
                    "elasticity.policy='slo_debt' needs the workload "
                    "surface and an slo block with deadline_s or "
                    "tenant_deadlines (its signal is live deadline debt)"
                )
            if (
                self.elasticity.policy == "predictive"
                and self.surface != "workload"
            ):
                raise ValueError(
                    "elasticity.policy='predictive' needs the workload "
                    "surface (its signal is the tenant arrival rate)"
                )
            known_regions = set(self.topology.region_names())
            for cls, _rate in self.elasticity.cost_rates:
                if cls not in known_regions:
                    raise ValueError(
                        f"elasticity.cost_rates names unknown site class "
                        f"{cls!r}; topology has {sorted(known_regions)}"
                    )
        if self.slo is not None:
            self.slo.validate()
            if self.slo.latency_targets and not self.observability.enabled:
                # Latency objectives are judged against the obs
                # histograms; without tracing they would silently skip
                # every run (the masquerade class this tree rejects).
                raise ValueError(
                    "slo.latency_targets require observability.enabled "
                    "(they are judged against the obs histograms)"
                )
            if self.slo.tenant_deadlines and self.surface != "workload":
                raise ValueError(
                    "slo.tenant_deadlines is a workload-surface knob"
                )
        sites = self.topology.site_names()
        for label in ("home_site", "input_site"):
            owner = self.strategy if label == "home_site" else self.scheduler
            value = getattr(owner, label)
            if value is not None and value not in sites:
                raise ValueError(
                    f"{label} {value!r} is not a site of the "
                    f"{self.topology.preset!r} topology {list(sites)}"
                )
        regions = self.topology.region_names()
        for fault in self.faults:
            fault.validate(site_names=sites)
            if fault.region is not None and fault.region not in regions:
                raise ValueError(
                    f"fault {fault.kind!r} names unknown region "
                    f"{fault.region!r}; topology has {list(regions)}"
                )
        _validate_admission_knobs(
            self.admission, self.max_in_flight,
            self.token_rate, self.token_burst,
        )
        if self.surface == "workload":
            if self.workload is None:
                raise ValueError(
                    "surface='workload' needs an embedded workload spec"
                )
            self.workload.validate()
            if self.slo is not None and self.slo.tenant_deadlines:
                tenant_names = {t.name for t in self.workload.tenants}
                for tenant, _ in self.slo.tenant_deadlines:
                    if tenant not in tenant_names:
                        raise ValueError(
                            f"slo.tenant_deadlines names unknown tenant "
                            f"{tenant!r}; workload has "
                            f"{sorted(tenant_names)}"
                        )
            for tenant in self.workload.tenants:
                if (
                    tenant.input_site is not None
                    and tenant.input_site not in sites
                ):
                    raise ValueError(
                        f"tenant {tenant.name!r} input_site "
                        f"{tenant.input_site!r} is not a site of the "
                        f"topology {list(sites)}"
                    )
        else:
            if self.workload is not None:
                raise ValueError(
                    "an embedded workload spec requires surface='workload'"
                )
            if self.admission is not None:
                # The spec twin of the CLI masquerade guard: admission
                # control over a single workflow is a contradiction.
                raise ValueError(
                    "admission control is a workload-surface knob "
                    "(--tenants > 1 on the CLI)"
                )
        if self.surface != "workflow" and self.scheduler.input_site:
            # The synthetic benchmark stages no data, and on the
            # workload surface data origins are per-tenant -- accepting
            # a scenario-level input_site there would silently do
            # nothing (the masquerade class this spec tree rejects).
            raise ValueError(
                "input_site is a workflow-surface knob (workload "
                "tenants carry their own input_site; the synthetic "
                "benchmark stages no data)"
            )
        if self.workflow_file is not None and self.surface != "workflow":
            raise ValueError(
                "workflow_file is a workflow-surface knob"
            )
        if (
            self.surface == "workflow"
            and self.workflow_file is None
            and self.application not in WORKFLOW_APPLICATIONS
        ):
            raise ValueError(
                f"unknown application {self.application!r}; expected one "
                f"of {WORKFLOW_APPLICATIONS} (or a workflow_file)"
            )
        if self.ops_per_task < 0:
            raise ValueError("ops_per_task must be >= 0")
        if self.compute_time is not None and self.compute_time < 0:
            raise ValueError("compute_time must be >= 0")
        if self.ops_per_node <= 0:
            raise ValueError("ops_per_node must be positive")
        if self.n_nodes <= 0:
            raise ValueError("n_nodes must be positive")

    # -- derived artefacts -------------------------------------------------

    def to_metadata_config(
        self, base: Optional[MetadataConfig] = None
    ) -> Optional[MetadataConfig]:
        """The :class:`MetadataConfig` this scenario pins, over ``base``.

        ``None`` when the spec pins nothing config-level (callers keep
        their defaults -- exactly what the pre-spec flag plumbing did).
        """
        s = self.strategy
        if (
            s.home_site is not None
            or s.hybrid_sync_replication
            or s.write_lookup
            or s.sync_period is not None
        ):
            # Only knobs the spec actually pins override the base --
            # an unset default must never clobber a base-config value.
            kwargs = dict(base.__dict__) if base is not None else {}
            if s.home_site is not None:
                kwargs["home_site"] = s.home_site
            if s.hybrid_sync_replication:
                kwargs["hybrid_sync_replication"] = True
            if s.write_lookup:
                kwargs["write_lookup"] = True
            if s.sync_period is not None:
                kwargs["sync_period"] = s.sync_period
            base = MetadataConfig(**kwargs)
        return config_from_specs(
            network=self.network,
            scheduler=self.scheduler,
            admission=self.admission,
            max_in_flight=self.max_in_flight,
            token_rate=self.token_rate,
            token_burst=self.token_burst,
            base=base,
        )

    def quick(self) -> "ScenarioSpec":
        """A CI-sized variant: same shape, reduced op volumes.

        Caps ``ops_per_node`` at 100 (synthetic), ``ops_per_task`` at
        20 (workflow), and each tenant at one instance with
        ``ops_per_task`` capped at 8 (workload).
        """
        if self.surface == "synthetic":
            return self.replace(ops_per_node=min(self.ops_per_node, 100))
        if self.surface == "workflow":
            return self.replace(ops_per_task=min(self.ops_per_task, 20))
        tenants = tuple(
            dataclasses.replace(
                t,
                n_instances=1,
                ops_per_task=min(t.ops_per_task, 8),
                arrival_times=(
                    t.arrival_times[:1] if t.arrival_times else None
                ),
            )
            for t in self.workload.tenants
        )
        return self.replace(
            workload=dataclasses.replace(self.workload, tenants=tenants)
        )

    # -- functional builders -----------------------------------------------

    def replace(self, **overrides) -> "ScenarioSpec":
        """A new spec with fields swapped; dotted paths reach sub-specs.

        >>> spec.replace(**{"scheduler.name": "bandwidth_aware",
        ...                 "network.bandwidth_model": "fair"})

        Plain keys replace top-level fields (``replace(n_nodes=8)``).
        The original spec is untouched; the result is *not* validated
        (sweeps may pass through transiently-invalid intermediates) --
        :meth:`run` validates.
        """
        direct: Dict[str, Any] = {}
        for key, value in overrides.items():
            head, _, rest = key.partition(".")
            if not rest:
                direct[head] = value
                continue
            current = direct.get(head, getattr(self, head, None))
            if current is None:
                raise ValueError(
                    f"cannot override {key!r}: {head!r} is unset"
                )
            direct[head] = _nested_replace(current, rest, value)
        try:
            return dataclasses.replace(self, **direct)
        except TypeError as exc:
            raise ValueError(f"bad override: {exc}") from None

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-compatible dict; ``from_dict`` inverts it exactly."""
        out = dataclasses.asdict(self)
        out["faults"] = [dataclasses.asdict(f) for f in self.faults]
        out["workload"] = (
            self.workload.to_dict() if self.workload is not None else None
        )
        return out

    @classmethod
    def from_dict(cls, data: Mapping) -> "ScenarioSpec":
        """Rebuild a spec from :meth:`to_dict` output (strict keys)."""
        data = dict(data)
        _check_keys(
            "ScenarioSpec", data, (f.name for f in dataclasses.fields(cls))
        )
        for key, sub in (
            ("topology", TopologySpec),
            ("network", NetworkSpec),
            ("strategy", StrategySpec),
            ("scheduler", SchedulerSpec),
            ("observability", ObservabilitySpec),
            ("slo", SLOSpec),
            ("elasticity", ElasticitySpec),
        ):
            if isinstance(data.get(key), Mapping):
                data[key] = _sub_from_dict(sub, data[key])
        if "faults" in data:
            data["faults"] = tuple(
                _sub_from_dict(FaultSpec, f) if isinstance(f, Mapping) else f
                for f in data["faults"]
            )
        if isinstance(data.get("workload"), Mapping):
            data["workload"] = WorkloadSpec.from_dict(data["workload"])
        return cls(**data)

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def canonical_json(self) -> str:
        """The canonical serialized form :meth:`spec_hash` digests.

        Sorted keys, minimal separators: any two specs with equal
        :meth:`to_dict` output produce the identical string -- except
        the ``observability`` and ``slo`` blocks, which are dropped
        before hashing.  Tracing only observes a run (same seeds, same
        events, same metrics) and objectives only judge one, so a
        traced or re-judged re-run of a stored experiment must land on
        the same artifact key.  A *disabled* ``elasticity`` block is
        dropped too (behaviour-free, keys stay stable); an enabled one
        is kept -- an autoscaled run is a different experiment.
        """
        doc = self.to_dict()
        del doc["observability"]
        doc.pop("slo", None)
        if not self.elasticity.enabled:
            # Disabled elasticity is behaviour-free, so it is dropped
            # and every pre-elasticity artifact key stays valid; an
            # *enabled* block changes what the simulation does and
            # stays in the digest.
            del doc["elasticity"]
        return json.dumps(doc, sort_keys=True, separators=(",", ":"))

    def spec_hash(self) -> str:
        """A stable content hash of this spec (hex SHA-256).

        The key under which :class:`~repro.results.ResultStore`
        persists run artifacts: equal specs hash equally across
        processes and sessions, and *any* field change (including
        nested sub-spec fields) changes the hash -- except
        ``observability`` and ``slo``, which never affect simulated
        behaviour and are excluded (see :meth:`canonical_json`).  The
        hash of the
        ``paper_default`` scenario is pinned by a golden test --
        accidental spec-shape changes that would orphan stored
        artifacts fail loudly there.
        """
        return hashlib.sha256(
            self.canonical_json().encode("utf-8")
        ).hexdigest()

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        return cls.from_dict(json.loads(text))

    def save(self, path) -> None:
        """Write the spec as a JSON artifact (the ``--spec`` format)."""
        with open(path, "w") as fh:
            fh.write(self.to_json() + "\n")

    @classmethod
    def load(cls, path) -> "ScenarioSpec":
        with open(path) as fh:
            return cls.from_json(fh.read())

    # -- execution ---------------------------------------------------------

    def run(
        self,
        quick: bool = False,
        workflow=None,
        config_base: Optional[MetadataConfig] = None,
    ):
        """Validate and execute this scenario; see ``repro.scenario.runner``.

        Returns a :class:`~repro.scenario.runner.ScenarioResult`.
        ``workflow`` optionally injects a pre-built DAG (workflow
        surface only); ``config_base`` supplies defaults the spec's
        own pins override.
        """
        from repro.scenario.runner import run_scenario

        return run_scenario(
            self, quick=quick, workflow=workflow, config_base=config_base
        )
