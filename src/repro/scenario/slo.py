"""SLO rule engine: declarative targets, post-run structured verdicts.

:class:`SLOSpec` is a sub-spec of
:class:`~repro.scenario.spec.ScenarioSpec` declaring service-level
objectives for a run; :func:`evaluate_slo` checks them against a
finished :class:`~repro.scenario.runner.ScenarioResult` and returns a
:class:`SLOReport` of per-rule verdicts (``met``/``violated``/
``skipped``, debt magnitude, first-violation simulated time).  The
report rides on ``ScenarioResult.slo``, persists into
``repro.results`` artifacts, and is rendered by ``repro.cli analyze``
/ ``diff`` and the sweep SLO ranking.

Like :class:`~repro.scenario.spec.ObservabilitySpec`, the SLO block is
a **lens, not an experiment input**: evaluation happens strictly after
the simulation, consumes no simulation RNG, and the block is excluded
from ``spec_hash()`` so runs differing only in their objectives share
one artifact key (re-judging a stored experiment does not orphan it).

Rule kinds (all optional; an empty spec evaluates to no rules):

- ``deadline_s`` -- the whole run's makespan must not exceed this;
  debt is the overshoot, first violation is ``start + deadline``.
- ``tenant_deadlines`` -- workload surface: every completed instance
  of the named tenant must respond (queue wait + execution) within
  its deadline; debt sums per-instance overshoots, first violation is
  the earliest ``submitted_at + deadline`` crossed.
- ``latency_targets`` -- ``(histogram, percentile, max_seconds)``
  checked against the live obs histograms (requires tracing; see the
  cross-field guard in ``ScenarioSpec.validate``).  A histogram with
  no samples yields ``skipped``, not a verdict.
- ``min_throughput_ops_s`` -- completed-op throughput floor over the
  run (surface-appropriate op count / makespan).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["SLORule", "SLOReport", "SLOSpec", "evaluate_slo"]


@dataclass(frozen=True)
class SLOSpec:
    """Declarative service-level objectives for one scenario.

    Attributes
    ----------
    deadline_s:
        Deadline on the run's overall makespan (seconds).
    tenant_deadlines:
        Workload surface only: ``(tenant, deadline_s)`` pairs bounding
        each completed instance's *response time* (admission wait +
        execution) for that tenant.
    latency_targets:
        ``(histogram, percentile, max_seconds)`` triples checked
        against the obs histograms (e.g. ``("registry.slot_wait_s",
        99, 0.5)``); requires ``observability.enabled``.
    min_throughput_ops_s:
        Floor on completed metadata-op throughput over the run.
    """

    deadline_s: Optional[float] = None
    tenant_deadlines: Tuple[Tuple[str, float], ...] = ()
    latency_targets: Tuple[Tuple[str, float, float], ...] = ()
    min_throughput_ops_s: Optional[float] = None

    def __post_init__(self):
        object.__setattr__(
            self,
            "tenant_deadlines",
            tuple((str(t), float(d)) for t, d in self.tenant_deadlines),
        )
        object.__setattr__(
            self,
            "latency_targets",
            tuple(
                (str(h), float(q), float(s))
                for h, q, s in self.latency_targets
            ),
        )

    def validate(self) -> None:
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("slo.deadline_s must be positive")
        seen = set()
        for tenant, deadline in self.tenant_deadlines:
            if not tenant:
                raise ValueError("slo.tenant_deadlines needs tenant names")
            if tenant in seen:
                raise ValueError(
                    f"slo.tenant_deadlines repeats tenant {tenant!r}"
                )
            seen.add(tenant)
            if deadline <= 0:
                raise ValueError(
                    f"slo tenant deadline for {tenant!r} must be positive"
                )
        for hist, q, target in self.latency_targets:
            if not hist:
                raise ValueError("slo.latency_targets needs histogram names")
            if not 0 < q <= 100:
                raise ValueError(
                    f"slo latency percentile must be in (0, 100], got {q}"
                )
            if target <= 0:
                raise ValueError("slo latency target must be positive")
        if (
            self.min_throughput_ops_s is not None
            and self.min_throughput_ops_s <= 0
        ):
            raise ValueError("slo.min_throughput_ops_s must be positive")

    @property
    def empty(self) -> bool:
        return self == SLOSpec()


@dataclass
class SLORule:
    """One evaluated objective."""

    rule: str  # e.g. "deadline", "tenant_deadline:t1", "latency:h:p99"
    target: float
    observed: Optional[float]
    status: str  # "met" | "violated" | "skipped"
    debt: float = 0.0  # violation magnitude (same unit as target)
    first_violation_at: Optional[float] = None  # simulated seconds
    note: str = ""

    def to_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)

    def label(self) -> str:
        """Compact verdict string for diff/sweep cells."""
        if self.status == "violated":
            return f"violated (debt {self.debt:.3g})"
        return self.status


@dataclass
class SLOReport:
    """All rule verdicts for one run, plus the headline rollup."""

    rules: List[SLORule] = field(default_factory=list)

    @property
    def status(self) -> str:
        """``violated`` if any rule is, ``met`` if any rule was
        evaluated and none violated, ``skipped`` otherwise."""
        statuses = {r.status for r in self.rules}
        if "violated" in statuses:
            return "violated"
        if "met" in statuses:
            return "met"
        return "skipped"

    @property
    def total_debt(self) -> float:
        return sum(r.debt for r in self.rules)

    @property
    def n_violated(self) -> int:
        return sum(1 for r in self.rules if r.status == "violated")

    @property
    def first_violation_at(self) -> Optional[float]:
        times = [
            r.first_violation_at
            for r in self.rules
            if r.first_violation_at is not None
        ]
        return min(times) if times else None

    def to_dict(self) -> Dict[str, object]:
        return {
            "status": self.status,
            "n_violated": self.n_violated,
            "total_debt": self.total_debt,
            "first_violation_at": self.first_violation_at,
            "rules": [r.to_dict() for r in self.rules],
        }

    def render(self) -> str:
        lines = [f"SLO verdict: {self.status}"]
        if self.n_violated:
            first = self.first_violation_at
            lines[0] += (
                f" ({self.n_violated} rule(s), total debt "
                f"{self.total_debt:.3g}"
                + (f", first violation at t={first:.3g}s" if first is not None else "")
                + ")"
            )
        for r in self.rules:
            observed = "-" if r.observed is None else f"{r.observed:.4g}"
            line = (
                f"  {r.status:>8}  {r.rule}: observed {observed} vs "
                f"target {r.target:.4g}"
            )
            if r.status == "violated":
                line += f" (debt {r.debt:.4g}"
                if r.first_violation_at is not None:
                    line += f", first at t={r.first_violation_at:.4g}s"
                line += ")"
            if r.note:
                line += f"  [{r.note}]"
            lines.append(line)
        return "\n".join(lines)


def _histogram_quantile(tracer, name: str, q: float):
    """(observed, note) from a live tracer's histogram, or (None, why)."""
    if tracer is None:
        return None, "run was not traced"
    hist = tracer.metrics.histograms.get(name)
    if hist is None:
        return None, f"histogram {name!r} not recorded"
    if hist.n == 0:
        return None, f"histogram {name!r} is empty"
    return float(hist.quantile(q)), ""


def _op_throughput(result) -> Optional[float]:
    """Completed-op throughput for any surface (None when unknown)."""
    res = result.result
    if result.surface == "synthetic":
        return float(res.throughput)
    if result.surface == "workload":
        return float(res.op_throughput())
    ops = getattr(res, "ops", None)
    makespan = float(result.makespan)
    if ops is None or makespan <= 0:
        return None
    return len(ops) / makespan


def evaluate_slo(slo: SLOSpec, result) -> SLOReport:
    """Judge a finished run against its objectives (pure, post-run).

    ``result`` is a :class:`~repro.scenario.runner.ScenarioResult`
    (duck-typed to avoid an import cycle).  Rules that cannot be
    evaluated (missing histogram, untraced run, no completed
    instances for a tenant) come back ``skipped`` with a note rather
    than raising -- a verdict must never kill a finished run.
    """
    res = result.result
    started_at = float(getattr(res, "started_at", 0.0))
    makespan = float(result.makespan)
    report = SLOReport()

    if slo.deadline_s is not None:
        violated = makespan > slo.deadline_s
        report.rules.append(
            SLORule(
                rule="deadline",
                target=slo.deadline_s,
                observed=makespan,
                status="violated" if violated else "met",
                debt=max(0.0, makespan - slo.deadline_s),
                first_violation_at=(
                    started_at + slo.deadline_s if violated else None
                ),
            )
        )

    if slo.tenant_deadlines:
        records = getattr(res, "records", None) or []
        by_tenant: Dict[str, list] = {}
        for r in records:
            by_tenant.setdefault(r.tenant, []).append(r)
        for tenant, deadline in slo.tenant_deadlines:
            rule = f"tenant_deadline:{tenant}"
            tenant_records = by_tenant.get(tenant)
            if not tenant_records:
                report.rules.append(
                    SLORule(
                        rule=rule,
                        target=deadline,
                        observed=None,
                        status="skipped",
                        note=f"no completed instances for {tenant!r}",
                    )
                )
                continue
            worst = max(r.response_time for r in tenant_records)
            late = [
                r for r in tenant_records if r.response_time > deadline
            ]
            debt = sum(r.response_time - deadline for r in late)
            report.rules.append(
                SLORule(
                    rule=rule,
                    target=deadline,
                    observed=worst,
                    status="violated" if late else "met",
                    debt=debt,
                    first_violation_at=(
                        min(r.submitted_at + deadline for r in late)
                        if late
                        else None
                    ),
                    note=(
                        f"{len(late)}/{len(tenant_records)} instances late"
                        if late
                        else ""
                    ),
                )
            )

    for hist, q, target in slo.latency_targets:
        rule = f"latency:{hist}:p{q:g}"
        observed, note = _histogram_quantile(result.tracer, hist, q)
        if observed is None:
            report.rules.append(
                SLORule(
                    rule=rule,
                    target=target,
                    observed=None,
                    status="skipped",
                    note=note,
                )
            )
            continue
        violated = observed > target
        report.rules.append(
            SLORule(
                rule=rule,
                target=target,
                observed=observed,
                status="violated" if violated else "met",
                debt=max(0.0, observed - target),
            )
        )

    if slo.min_throughput_ops_s is not None:
        observed = _op_throughput(result)
        if observed is None:
            report.rules.append(
                SLORule(
                    rule="throughput",
                    target=slo.min_throughput_ops_s,
                    observed=None,
                    status="skipped",
                    note="no op accounting on this surface",
                )
            )
        else:
            violated = observed < slo.min_throughput_ops_s
            report.rules.append(
                SLORule(
                    rule="throughput",
                    target=slo.min_throughput_ops_s,
                    observed=observed,
                    status="violated" if violated else "met",
                    debt=max(0.0, slo.min_throughput_ops_s - observed),
                )
            )

    return report
