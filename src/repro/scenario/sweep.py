"""Cartesian sweeps over scenario overrides: the grid in one call.

A sweep takes one base :class:`~repro.scenario.spec.ScenarioSpec` and a
mapping of dotted override paths to value lists, runs every combination
(each on its own freshly-built deployment/topology -- nothing is shared
or mutated between cells) and tabulates the results::

    from repro.scenario import get_scenario, run_sweep
    res = run_sweep(
        get_scenario("paper_synthetic"),
        {"strategy.name": ["centralized", "decentralized", "hybrid"],
         "network.bandwidth_model": [None, "fair"]},
        quick=True,
        jobs=4,
    )
    print(res.render())

``jobs=N`` dispatches grid cells to a ``multiprocessing.Pool``.  Every
cell is a self-contained picklable unit -- a frozen spec from which the
worker rebuilds the whole deployment -- so the parallel run is
**bit-for-bit identical** to the serial one (pinned by
``tests/scenario/test_sweep_parallel.py``); only wall time differs.
A failing cell is captured as :attr:`SweepCell.error` instead of
killing the grid, in serial and parallel mode alike.

The CLI form is ``repro.cli sweep --scenario NAME --set path=v1,v2
[--jobs N] [--out DIR]``.
"""

from __future__ import annotations

import copy
import itertools
import multiprocessing
import time
from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.scenario.runner import ScenarioResult, run_scenario
from repro.scenario.spec import ScenarioSpec

__all__ = ["SweepCell", "SweepResult", "run_cells", "run_sweep"]

#: Default-name labels for ``None`` override values: pinning ``None``
#: keeps the surface's default, so the table shows the default's *name*
#: rather than the literal string ``None``.
NONE_LABELS: Dict[str, str] = {
    "network.bandwidth_model": "slots",
    "scheduler.name": "locality",
    "scheduler": "locality",
    "admission": "unbounded",
}


def _axis_label(axis: str, value: Any) -> str:
    if value is None:
        return NONE_LABELS.get(axis, "default")
    return str(value)


@dataclass
class SweepCell:
    """One grid point: the overrides applied and the run's outcome.

    Exactly one of ``result``/``error`` is set: a failing cell reports
    its error inline instead of killing the grid (per-cell isolation).
    ``wall_time_s`` is real execution time -- metadata for artifact
    stamping, never part of the serialized result payload (the
    parallel-vs-serial bit-for-bit contract covers payloads only).
    """

    overrides: Dict[str, Any]
    result: Optional[ScenarioResult] = None
    error: Optional[str] = None
    wall_time_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None

    def to_dict(self) -> Dict[str, Any]:
        """JSON document form; see ``repro.results.serialize``."""
        from repro.results.serialize import sweep_cell_to_dict

        return sweep_cell_to_dict(self)


@dataclass
class SweepResult:
    """All cells of one sweep, in grid order."""

    base: ScenarioSpec
    axes: Dict[str, Tuple[Any, ...]]
    cells: List[SweepCell] = field(default_factory=list)

    def ok_cells(self) -> List[SweepCell]:
        return [c for c in self.cells if c.ok]

    def errored_cells(self) -> List[SweepCell]:
        return [c for c in self.cells if not c.ok]

    def to_dict(self) -> Dict[str, Any]:
        """JSON document form; see ``repro.results.serialize``."""
        from repro.results.serialize import sweep_result_to_dict

        return sweep_result_to_dict(self)

    def _detail(self, cell: SweepCell) -> str:
        res = cell.result.result
        if cell.result.surface == "synthetic":
            return f"{res.throughput:.1f} ops/s"
        if cell.result.surface == "workload":
            return (
                f"p95 slowdown {res.slowdown_percentile(95):.2f}, "
                f"Jain {res.jain_fairness():.3f}"
            )
        return f"transfer {res.total_transfer_time:.2f}s"

    def has_slo(self) -> bool:
        return any(
            c.ok and c.result.slo is not None for c in self.cells
        )

    def has_analysis(self) -> bool:
        return any(
            c.ok and c.result.analysis is not None for c in self.cells
        )

    def slo_ranking(self) -> List[SweepCell]:
        """Cells ordered best-first by SLO attainment.

        Sort key: violated-rule count, then total debt, then makespan
        -- so fully-met cells lead and the deepest-in-debt cell is
        last.  Errored and SLO-less cells sort to the end (grid
        order preserved among themselves).
        """
        def key(indexed):
            i, c = indexed
            if not c.ok:
                return (2, 0, 0.0, 0.0, i)
            if c.result.slo is None:
                return (1, 0, 0.0, 0.0, i)
            report = c.result.slo
            return (
                0,
                report.n_violated,
                report.total_debt,
                c.result.makespan,
                i,
            )

        return [c for _, c in sorted(enumerate(self.cells), key=key)]

    def render(self) -> str:
        from repro.experiments.reporting import render_table

        with_slo = self.has_slo()
        with_analysis = self.has_analysis()
        headers = list(self.axes) + ["makespan (s)"]
        if with_slo:
            headers.append("SLO")
        if with_analysis:
            headers.append("bottleneck")
        headers.append("detail")
        rows = []
        cells = self.slo_ranking() if with_slo else self.cells
        for cell in cells:
            labels = [
                _axis_label(axis, cell.overrides[axis])
                for axis in self.axes
            ]
            if cell.error is not None:
                pad = ["--"] * (with_slo + with_analysis)
                rows.append(
                    labels + ["--"] + pad + [f"ERROR: {cell.error}"]
                )
                continue
            row = labels + [f"{cell.result.makespan:.3f}"]
            if with_slo:
                report = cell.result.slo
                if report is None:
                    row.append("--")
                elif report.status == "violated":
                    row.append(
                        f"violated x{report.n_violated} "
                        f"(debt {report.total_debt:.3g})"
                    )
                else:
                    row.append(report.status)
            if with_analysis:
                analysis = cell.result.analysis
                if analysis is None or not analysis.workflows:
                    row.append("--")
                else:
                    buckets = analysis.buckets
                    top = max(buckets, key=lambda b: buckets[b])
                    row.append(f"{top} ({buckets[top]:.3g}s)")
            rows.append(row + [self._detail(cell)])
        title = (
            f"sweep over {self.base.name!r} -- "
            f"{len(self.cells)} combinations"
        )
        if with_slo:
            title += " (ranked by SLO attainment)"
        return render_table(headers, rows, title=title)


def _run_cell(
    payload: Tuple[
        Dict[str, Any], ScenarioSpec, bool, Optional[object], Optional[object]
    ]
) -> SweepCell:
    """Execute one self-contained cell; never raises on cell failure.

    Module-level so a ``multiprocessing.Pool`` can pickle it; the
    worker rebuilds the deployment, topology and controller entirely
    from the (pickled) frozen spec, which is what makes ``jobs=N``
    bit-for-bit equal to serial execution.
    """
    overrides, spec, quick, workflow, config_base = payload
    t0 = time.perf_counter()
    try:
        result = run_scenario(
            spec, quick=quick, workflow=workflow, config_base=config_base
        )
    except Exception as exc:  # per-cell isolation: report, don't kill
        return SweepCell(
            overrides=overrides,
            error=f"{type(exc).__name__}: {exc}",
            wall_time_s=time.perf_counter() - t0,
        )
    return SweepCell(
        overrides=overrides,
        result=result,
        wall_time_s=time.perf_counter() - t0,
    )


def run_cells(
    cells: Sequence[Tuple[Mapping[str, Any], ScenarioSpec]],
    quick: bool = False,
    jobs: int = 1,
    workflow=None,
    config_base=None,
) -> List[SweepCell]:
    """Execute ``(overrides, spec)`` cells, optionally in parallel.

    The primitive under :func:`run_sweep` (and the compare
    experiments, which build non-cartesian grids): each cell runs
    independently on a fresh deployment, failures are captured
    per-cell, and results come back in input order.

    ``jobs > 1`` dispatches cells to a ``multiprocessing.Pool``; a
    prebuilt ``workflow`` (workflow surface only) is deep-copied per
    cell in serial mode -- exactly what pickling does on the parallel
    path -- so no DAG instance is ever shared between runs.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    payloads = [
        (dict(overrides), spec, quick, workflow, config_base)
        for overrides, spec in cells
    ]
    jobs = min(jobs, len(payloads))
    if jobs <= 1:
        return [
            _run_cell(
                (
                    overrides,
                    spec,
                    quick_,
                    copy.deepcopy(wf) if wf is not None else None,
                    config,
                )
            )
            for overrides, spec, quick_, wf, config in payloads
        ]
    with multiprocessing.Pool(processes=jobs) as pool:
        # chunksize=1: cells are coarse units; keep ordering simple and
        # let slow cells overlap fast ones.
        return pool.map(_run_cell, payloads, chunksize=1)


def run_sweep(
    base: ScenarioSpec,
    axes: Mapping[str, Sequence[Any]],
    quick: bool = False,
    jobs: int = 1,
    workflow=None,
    config_base=None,
) -> SweepResult:
    """Run the cartesian product of ``axes`` overrides over ``base``.

    ``axes`` maps dotted spec paths (as accepted by
    :meth:`ScenarioSpec.replace`) to the values each axis takes; every
    combination is validated and executed independently.  ``jobs=N``
    runs cells in N worker processes (same results, see
    :func:`run_cells`); ``workflow``/``config_base`` pass through to
    :func:`~repro.scenario.runner.run_scenario` for every cell.
    """
    if not axes:
        raise ValueError("sweep needs at least one override axis")
    keys = list(axes)
    values = []
    for key in keys:
        vals = tuple(axes[key])
        if not vals:
            raise ValueError(f"sweep axis {key!r} has no values")
        values.append(vals)
    # A malformed override path fails its *cell*, not the grid --
    # replace() errors land in the cell's error slot like run errors.
    prepared: List[
        Tuple[Dict[str, Any], Optional[ScenarioSpec], Optional[str]]
    ] = []
    for combo in itertools.product(*values):
        overrides = dict(zip(keys, combo))
        try:
            prepared.append((overrides, base.replace(**overrides), None))
        except ValueError as exc:
            prepared.append(
                (overrides, None, f"{type(exc).__name__}: {exc}")
            )
    ran = iter(
        run_cells(
            [(o, spec) for o, spec, err in prepared if err is None],
            quick=quick,
            jobs=jobs,
            workflow=workflow,
            config_base=config_base,
        )
    )
    out = SweepResult(base=base, axes=dict(zip(keys, values)))
    for overrides, _spec, err in prepared:
        out.cells.append(
            next(ran)
            if err is None
            else SweepCell(overrides=overrides, error=err)
        )
    return out
