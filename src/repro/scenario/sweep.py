"""Cartesian sweeps over scenario overrides: the grid in one call.

A sweep takes one base :class:`~repro.scenario.spec.ScenarioSpec` and a
mapping of dotted override paths to value lists, runs every combination
(each on its own freshly-built deployment/topology -- nothing is shared
or mutated between cells) and tabulates the results::

    from repro.scenario import get_scenario, run_sweep
    res = run_sweep(
        get_scenario("paper_synthetic"),
        {"strategy.name": ["centralized", "decentralized", "hybrid"],
         "network.bandwidth_model": [None, "fair"]},
        quick=True,
    )
    print(res.render())

The CLI form is ``repro.cli sweep --scenario NAME --set path=v1,v2``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Sequence, Tuple

from repro.scenario.runner import ScenarioResult, run_scenario
from repro.scenario.spec import ScenarioSpec

__all__ = ["SweepCell", "SweepResult", "run_sweep"]


@dataclass
class SweepCell:
    """One grid point: the overrides applied and the run's result."""

    overrides: Dict[str, Any]
    result: ScenarioResult


@dataclass
class SweepResult:
    """All cells of one sweep, in grid order."""

    base: ScenarioSpec
    axes: Dict[str, Tuple[Any, ...]]
    cells: List[SweepCell] = field(default_factory=list)

    def _detail(self, cell: SweepCell) -> str:
        res = cell.result.result
        if cell.result.surface == "synthetic":
            return f"{res.throughput:.1f} ops/s"
        if cell.result.surface == "workload":
            return (
                f"p95 slowdown {res.slowdown_percentile(95):.2f}, "
                f"Jain {res.jain_fairness():.3f}"
            )
        return f"transfer {res.total_transfer_time:.2f}s"

    def render(self) -> str:
        from repro.experiments.reporting import render_table

        headers = list(self.axes) + ["makespan (s)", "detail"]
        rows = [
            [str(cell.overrides[axis]) for axis in self.axes]
            + [f"{cell.result.makespan:.3f}", self._detail(cell)]
            for cell in self.cells
        ]
        return render_table(
            headers,
            rows,
            title=(
                f"sweep over {self.base.name!r} -- "
                f"{len(self.cells)} combinations"
            ),
        )


def run_sweep(
    base: ScenarioSpec,
    axes: Mapping[str, Sequence[Any]],
    quick: bool = False,
) -> SweepResult:
    """Run the cartesian product of ``axes`` overrides over ``base``.

    ``axes`` maps dotted spec paths (as accepted by
    :meth:`ScenarioSpec.replace`) to the values each axis takes; every
    combination is validated and executed independently.
    """
    if not axes:
        raise ValueError("sweep needs at least one override axis")
    keys = list(axes)
    values = []
    for key in keys:
        vals = tuple(axes[key])
        if not vals:
            raise ValueError(f"sweep axis {key!r} has no values")
        values.append(vals)
    out = SweepResult(base=base, axes=dict(zip(keys, values)))
    for combo in itertools.product(*values):
        overrides = dict(zip(keys, combo))
        spec = base.replace(**overrides)
        out.cells.append(
            SweepCell(overrides=overrides, result=run_scenario(spec, quick=quick))
        )
    return out
