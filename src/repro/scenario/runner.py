"""Execute a declarative scenario: the single ``run()`` entrypoint.

``run_scenario`` owns everything that used to be hand-wired per
experiment module: deployment construction (always on a **fresh**
topology built from the spec's preset -- site-cap and fault-latency
edits mutate topologies in place, so sharing one between runs leaks
state), metadata-controller setup, fault-injector wiring, dispatch to
the right execution surface (workflow engine / synthetic benchmark /
multi-tenant workload runner) and stats collection into one
:class:`ScenarioResult`.

The dispatch preserves the seed-exact code paths bit-for-bit: a
spec-driven run issues exactly the calls the pre-spec plumbing did
(pinned by the golden equivalence tests in
``tests/experiments/test_seed_compat.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cloud.deployment import Deployment
from repro.elastic import ElasticController, ElasticReport, ElasticSignals
from repro.cloud.faults import (
    FaultEvent,
    LatencySpikeInjector,
    LinkFlapInjector,
    RegionOutage,
    SiteOutage,
)
from repro.metadata.config import MetadataConfig
from repro.metadata.controller import ArchitectureController
from repro.obs import RunAnalysis, Tracer, analyze_tracer
from repro.scenario.slo import SLOReport, evaluate_slo
from repro.scenario.spec import ScenarioSpec
from repro.sim import Environment
from repro.util.units import MB
from repro.workflow.engine import WorkflowEngine
from repro.workload.runner import WorkloadRunner

__all__ = ["ScenarioResult", "run_scenario"]


@dataclass
class ScenarioResult:
    """Outcome of one scenario run: the surface result plus run context.

    ``result`` is the surface's native result object
    (:class:`~repro.workflow.engine.WorkflowResult`,
    :class:`~repro.experiments.synthetic.SyntheticResult` or
    :class:`~repro.workload.result.WorkloadResult`); the wrapper adds
    what the spec layer owns -- the resolved scheduler/admission names,
    the fault events that actually fired, WAN accounting, execution
    provenance (kernel queue backend, flow-solver mode, processed-event
    count) and, when tracing was on, the observability summary plus the
    live tracer for the Chrome/JSONL exporters.
    """

    spec: ScenarioSpec
    result: object
    scheduler: str = ""
    admission: Optional[str] = None
    fault_events: Tuple[FaultEvent, ...] = ()
    wan_bytes: int = 0
    provenance: Dict[str, object] = field(default_factory=dict)
    obs: Optional[Dict[str, object]] = None
    #: Post-run trace analysis (critical paths, attribution buckets,
    #: utilization; None when tracing was off or spans were not
    #: recorded).  A pure consumer of the trace -- computing it cannot
    #: change any metric.
    analysis: Optional[RunAnalysis] = None
    #: SLO verdicts (None when the spec declares no objectives).
    slo: Optional[SLOReport] = None
    #: Elastic control-plane report: actions taken, capacity paid
    #: (None when ``spec.elasticity`` is disabled).
    elastic: Optional[ElasticReport] = None
    #: The live tracer (None when tracing was off).  Not serialized --
    #: the exporters in ``repro.obs.export`` consume it directly.
    tracer: Optional[Tracer] = field(default=None, repr=False)

    @property
    def surface(self) -> str:
        return self.spec.surface

    @property
    def makespan(self) -> float:
        return self.result.makespan

    def to_dict(self, include_ops: bool = False) -> Dict[str, object]:
        """JSON artifact form; see ``repro.results.serialize``."""
        from repro.results.serialize import scenario_result_to_dict

        return scenario_result_to_dict(self, include_ops=include_ops)

    def render(self) -> str:
        """The human-readable report (same tables as the CLI)."""
        from repro.experiments.charts import bar_chart
        from repro.experiments.reporting import render_table

        res = self.result
        if self.surface == "workload":
            text = res.render()
        elif self.surface == "synthetic":
            text = render_table(
                ["metric", "value"],
                [
                    ["strategy", res.strategy],
                    ["nodes", res.n_nodes],
                    ["total ops", res.total_ops],
                    ["makespan (s)", res.makespan],
                    ["throughput (ops/s)", res.throughput],
                    ["mean node time (s)", res.mean_node_time],
                    ["local fraction", f"{res.ops.local_fraction:.0%}"],
                    ["read retries", res.ops.total_retries],
                ],
                title="synthetic reader/writer benchmark",
            )
            text += "\n\n" + bar_chart(
                sorted(res.node_time_by_site().items()),
                title="mean node time by site (s)",
                width=40,
            )
        else:
            text = render_table(
                ["metric", "value"],
                [
                    ["workflow", res.workflow],
                    ["strategy", res.strategy],
                    ["scheduler", self.scheduler],
                    ["tasks", len(res.task_results)],
                    ["makespan (s)", res.makespan],
                    ["metadata time (s)", res.total_metadata_time],
                    ["transfer time (s)", res.total_transfer_time],
                    ["local ops", f"{res.ops.local_fraction:.0%}"],
                ],
                title=f"run: {res.workflow} under {res.strategy}",
            )
            text += "\n\n" + bar_chart(
                sorted(res.tasks_per_site().items()),
                title="tasks per site",
                width=40,
            )
        if self.fault_events:
            lines = ["", "faults:"]
            lines.extend(
                f"  t={ev.at:8.2f}  {ev.kind:<22} {ev.target}"
                + (f"  {ev.detail}" if ev.detail else "")
                for ev in sorted(self.fault_events, key=lambda e: e.at)
            )
            text += "\n".join(lines)
        if self.slo is not None:
            text += "\n\n" + self.slo.render()
        if self.elastic is not None:
            text += "\n\n" + self.elastic.render()
        return text

    def __repr__(self) -> str:
        return (
            f"<ScenarioResult {self.spec.name} [{self.surface}] "
            f"makespan={self.makespan:.1f}s>"
        )


def _wire_faults(
    spec: ScenarioSpec,
    deployment: Deployment,
    registries: Optional[Dict[str, object]],
) -> List[object]:
    """Instantiate one injector per fault spec against the deployment.

    Registry-backed control-plane behaviour (service slots held during
    outages) engages when the strategy's registries are available;
    data-plane teardown is wired through the network unconditionally
    (a safe no-op under the slot model).
    """
    env = deployment.env
    network = deployment.network
    injectors: List[object] = []
    for f in spec.faults:
        if f.kind == "site_outage":
            injectors.append(
                SiteOutage(
                    env,
                    registry=(registries or {}).get(f.site),
                    start=f.start,
                    duration=f.duration,
                    network=network,
                    site=f.site,
                )
            )
        elif f.kind == "region_outage":
            injectors.append(
                RegionOutage(
                    env,
                    sites=f.sites,
                    region=f.region,
                    topology=deployment.topology,
                    registries=registries,
                    start=f.start,
                    duration=f.duration,
                    network=network,
                )
            )
        elif f.kind == "link_flap":
            injectors.append(
                LinkFlapInjector(
                    env, network, f.link[0], f.link[1], times=f.times
                )
            )
        else:  # latency_spike
            injectors.append(
                LatencySpikeInjector(
                    env,
                    deployment.topology,
                    f.link[0],
                    f.link[1],
                    start=f.start,
                    duration=f.duration,
                    factor=f.factor,
                )
            )
    return injectors


def _collect_events(injectors: List[object]) -> Tuple[FaultEvent, ...]:
    return tuple(ev for inj in injectors for ev in inj.events)


def _provenance(deployment: Deployment) -> Dict[str, object]:
    """Execution provenance: *how* the run was computed.

    These facts never change the simulated numbers (the backends and
    solvers are pinned equivalent by goldens), which is exactly why
    they are recorded separately from ``metrics`` -- ``repro.cli diff``
    surfaces a backend/solver swap without flagging the results.
    """
    env = deployment.env
    network = deployment.network
    flow_solver = (
        f"fair/{network.flow_net.solver}"
        if network.flow_net is not None
        else "slots"
    )
    return {
        "queue_backend": env.queue_backend,
        "flow_solver": flow_solver,
        "events_processed": env.events_processed,
    }


def _finalize(result: ScenarioResult) -> ScenarioResult:
    """Post-run passes: trace analysis and SLO judgement.

    Both are strictly read-only consumers of the finished run (no
    simulation RNG, no events), so a finalized run's metrics are
    bit-for-bit the metrics of the bare run -- pinned by
    ``tests/obs/test_analyze.py``.
    """
    tracer = result.tracer
    if tracer is not None and tracer.wants("span"):
        result.analysis = analyze_tracer(tracer)
    if result.spec.slo is not None and not result.spec.slo.empty:
        result.slo = evaluate_slo(result.spec.slo, result)
    return result


def _elastic_signals(spec: ScenarioSpec) -> ElasticSignals:
    """Workload-surface sensors, fed deadline targets from the SLO spec."""
    slo = spec.slo
    return ElasticSignals(
        tenant_deadlines=(
            dict(slo.tenant_deadlines) if slo is not None else {}
        ),
        run_deadline_s=slo.deadline_s if slo is not None else None,
    )


def _start_elastic(
    spec: ScenarioSpec,
    deployment: Deployment,
    cluster,
    signals: Optional[ElasticSignals],
    tracer: Optional[Tracer],
) -> Optional[ElasticController]:
    """Construct and start the control loop (None when disabled)."""
    if not spec.elasticity.enabled:
        return None
    controller = ElasticController(
        deployment,
        cluster,
        spec.elasticity,
        signals=signals,
        tracer=tracer,
    )
    controller.start()
    return controller


def _build_workflow(spec: ScenarioSpec):
    """The workflow-surface DAG, built exactly like the CLI built it."""
    if spec.workflow_file is not None:
        from repro.workflow.serialization import load_workflow

        return load_workflow(spec.workflow_file)
    from repro.scenario.spec import WORKFLOW_BUILDERS

    builder = WORKFLOW_BUILDERS[spec.application]
    kwargs = {"ops_per_task": spec.ops_per_task}
    if spec.compute_time is not None:
        kwargs["compute_time"] = spec.compute_time
    return builder(**kwargs)


def run_scenario(
    spec: ScenarioSpec,
    quick: bool = False,
    workflow=None,
    config_base: Optional[MetadataConfig] = None,
) -> ScenarioResult:
    """Validate ``spec`` and execute it end to end.

    Parameters
    ----------
    quick:
        Run the :meth:`~repro.scenario.spec.ScenarioSpec.quick`
        reduction of the spec (CI-friendly op volumes, same shape).
    workflow:
        Workflow surface only: a pre-built
        :class:`~repro.workflow.dag.Workflow` to execute instead of
        the spec's ``application``/``workflow_file`` (used by
        experiment harnesses with bespoke DAGs).
    config_base:
        Optional :class:`MetadataConfig` supplying defaults that the
        spec's own pins override (the ``base=`` merge the legacy
        ``from_*_args`` chain performed).
    """
    spec.validate()
    if quick:
        spec = spec.quick()
    if workflow is not None and spec.surface != "workflow":
        raise ValueError(
            "a pre-built workflow applies to the workflow surface only"
        )
    config = spec.to_metadata_config(base=config_base)
    net = spec.network
    # The tracer must be attached before the deployment is built:
    # network/registry/engine components cache their tracer category
    # flags at construction time.
    env = Environment()
    tracer: Optional[Tracer] = None
    obs = spec.observability
    if obs.enabled:
        tracer = Tracer(
            env,
            categories=obs.categories,
            max_events=obs.max_events,
            sample_interval=obs.sample_interval,
            histogram_capacity=obs.histogram_capacity,
        )
        env.attach_tracer(tracer)
    deployment = Deployment(
        env=env,
        topology=spec.topology.build(),
        n_nodes=spec.n_nodes,
        seed=spec.seed,
        bandwidth_model=net.bandwidth_model or "slots",
        site_egress_bw=(
            net.egress_cap_mb * MB if net.egress_cap_mb is not None else None
        ),
        site_ingress_bw=(
            net.ingress_cap_mb * MB
            if net.ingress_cap_mb is not None
            else None
        ),
        rpc_flow_weight=net.rpc_flow_weight,
    )

    if spec.surface == "synthetic":
        # The synthetic harness owns its controller, so outages here
        # are data-plane-only (no registries to hold slots on).
        injectors = _wire_faults(spec, deployment, registries=None)
        # Imported lazily: the experiments package sits above the
        # scenario layer (its compare modules consume specs).
        from repro.experiments.synthetic import run_synthetic_workload

        result = run_synthetic_workload(
            spec.strategy.name,
            n_nodes=spec.n_nodes,
            ops_per_node=spec.ops_per_node,
            seed=spec.seed,
            config=config,
            deployment=deployment,
        )
        return _finalize(
            ScenarioResult(
                spec=spec,
                result=result,
                fault_events=_collect_events(injectors),
                provenance=_provenance(deployment),
                obs=tracer.export() if tracer is not None else None,
                tracer=tracer,
            )
        )

    controller = ArchitectureController(
        deployment, strategy=spec.strategy.name, config=config
    )
    injectors = _wire_faults(
        spec, deployment, registries=controller.strategy.registries
    )
    if spec.surface == "workflow":
        engine = WorkflowEngine(
            deployment,
            controller.strategy,
            input_site=spec.scheduler.input_site,
        )
        # Workflow surface has no admission layer, so the autoscaler
        # senses queue depth only (signals=None).
        elastic = _start_elastic(
            spec, deployment, engine.cluster, None, tracer
        )
        result = engine.run(
            workflow if workflow is not None else _build_workflow(spec)
        )
        controller.shutdown()
        return _finalize(
            ScenarioResult(
                spec=spec,
                result=result,
                scheduler=engine.policy.name,
                fault_events=_collect_events(injectors),
                wan_bytes=engine.transfer.wan_bytes,
                provenance=_provenance(deployment),
                obs=tracer.export() if tracer is not None else None,
                elastic=(
                    elastic.finalize() if elastic is not None else None
                ),
                tracer=tracer,
            )
        )

    signals = (
        _elastic_signals(spec) if spec.elasticity.enabled else None
    )
    runner = WorkloadRunner(
        deployment, controller.strategy, elastic_signals=signals
    )
    elastic = _start_elastic(
        spec, deployment, runner.engine.cluster, signals, tracer
    )
    result = runner.run(spec.workload)
    controller.shutdown()
    return _finalize(
        ScenarioResult(
            spec=spec,
            result=result,
            scheduler=result.scheduler,
            admission=result.admission,
            fault_events=_collect_events(injectors),
            wan_bytes=result.wan_bytes,
            provenance=_provenance(deployment),
            obs=tracer.export() if tracer is not None else None,
            elastic=elastic.finalize() if elastic is not None else None,
            tracer=tracer,
        )
    )
