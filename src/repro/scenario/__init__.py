"""Unified declarative scenario API: one spec, one ``run()``.

Every experiment surface in the repo -- a single workflow through the
engine, the Section VI-B synthetic benchmark, a multi-tenant workload
-- is described by one validated, serializable
:class:`~repro.scenario.spec.ScenarioSpec` and executed through one
entrypoint (:meth:`ScenarioSpec.run`).  See ``docs/scenarios.md``.
"""

from repro.scenario.registry import (
    SCENARIOS,
    SCENARIO_NAMES,
    get_scenario,
    register_scenario,
)
from repro.scenario.runner import ScenarioResult, run_scenario
from repro.scenario.slo import (
    SLOReport,
    SLORule,
    SLOSpec,
    evaluate_slo,
)
from repro.scenario.spec import (
    ElasticitySpec,
    FAULT_KINDS,
    FaultSpec,
    NetworkSpec,
    ObservabilitySpec,
    SURFACES,
    ScenarioSpec,
    SchedulerSpec,
    StrategySpec,
    TOPOLOGY_PRESETS,
    TopologySpec,
    WORKFLOW_APPLICATIONS,
    WORKFLOW_BUILDERS,
    config_from_specs,
)
from repro.scenario.sweep import (
    SweepCell,
    SweepResult,
    run_cells,
    run_sweep,
)

#: Ergonomic alias: ``Scenario.run(...)`` reads like the entrypoint it is.
Scenario = ScenarioSpec

__all__ = [
    "ElasticitySpec",
    "FAULT_KINDS",
    "FaultSpec",
    "NetworkSpec",
    "ObservabilitySpec",
    "SCENARIOS",
    "SCENARIO_NAMES",
    "SLOReport",
    "SLORule",
    "SLOSpec",
    "SURFACES",
    "Scenario",
    "ScenarioResult",
    "ScenarioSpec",
    "SchedulerSpec",
    "StrategySpec",
    "SweepCell",
    "SweepResult",
    "TOPOLOGY_PRESETS",
    "TopologySpec",
    "WORKFLOW_APPLICATIONS",
    "WORKFLOW_BUILDERS",
    "config_from_specs",
    "evaluate_slo",
    "get_scenario",
    "register_scenario",
    "run_cells",
    "run_scenario",
    "run_sweep",
]
