"""The named-scenario registry: curated, validated starting points.

Every entry is a complete :class:`~repro.scenario.spec.ScenarioSpec`
(validated at import time) that can be run as-is, dumped to JSON, or
used as the base of a sweep::

    from repro.scenario import get_scenario
    result = get_scenario("fair_capped").run(quick=True)

    python -m repro.cli scenarios               # list them
    python -m repro.cli sweep --scenario multi_tenant_8 \\
        --set "strategy.name=centralized,decentralized"
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.cloud.presets import AZURE_4DC
from repro.scenario.slo import SLOSpec
from repro.scenario.spec import (
    ElasticitySpec,
    FaultSpec,
    NetworkSpec,
    ObservabilitySpec,
    ScenarioSpec,
    SchedulerSpec,
    StrategySpec,
    TopologySpec,
)
from repro.workload.spec import TenantSpec, WorkloadSpec

__all__ = [
    "SCENARIOS",
    "SCENARIO_NAMES",
    "get_scenario",
    "register_scenario",
]


def _staggered_tenants(offsets, compute_time, gap_s):
    """Open-loop tenants arriving at explicit offsets (one per tenant,
    with a second wave ``gap_s`` later that the ``quick()`` reduction
    truncates away) -- the deterministic demand profiles the autoscale
    scenarios are built from."""
    return tuple(
        TenantSpec(
            name=f"tenant-{i:02d}",
            application="montage-small",
            input_site=AZURE_4DC[i % len(AZURE_4DC)],
            ops_per_task=8,
            compute_time=compute_time,
            arrival_times=(at, at + gap_s),
        )
        for i, at in enumerate(offsets)
    )


#: Shared per-site-class capacity prices for the autoscale scenarios:
#: the Azure 4-DC preset tags its datacenters with "europe"/"us"
#: regions, and geo-distant European capacity bills 1.5x.
_AUTOSCALE_COST_RATES = (("europe", 1.5), ("us", 1.0))


def _build_registry() -> Dict[str, ScenarioSpec]:
    specs = (
        ScenarioSpec(
            name="paper_default",
            description=(
                "The CLI run default: Montage under the hybrid strategy, "
                "slot WAN model, locality placement on the 4-DC Azure "
                "testbed"
            ),
            surface="workflow",
            application="montage",
            ops_per_task=100,
            n_nodes=32,
            seed=7,
        ),
        ScenarioSpec(
            name="paper_synthetic",
            description=(
                "Section VI-B reader/writer benchmark at Fig. 5 scale "
                "(32 nodes, 1000 ops/node) under the hybrid strategy"
            ),
            surface="synthetic",
            strategy=StrategySpec(name="hybrid"),
            ops_per_node=1000,
            n_nodes=32,
            seed=0,
        ),
        ScenarioSpec(
            name="fair_capped",
            description=(
                "Reader/writer benchmark under hierarchical fair sharing: "
                "25 MB/s site uplink caps, weight-2 metadata RPC flows"
            ),
            surface="synthetic",
            strategy=StrategySpec(name="decentralized"),
            network=NetworkSpec(
                bandwidth_model="fair",
                egress_cap_mb=25.0,
                ingress_cap_mb=25.0,
                rpc_flow_weight=2.0,
            ),
            ops_per_node=200,
            n_nodes=16,
            seed=0,
        ),
        ScenarioSpec(
            name="fanout_bandwidth_aware",
            description=(
                "Montage on the heterogeneous fan-out WAN (near-thin vs "
                "far-fat links, 12 MB/s hub egress cap) with "
                "bandwidth-aware placement routing around the thin pipe"
            ),
            surface="workflow",
            application="montage",
            ops_per_task=20,
            compute_time=0.5,
            topology=TopologySpec(preset="hetero_fanout", hub_egress_mb=12.0),
            network=NetworkSpec(bandwidth_model="fair"),
            strategy=StrategySpec(name="decentralized"),
            scheduler=SchedulerSpec(name="bandwidth_aware", input_site="hub"),
            n_nodes=8,
            seed=11,
        ),
        ScenarioSpec(
            name="multi_tenant_8",
            description=(
                "8 closed-loop tenants over 4 applications on one shared "
                "deployment, max_in_flight=4 admission, inputs spread "
                "round-robin across sites"
            ),
            surface="workload",
            strategy=StrategySpec(name="decentralized"),
            workload=WorkloadSpec.uniform(
                8,
                applications=(
                    "montage-small",
                    "buzzflow-small",
                    "scatter",
                    "pipeline",
                ),
                n_instances=1,
                input_sites=AZURE_4DC,
                ops_per_task=8,
                compute_time=0.25,
                seed=17,
                name="multi_tenant_8",
            ),
            admission="max_in_flight",
            max_in_flight=4,
            n_nodes=16,
            seed=17,
        ),
        ScenarioSpec(
            name="multi_tenant_slo",
            description=(
                "multi_tenant_8 judged against per-tenant response-time "
                "deadlines, an ops-latency percentile target and a "
                "throughput floor (traced; see repro.cli analyze)"
            ),
            surface="workload",
            strategy=StrategySpec(name="decentralized"),
            workload=WorkloadSpec.uniform(
                8,
                applications=(
                    "montage-small",
                    "buzzflow-small",
                    "scatter",
                    "pipeline",
                ),
                n_instances=1,
                input_sites=AZURE_4DC,
                ops_per_task=8,
                compute_time=0.25,
                seed=17,
                name="multi_tenant_8",
            ),
            admission="max_in_flight",
            max_in_flight=4,
            observability=ObservabilitySpec(enabled=True),
            slo=SLOSpec(
                # Deliberately one tight tenant deadline among lax
                # ones, so the analyze report demonstrates a violated
                # verdict with debt + first-violation time.
                tenant_deadlines=(
                    ("tenant-00", 2.0),
                    ("tenant-01", 600.0),
                ),
                latency_targets=(("ops.latency_s", 95.0, 0.5),),
                min_throughput_ops_s=5.0,
            ),
            n_nodes=16,
            seed=17,
        ),
        ScenarioSpec(
            name="open_loop_tokens",
            description=(
                "6 open-loop tenants with Poisson arrivals (0.5/s) under "
                "per-tenant token-bucket admission (rate 0.5, burst 2)"
            ),
            surface="workload",
            strategy=StrategySpec(name="hybrid"),
            workload=WorkloadSpec.uniform(
                6,
                applications=("ingest", "montage-small"),
                mode="open",
                n_instances=2,
                arrival_rate=0.5,
                input_sites=AZURE_4DC,
                ops_per_task=8,
                compute_time=0.25,
                seed=23,
                name="open_loop_tokens",
            ),
            admission="token_bucket",
            token_rate=0.5,
            token_burst=2,
            n_nodes=16,
            seed=23,
        ),
        ScenarioSpec(
            name="autoscale_ramp",
            description=(
                "Accelerating open-loop arrival ramp under the "
                "predictive autoscaler: EWMA forecast pre-provisions "
                "ahead of the ramp, then drains the tail (traced; see "
                "repro.cli analyze for the capacity timeline)"
            ),
            surface="workload",
            strategy=StrategySpec(name="decentralized"),
            workload=WorkloadSpec(
                tenants=_staggered_tenants(
                    # Arrival spacing shrinks 8s -> 1s: the ramp the
                    # trend term of the forecast exists to catch.
                    (0.0, 8.0, 15.0, 21.0, 26.0, 30.0, 33.0, 35.0,
                     36.0, 37.0),
                    compute_time=0.5,
                    gap_s=60.0,
                ),
                mode="open",
                seed=11,
                name="autoscale_ramp",
            ),
            observability=ObservabilitySpec(enabled=True),
            elasticity=ElasticitySpec(
                enabled=True,
                policy="predictive",
                interval_s=2.0,
                lag_s=6.0,
                warmup_s=4.0,
                warmup_factor=2.0,
                max_vms_per_site=4,
                cooldown_s=8.0,
                ewma_alpha=0.4,
                target_task_s=20.0,
                cost_rates=_AUTOSCALE_COST_RATES,
            ),
            n_nodes=4,
            seed=11,
        ),
        ScenarioSpec(
            name="autoscale_pareto",
            description=(
                "Cost-vs-SLO Pareto probe: a 12-tenant burst plus late "
                "stragglers under threshold autoscaling with 35s "
                "deadlines -- matches static-peak attainment at a "
                "fraction of its vm-seconds, beats static-low on "
                "attainment (tests/elastic/test_pareto.py)"
            ),
            surface="workload",
            strategy=StrategySpec(name="decentralized"),
            workload=WorkloadSpec(
                tenants=_staggered_tenants(
                    # 12-tenant burst at t=0..2.75, then four late
                    # stragglers that keep the run alive while the
                    # autoscaler drains the burst capacity.
                    tuple(0.25 * i for i in range(12))
                    + (50.0, 60.0, 70.0, 80.0),
                    compute_time=0.75,
                    gap_s=130.0,
                ),
                mode="open",
                seed=5,
                name="autoscale_pareto",
            ),
            slo=SLOSpec(
                tenant_deadlines=tuple(
                    (f"tenant-{i:02d}", 35.0) for i in range(16)
                ),
            ),
            elasticity=ElasticitySpec(
                enabled=True,
                policy="threshold",
                interval_s=2.0,
                lag_s=5.0,
                warmup_s=3.0,
                warmup_factor=2.0,
                max_vms_per_site=4,
                scale_step=2,
                up_threshold=1.5,
                cost_rates=_AUTOSCALE_COST_RATES,
            ),
            n_nodes=4,
            seed=5,
        ),
        ScenarioSpec(
            name="outage_resilience",
            description=(
                "Montage under the fair WAN model through a mid-run "
                "north-europe outage plus transatlantic link flaps"
            ),
            surface="workflow",
            application="montage",
            ops_per_task=20,
            compute_time=0.5,
            network=NetworkSpec(bandwidth_model="fair"),
            strategy=StrategySpec(name="hybrid"),
            faults=(
                FaultSpec(
                    "site_outage",
                    start=5.0,
                    duration=4.0,
                    site="north-europe",
                ),
                FaultSpec(
                    "link_flap",
                    link=("west-europe", "east-us"),
                    times=(3.0, 9.0),
                ),
            ),
            n_nodes=16,
            seed=7,
        ),
    )
    registry: Dict[str, ScenarioSpec] = {}
    for spec in specs:
        spec.validate()
        registry[spec.name] = spec
    return registry


#: name -> validated :class:`ScenarioSpec`.
SCENARIOS: Dict[str, ScenarioSpec] = _build_registry()

#: Registered scenario names, in a stable order.
SCENARIO_NAMES: Tuple[str, ...] = tuple(sorted(SCENARIOS))


def get_scenario(name: str) -> ScenarioSpec:
    """Look up a named scenario (raises with the available names)."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; available: {list(SCENARIO_NAMES)}"
        ) from None


def register_scenario(spec: ScenarioSpec, overwrite: bool = False) -> None:
    """Add a custom scenario to the registry (validated first)."""
    spec.validate()
    if spec.name in SCENARIOS and not overwrite:
        raise ValueError(
            f"scenario {spec.name!r} already registered "
            "(pass overwrite=True to replace it)"
        )
    SCENARIOS[spec.name] = spec
    global SCENARIO_NAMES
    SCENARIO_NAMES = tuple(sorted(SCENARIOS))
