"""Setup shim for environments without the `wheel` package.

The canonical metadata lives in pyproject.toml; this file exists so
`pip install -e . --no-use-pep517 --no-build-isolation` works offline
(legacy `setup.py develop` does not require bdist_wheel).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Multi-site metadata management for geographically distributed "
        "cloud workflows (CLUSTER 2015 reproduction)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy>=1.21"],
)
