#!/bin/sh
# Single entry point for the pre-commit checks:
#   1. fast test profile (everything except the @slow figure
#      regenerations, ~20 s; see pytest.ini for the profiles) --
#      explicitly including the scheduling-subsystem modules
#      (tests/scheduling, the seed-compat goldens and the scheduler
#      CLI/config validation), the workload-subsystem modules
#      (tests/workload, the engine op-attribution regression and the
#      workload_compare scenario checks) and the declarative scenario
#      API (tests/scenario: spec validation/round-trip/sweeps, plus
#      the spec-vs-direct golden equivalence in
#      tests/experiments/test_seed_compat.py and the --dump-spec/--spec
#      CLI smoke checks in tests/test_cli.py); the slow-marked benches
#      (benchmarks/test_schedulers.py, benchmarks/test_workloads.py)
#      run in the FULL profile;
#   2. a --dump-spec smoke run (flags must keep compiling to a valid
#      JSON scenario artifact);
#   3. the parallel experiment plane: a --jobs 2 sweep persisted to a
#      result store, the serial twin, a store diff between them (must
#      pair every artifact), and a quick BENCH trajectory run
#      (scripts/bench.py) gated against the newest *committed*
#      BENCH_*.json (scripts/bench.py --print-baseline; falls back to
#      BENCH_seed.json) -- any pinned scenario whose --quick wall
#      exceeds 1.25x that baseline's full-run wall fails the check
#      (kernel-regression smoke); the bench runs with tracing
#      disabled, so the gate doubles as the observability plane's
#      zero-overhead guard (docs/observability.md);
#   4. a trace smoke: a quick fully-traced scenario must export valid,
#      non-empty Chrome trace-event JSON covering the kernel, network,
#      scheduler and span layers;
#   5. an analyze smoke: repro.cli analyze on the SLO-bearing registry
#      scenario must render an observed-critical-path section and an
#      SLO verdict line (docs/observability.md);
#   6. an elasticity smoke: a quick autoscale_ramp run must emit at
#      least one scale_up event under the elastic trace category, and
#      repro.cli analyze on it must render the capacity-timeline
#      section (docs/elasticity.md);
#   7. unused-import lint over the source tree.
#
# Usage, from the repo root:
#   scripts/check.sh            # fast profile + lint
#   FULL=1 scripts/check.sh     # full tier-1 suite + lint (~3.5 min)
set -eu

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

if [ "${FULL:-0}" = "1" ]; then
    python -m pytest -x -q tests benchmarks
else
    python -m pytest -x -q -m "not slow" tests benchmarks
fi
python -m repro.cli run --workflow montage --dump-spec - > /dev/null

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT
python -m repro.cli sweep --scenario paper_synthetic \
    --set "strategy.name=centralized,hybrid" --quick \
    --jobs 2 --out "$TMP/par" > /dev/null
python -m repro.cli sweep --scenario paper_synthetic \
    --set "strategy.name=centralized,hybrid" --quick \
    --out "$TMP/ser" > /dev/null
python -m repro.cli diff "$TMP/par" "$TMP/ser" > "$TMP/diff.txt"
grep -q "2 paired" "$TMP/diff.txt"
python -m repro.cli results "$TMP/par" > /dev/null
python scripts/bench.py --quick --label check \
    --out "$TMP/BENCH_check.json" 2> /dev/null
python -c "import json, sys; \
doc = json.load(open(sys.argv[1])); \
assert doc['kind'] == 'bench-trajectory' and len(doc['scenarios']) >= 3" \
    "$TMP/BENCH_check.json"
# Bench-regression smoke: a --quick run covers a fraction of each full
# pinned scenario, so its wall must sit far below the committed
# baseline wall; any quick scenario exceeding 1.25x the baseline's
# FULL wall means an order-of-magnitude kernel/solver regression, not
# timer noise.  The baseline is the newest committed BENCH_*.json so
# the bar tracks the trajectory instead of pinning the seed forever.
BASELINE=$(python scripts/bench.py --print-baseline)
python - "$TMP/BENCH_check.json" "$BASELINE" <<'PY'
import json, sys
quick = json.load(open(sys.argv[1]))["scenarios"]
base = json.load(open(sys.argv[2]))["scenarios"]
bad = [
    (name, quick[name]["wall_time_s"], entry["wall_time_s"])
    for name, entry in base.items()
    if name in quick
    and quick[name]["wall_time_s"] > 1.25 * entry["wall_time_s"]
]
for name, got, ref in bad:
    print(f"bench regression: {name} quick wall {got}s > "
          f"1.25 x baseline wall {ref}s ({sys.argv[2]})", file=sys.stderr)
sys.exit(1 if bad else 0)
PY

# Trace smoke: full tracing on a quick scenario must yield a valid,
# non-empty Chrome trace with every major layer represented.
python -m repro.cli trace fanout_bandwidth_aware --quick \
    --out "$TMP/trace.json" > /dev/null
python - "$TMP/trace.json" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
events = doc["traceEvents"]
assert events, "empty Chrome trace"
cats = {e.get("cat") for e in events}
missing = {"kernel", "network", "scheduler", "span"} - cats
assert not missing, f"trace missing categories: {sorted(missing)}"
PY

# Analyze smoke: the trace-analysis plane must turn a quick traced
# run into a bottleneck report with an observed critical path and a
# judged SLO verdict.
python -m repro.cli analyze multi_tenant_slo --quick > "$TMP/analyze.txt"
grep -qi "observed critical path" "$TMP/analyze.txt"
grep -q "SLO verdict:" "$TMP/analyze.txt"

# Elasticity smoke: the autoscaler must actually scale on the ramp
# scenario (>= 1 scale_up trace event) and the analyze report must
# carry the capacity timeline built from those events.
python - <<'PY'
from repro.scenario import get_scenario

res = get_scenario("autoscale_ramp").run(quick=True)
ups = [
    (ts, args)
    for ts, cat, name, args in res.tracer.events
    if cat == "elastic" and name == "scale_up"
]
assert ups, "autoscale_ramp --quick ordered no capacity"
assert res.elastic is not None and res.elastic.stranded_tasks == 0
PY
python -m repro.cli analyze autoscale_ramp --quick > "$TMP/elastic.txt"
grep -q "capacity timeline" "$TMP/elastic.txt"
grep -q "elastic policy predictive" "$TMP/elastic.txt"

python -m repro.util.lint src

echo "check: all green"
