#!/usr/bin/env python
"""Performance trajectory: wall-time the pinned scenario set.

Runs a fixed set of scenarios spanning every experiment surface and
writes ``BENCH_<rev>.json`` -- per-scenario wall time, simulated
makespan, and the simulation-seconds-per-wall-second rate.  Comparing
two BENCH files from different commits (``repro.cli diff`` works on
them via the embedded metrics, or just eyeball the JSON) shows how the
simulator's *speed* evolves while the result stores show how its
*results* evolve.

Pinned set (spec hashes are embedded, so a drifting scenario is
visible in the file itself):

- ``fig5_synthetic``  -- the Fig. 5 synthetic benchmark shape;
- ``fig7_synthetic``  -- the Fig. 7 scale-up shape (64 nodes);
- ``fanout_bandwidth_aware`` -- workflow surface, fair WAN model;
- ``multi_tenant_8``  -- 8-tenant workload under admission control.

Usage, from the repo root::

    python scripts/bench.py [--quick] [--label REV] [--out PATH]
                            [--store DIR]

``--quick`` runs the CI-friendly reductions (same shapes, smaller op
volumes); ``--store DIR`` additionally persists each run's full
artifact through the result store for later ``repro.cli diff``.

``--print-baseline`` runs nothing: it prints the path of the newest
*committed* ``BENCH_*.json`` (by last git commit date, falling back to
``BENCH_seed.json``) so ``scripts/check.sh`` always gates against the
most recent trajectory rather than a hardcoded file.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.results import (  # noqa: E402
    ResultStore,
    current_git_rev,
    result_metrics,
)
from repro.scenario import get_scenario  # noqa: E402


def pinned_scenarios():
    """The fixed (name, spec) set every BENCH file covers."""
    fig5 = get_scenario("paper_synthetic").replace(name="fig5_synthetic")
    fig7 = get_scenario("paper_synthetic").replace(
        name="fig7_synthetic", n_nodes=64, ops_per_node=500
    )
    return [
        ("fig5_synthetic", fig5),
        ("fig7_synthetic", fig7),
        ("fanout_bandwidth_aware", get_scenario("fanout_bandwidth_aware")),
        ("multi_tenant_8", get_scenario("multi_tenant_8")),
    ]


def run_bench(quick=False, label=None, store_dir=None):
    """Run the pinned set; returns the BENCH document."""
    label = label or current_git_rev()
    store = ResultStore(store_dir) if store_dir else None
    doc = {
        "schema": 1,
        "kind": "bench-trajectory",
        "rev": label,
        "quick": bool(quick),
        "python": platform.python_version(),
        "scenarios": {},
    }
    for name, spec in pinned_scenarios():
        t0 = time.perf_counter()
        result = spec.run(quick=quick)
        wall = time.perf_counter() - t0
        metrics = result_metrics(result)
        makespan = metrics["makespan_s"]
        doc["scenarios"][name] = {
            "spec_hash": spec.spec_hash(),
            "surface": spec.surface,
            "wall_time_s": round(wall, 4),
            "sim_makespan_s": round(makespan, 4),
            "sim_s_per_wall_s": round(makespan / wall, 2) if wall else None,
            "metrics": {k: round(v, 6) for k, v in metrics.items()},
        }
        print(
            f"{name:<24} wall {wall:7.2f}s  sim {makespan:9.2f}s  "
            f"({doc['scenarios'][name]['sim_s_per_wall_s']}x)",
            file=sys.stderr,
        )
        if store is not None:
            store.save(result, git_rev=label, wall_time_s=wall)
    return doc


def newest_committed_baseline() -> Path:
    """The most recently *committed* BENCH file (default: the seed).

    Uncommitted BENCH files never win: the gate must compare against a
    trajectory some past commit vouched for, not a local scratch run.
    """
    import subprocess

    best, best_stamp = REPO_ROOT / "BENCH_seed.json", -1
    for path in sorted(REPO_ROOT.glob("BENCH_*.json")):
        try:
            out = subprocess.run(
                [
                    "git", "log", "-1", "--format=%ct", "--",
                    path.name,
                ],
                cwd=REPO_ROOT,
                capture_output=True,
                text=True,
                check=True,
            ).stdout.strip()
        except (OSError, subprocess.CalledProcessError):
            continue
        if not out:  # untracked / never committed
            continue
        stamp = int(out)
        if stamp > best_stamp:
            best, best_stamp = path, stamp
    return best


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI-friendly reductions of the pinned scenarios",
    )
    parser.add_argument(
        "--label",
        default=None,
        metavar="REV",
        help="trajectory label (default: the current git revision)",
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="output path (default: BENCH_<label>.json at the repo root)",
    )
    parser.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="also persist full run artifacts to this result store",
    )
    parser.add_argument(
        "--print-baseline",
        action="store_true",
        help=(
            "print the newest committed BENCH_*.json path (the "
            "regression-gate baseline) and exit without running"
        ),
    )
    args = parser.parse_args(argv)
    if args.print_baseline:
        print(newest_committed_baseline())
        return 0
    doc = run_bench(
        quick=args.quick, label=args.label, store_dir=args.store
    )
    out = Path(args.out) if args.out else REPO_ROOT / f"BENCH_{doc['rev']}.json"
    out.write_text(
        json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"trajectory written to {out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
