"""Benchmark: Figure 8 -- fixed 32,000-operation workload, 8 -> 128 nodes.

Paper parameters exactly.  Shapes: centralized and decentralized enjoy
a ~linear time gain as nodes grow; replicated degrades at larger scale.
"""

import pytest

from repro.experiments.fig8_scalability import PAPER_TOTAL_OPS, run_fig8

pytestmark = pytest.mark.slow


def test_fig8_scalability(benchmark, echo):
    result = benchmark.pedantic(
        lambda: run_fig8(
            node_counts=(8, 16, 32, 64, 128), total_ops=PAPER_TOTAL_OPS
        ),
        rounds=1,
        iterations=1,
    )
    echo(result)
    props = result.properties()
    assert not any("MISS" in line for line in props), "\n".join(props)
    benchmark.extra_info["total_ops"] = PAPER_TOTAL_OPS
