"""Benchmark: Figure 6 -- completion progress, DN vs DR vs centralized.

32 nodes, 4,000 ops/node (paper zooms into the Fig. 5 run).  Shapes to
reproduce: DR >= ~1.25x speedup over DN in the 20-70 % window; the
centralized curve decelerates; site centrality ordering (East US best,
South Central US worst).
"""

import pytest

from repro.experiments.fig6_progress import run_fig6

pytestmark = pytest.mark.slow


def test_fig6_progress(benchmark, echo):
    result = benchmark.pedantic(
        lambda: run_fig6(n_nodes=32, ops_per_node=4000),
        rounds=1,
        iterations=1,
    )
    echo(result)
    props = result.properties()
    assert not any("MISS" in line for line in props), "\n".join(props)
    benchmark.extra_info["dr_vs_dn_speedup_20_70"] = round(
        result.speedup(), 3
    )
    assert result.speedup() >= 1.25
