"""Ablation benchmarks for the design choices DESIGN.md calls out.

Each ablation flips one design knob and reports its effect, grounding
the paper's design arguments in measurements:

- **lazy vs synchronous hybrid replication** (Section III-D vs IV-D);
- **sync-agent period** (the replicated strategy's staleness/overhead
  trade-off);
- **client-side write look-up** (one RPC vs two per write);
- **centralized home-site placement** (site centrality, Section VI-B);
- **locality scheduling** (Section III-D's premise that the engine
  schedules consumers near producers).
"""

import pytest

from repro.cloud.deployment import Deployment
from repro.experiments.synthetic import run_synthetic_workload
from repro.experiments.reporting import render_table
from repro.metadata.config import MetadataConfig
from repro.metadata.controller import ArchitectureController
from repro.workflow.applications import montage
from repro.workflow.engine import WorkflowEngine

pytestmark = pytest.mark.slow

N_NODES = 32


def _run_workflow(strategy, cfg, ops=400, compute=0.5, locality=True, seed=7):
    dep = Deployment(n_nodes=N_NODES, seed=seed)
    ctrl = ArchitectureController(dep, strategy=strategy, config=cfg)
    engine = WorkflowEngine(dep, ctrl.strategy, locality_scheduling=locality)
    res = engine.run(montage(ops_per_task=ops, compute_time=compute))
    ctrl.shutdown()
    return res


def test_ablation_hybrid_lazy_vs_sync(benchmark):
    """Lazy batching trades home-site visibility lag for write latency."""

    def run():
        lazy = _run_workflow(
            "hybrid", MetadataConfig(hybrid_sync_replication=False)
        )
        sync = _run_workflow(
            "hybrid", MetadataConfig(hybrid_sync_replication=True)
        )
        return lazy, sync

    lazy, sync = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        "\n"
        + render_table(
            ["mode", "makespan (s)"],
            [["lazy (III-D)", lazy.makespan], ["sync (IV-D)", sync.makespan]],
            title="Ablation -- hybrid replication mode (Montage, 400 ops/task)",
        )
    )
    # Lazy writes return after the local store only: strictly faster.
    assert lazy.makespan < sync.makespan
    benchmark.extra_info["lazy_speedup"] = round(
        sync.makespan / lazy.makespan, 3
    )


def test_ablation_sync_period(benchmark):
    """Shorter sync periods shrink the replicated strategy's stalls up
    to the point where agent overhead dominates."""

    periods = (0.5, 2.0, 8.0)

    def run():
        out = []
        for p in periods:
            res = run_synthetic_workload(
                "replicated",
                n_nodes=N_NODES,
                ops_per_node=500,
                seed=7,
                config=MetadataConfig(sync_period=p),
            )
            out.append((p, res.makespan, res.ops.total_retries))
        return out

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        "\n"
        + render_table(
            ["sync period (s)", "makespan (s)", "read retries"],
            rows,
            title="Ablation -- replicated sync-agent period",
        )
    )
    by_period = {p: (m, r) for p, m, r in rows}
    # A sluggish agent (8 s) stretches the makespan relative to a
    # moderate one; a brisk agent (0.5 s) makes readers poll more often
    # (more retry probes, each cheaper).
    assert by_period[8.0][0] > by_period[2.0][0]
    assert by_period[0.5][1] > by_period[8.0][1]


def test_ablation_write_lookup(benchmark):
    """Client-side existence checks double the WAN cost of remote writes."""

    def run():
        one_rpc = run_synthetic_workload(
            "decentralized",
            n_nodes=N_NODES,
            ops_per_node=500,
            seed=7,
            config=MetadataConfig(write_lookup=False),
        )
        two_rpc = run_synthetic_workload(
            "decentralized",
            n_nodes=N_NODES,
            ops_per_node=500,
            seed=7,
            config=MetadataConfig(write_lookup=True),
        )
        return one_rpc, two_rpc

    one_rpc, two_rpc = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        "\n"
        + render_table(
            ["write protocol", "makespan (s)"],
            [
                ["server-side upsert (1 RPC)", one_rpc.makespan],
                ["client look-up + put (2 RPC)", two_rpc.makespan],
            ],
            title="Ablation -- write look-up placement (decentralized)",
        )
    )
    assert two_rpc.makespan > one_rpc.makespan


def test_ablation_home_site_centrality(benchmark):
    """Placing the centralized registry at the least central site hurts;
    the most central site is the best 'arbitrary' choice (Section VI-B)."""

    def run():
        out = {}
        for site in ("east-us", "south-central-us"):
            res = run_synthetic_workload(
                "centralized",
                n_nodes=N_NODES,
                ops_per_node=500,
                seed=7,
                config=MetadataConfig(home_site=site),
            )
            out[site] = res.makespan
        return out

    spans = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        "\n"
        + render_table(
            ["home site", "makespan (s)"],
            sorted(spans.items()),
            title="Ablation -- centralized registry placement",
        )
    )
    assert spans["east-us"] < spans["south-central-us"]
    benchmark.extra_info["centrality_penalty"] = round(
        spans["south-central-us"] / spans["east-us"], 3
    )


def test_ablation_locality_scheduling(benchmark):
    """Locality-aware scheduling cuts hybrid metadata time on workflows
    (the engine premise of Section III-D)."""

    def run():
        on = _run_workflow(
            "hybrid", MetadataConfig(), ops=300, locality=True
        )
        off = _run_workflow(
            "hybrid", MetadataConfig(), ops=300, locality=False
        )
        return on, off

    on, off = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        "\n"
        + render_table(
            ["scheduling", "makespan (s)", "metadata time (s)"],
            [
                ["locality", on.makespan, on.total_metadata_time],
                ["round-robin", off.makespan, off.total_metadata_time],
            ],
            title="Ablation -- engine locality scheduling (hybrid, Montage)",
        )
    )
    assert on.total_metadata_time <= off.total_metadata_time * 1.05
