"""Benchmarks for the Section VIII related-work comparisons.

The paper argues against namespace-subtree partitioning (hot-directory
imbalance) and against keeping metadata in a relational database ("too
heavy for metadata-intensive workloads").  Both arguments are measured
here against the implemented comparison strategies.
"""

from repro.cloud.deployment import Deployment
from repro.experiments.reporting import render_table
from repro.experiments.synthetic import run_synthetic_workload
from repro.metadata.controller import ArchitectureController
from repro.metadata.entry import RegistryEntry
from repro.sim import AllOf


def test_subtree_vs_hashing_hot_directory(benchmark):
    """A popular directory funnels all traffic to one subtree owner,
    while DHT hashing spreads the same workload across every site."""

    def run():
        out = {}
        for strategy in ("subtree", "decentralized"):
            dep = Deployment(n_nodes=16, seed=7)
            ctrl = ArchitectureController(dep, strategy=strategy)
            strat = ctrl.strategy

            def client(vm, i, strat=strat):
                # Everyone hammers the same hot directory.
                for j in range(150):
                    yield from strat.write(
                        vm.site,
                        RegistryEntry(key=f"hot-dataset/part-{i}-{j}"),
                    )

            procs = [
                dep.env.process(client(vm, i))
                for i, vm in enumerate(dep.workers)
            ]
            dep.env.run(until=AllOf(dep.env, procs))
            makespan = dep.env.now
            counts = {
                site: reg.ops_served
                for site, reg in strat.registries.items()
            }
            imbalance = max(counts.values()) / max(
                1.0, sum(counts.values()) / len(counts)
            )
            ctrl.shutdown()
            out[strategy] = (makespan, imbalance)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [name, makespan, f"{imb:.2f}"]
        for name, (makespan, imb) in results.items()
    ]
    print(
        "\n"
        + render_table(
            ["strategy", "makespan (s)", "ops imbalance (max/mean)"],
            rows,
            title="Related work -- hot directory: subtree vs DHT hashing",
        )
    )
    sub_makespan, sub_imb = results["subtree"]
    dht_makespan, dht_imb = results["decentralized"]
    # Subtree partitioning: the hot directory's owner serves ~everything.
    assert sub_imb > 3.0
    assert dht_imb < 2.0
    # And the bottleneck costs real time.
    assert sub_makespan > dht_makespan


def test_relational_db_too_heavy(benchmark):
    """The in-memory registry sustains a metadata-intensive workload the
    database-backed one cannot (paper: ~10x in-memory advantage)."""

    def run():
        mem = run_synthetic_workload(
            "centralized", n_nodes=16, ops_per_node=400, seed=3
        )
        db = run_synthetic_workload(
            "relational-db", n_nodes=16, ops_per_node=400, seed=3
        )
        return mem, db

    mem, db = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        "\n"
        + render_table(
            ["backend", "makespan (s)", "throughput (ops/s)"],
            [
                ["in-memory cache", mem.makespan, mem.throughput],
                ["relational DB", db.makespan, db.throughput],
            ],
            title="Related work -- in-memory registry vs relational DB",
        )
    )
    assert db.makespan > mem.makespan
    benchmark.extra_info["db_slowdown"] = round(
        db.makespan / mem.makespan, 2
    )
