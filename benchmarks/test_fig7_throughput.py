"""Benchmark: Figure 7 -- metadata throughput, 8 -> 128 nodes.

Full node sweep as in the paper; 1,000 ops/node (paper: 5,000 -- the
throughput metric is rate-based, so the shorter run measures the same
steady state).  Shapes: decentralized ~linear scaling toward the ~1,150
ops/s region; replicated stops scaling past 32 nodes; centralized
capped by its single instance.
"""

import pytest

from repro.experiments.fig7_throughput import run_fig7
from repro.metadata.controller import StrategyName

pytestmark = pytest.mark.slow


def test_fig7_throughput(benchmark, echo):
    result = benchmark.pedantic(
        lambda: run_fig7(
            node_counts=(8, 16, 32, 64, 128), ops_per_node=1000
        ),
        rounds=1,
        iterations=1,
    )
    echo(result)
    props = result.properties()
    assert not any("MISS" in line for line in props), "\n".join(props)
    peak = result.throughput[StrategyName.DECENTRALIZED][-1]
    benchmark.extra_info["decentralized_peak_ops_per_s"] = round(peak, 1)
    benchmark.extra_info["paper_peak_ops_per_s"] = 1150
