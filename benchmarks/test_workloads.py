"""Acceptance benchmark: the multi-tenant workload comparison at scale.

Runs ``repro.experiments.workload_compare`` at its shipping defaults
(>= 8 concurrent tenants, full strategy x scheduler sweep over one
shared deployment per combo) and checks the subsystem's acceptance
criteria, plus admission-control behaviour under contention.
"""

import pytest

from repro.cloud.deployment import Deployment
from repro.experiments.workload_compare import run_workload_compare
from repro.metadata.controller import ArchitectureController
from repro.workload import (
    MaxInFlightAdmission,
    WorkloadRunner,
    WorkloadSpec,
)

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def compare():
    return run_workload_compare()  # 3 strategies x 2 schedulers, 8 tenants


class TestWorkloadCompareAcceptance:
    def test_runs_at_least_eight_tenants(self, compare):
        assert compare.n_tenants >= 8
        for res in compare.results.values():
            assert len(res.tenants()) >= 8

    def test_every_tenant_completes_everywhere(self, compare):
        expected = compare.n_tenants * compare.n_instances
        for res in compare.results.values():
            assert res.n_completed == expected

    def test_op_attribution_conserves(self, compare):
        for res in compare.results.values():
            assert res.attributed_ops() == res.total_ops
            assert res.total_ops > 0

    def test_admission_bound_respected(self, compare):
        for res in compare.results.values():
            assert res.admission_bound is not None
            assert 0 < res.peak_in_flight <= res.admission_bound

    def test_fairness_and_throughput_reported(self, compare):
        for res in compare.results.values():
            assert 0.0 < res.jain_fairness() <= 1.0
            assert res.op_throughput() > 0
            assert res.mean_queue_wait() >= 0
            assert all(s >= 1.0 for s in res.slowdowns())

    def test_all_properties_green(self, compare):
        assert all(p.startswith("[ok  ]") for p in compare.properties())


class TestAdmissionUnderContention:
    @staticmethod
    def _run(limit):
        spec = WorkloadSpec.uniform(
            8,
            applications=("montage-small", "buzzflow-small"),
            ops_per_task=8,
            compute_time=0.25,
            seed=23,
        )
        dep = Deployment(n_nodes=16, seed=23)
        ctrl = ArchitectureController(dep, strategy="hybrid")
        runner = WorkloadRunner(
            dep,
            ctrl.strategy,
            admission=(
                MaxInFlightAdmission(dep.env, limit=limit)
                if limit
                else "unbounded"
            ),
        )
        res = runner.run(spec)
        ctrl.shutdown()
        return res

    def test_serialized_admission_stretches_the_workload(self):
        """One slot serializes 8 tenants; the whole-workload makespan
        must exceed the unbounded run's (contention traded for wait)."""
        serialized = self._run(limit=1)
        free = self._run(limit=0)
        assert serialized.peak_in_flight == 1
        assert free.peak_in_flight == 8
        assert serialized.makespan > free.makespan
        assert serialized.mean_queue_wait() > free.mean_queue_wait()

    def test_tighter_bounds_mean_longer_queues(self):
        waits = [
            self._run(limit).mean_queue_wait() for limit in (1, 4)
        ]
        assert waits[0] > waits[1]
