"""Benchmark: placement policies on the capped-link fan-out.

Acceptance bench of the scheduling subsystem (``docs/scheduling.md``):
on the heterogeneous fan-out testbed -- nearest spill site behind a
narrow pipe, distant sites behind wide ones, optionally a hierarchical
egress cap at the data origin -- bandwidth-aware placement must beat
(or tie) the paper's locality heuristic, under both bandwidth models:

- ``fair``: staging estimates come from live water-filling probes
  (``FlowNetwork.estimate_rate``), so the policy sees congestion;
- ``slots``: the static ``latency + size/bandwidth`` fallback still
  routes bulk inputs around the thin link.

The makespan table over all five policies is printed for the report.
"""

import pytest

from repro.experiments.scheduler_compare import run_scheduler_compare
from repro.scheduling import SCHEDULER_NAMES
from repro.util.units import MB

pytestmark = pytest.mark.slow


@pytest.mark.parametrize("model", ["fair", "slots"])
def test_bandwidth_aware_beats_locality_on_capped_fanout(benchmark, model):
    def run():
        return run_scheduler_compare(
            bandwidth_model=model,
            hub_egress_bw=80 * MB if model == "fair" else None,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n" + result.render())
    assert set(result.makespan) == set(SCHEDULER_NAMES)
    # The subsystem's acceptance criterion.
    assert (
        result.makespan["bandwidth_aware"] <= result.makespan["locality"]
    )
    # It wins by routing around the thin pipe, not by moving more data.
    assert (
        result.wan_bytes["bandwidth_aware"]
        <= result.wan_bytes["locality"]
    )
    assert (
        result.transfer_time["bandwidth_aware"]
        <= result.transfer_time["locality"]
    )
    benchmark.extra_info["makespans"] = {
        p: round(m, 2) for p, m in result.makespan.items()
    }


def test_hybrid_weights_sweep_spans_locality_to_bandwidth(benchmark):
    """The hybrid coefficients interpolate the design space: a
    transfer-dominated weighting matches bandwidth-aware placement,
    and every weighting stays no worse than blind round-robin."""
    from repro.metadata.config import MetadataConfig

    def run():
        out = {}
        for label, knobs in (
            ("transfer-heavy", dict(hybrid_locality_weight=0.0)),
            ("balanced", {}),
            ("locality-heavy", dict(hybrid_locality_weight=50.0,
                                    hybrid_transfer_weight=0.1)),
        ):
            cfg = MetadataConfig(scheduler="hybrid", **knobs)
            res = run_scheduler_compare(
                policies=("round_robin", "bandwidth_aware", "hybrid"),
                bandwidth_model="fair",
                config=cfg,
            )
            out[label] = res
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    for label, res in results.items():
        print(f"\n[{label}]")
        print(res.render())
        assert (
            res.makespan["hybrid"] <= res.makespan["round_robin"] * 1.05
        )
    transfer_heavy = results["transfer-heavy"]
    assert transfer_heavy.makespan["hybrid"] == pytest.approx(
        transfer_heavy.makespan["bandwidth_aware"], rel=0.10
    )
