"""Benchmark: Figure 3 -- the local-replication read speedup scenario.

Two nodes in one site; the entry hashes to a geo-distant home.  Without
local replication both operations cross the ocean; with it, the read is
served locally -- the paper quotes "up to 50x faster" reads, bounded by
the geo-distant/local latency ratio of the testbed.
"""

from repro.experiments.fig3_replication import run_fig3


def test_fig3_replication(benchmark, echo):
    result = benchmark.pedantic(run_fig3, rounds=1, iterations=1)
    echo(result)
    props = result.properties()
    assert not any("MISS" in line for line in props), "\n".join(props)
    benchmark.extra_info["read_speedup"] = round(result.read_speedup, 1)
    benchmark.extra_info["paper_claim"] = "up to ~50x"
