"""Benchmark: Figure 1 -- remote vs local metadata operation cost.

Paper parameters exactly: 100/500/1000/5000 files posted from West
Europe to a registry at three distances.  Shape to reproduce: remote
operations are orders of magnitude slower than local ones.
"""

from repro.experiments.fig1_latency import PAPER_FILE_COUNTS, run_fig1


def test_fig1_latency(benchmark, echo):
    result = benchmark.pedantic(
        lambda: run_fig1(file_counts=PAPER_FILE_COUNTS),
        rounds=1,
        iterations=1,
    )
    echo(result)
    # Headline property: the paper's "orders of magnitude" remote cost.
    assert result.ratio(5000, "distant region") >= 10
    assert result.ratio(5000, "same region") >= 3
    # Monotone in file count for every placement.
    for series in result.times.values():
        assert all(a < b for a, b in zip(series, series[1:]))
    benchmark.extra_info["ratio_distant_5000"] = result.ratio(
        5000, "distant region"
    )
