"""Benchmark: Figure 10 + Table I -- BuzzFlow and Montage makespans.

All three Table I scenarios x both workflows x all four strategies over
32 nodes / 4 DCs.  Shapes: decentralized strategies win the
metadata-intensive scenarios (paper: 15 % BuzzFlow / 28 % Montage gain
for DR over the baseline); replicated is competitive on computation-
intensive runs; strategy spread shrinks at small scale.

Per-task op counts run at half the paper's Table I figures
(``ops_scale=0.5``): every checked property is a *relative* gain or
spread between strategies, which the down-scale preserves, and the
benchmark is the suite's worst offender at full scale.
"""

import pytest

from repro.experiments.fig10_workflows import PAPER_GAINS, run_fig10
from repro.metadata.controller import StrategyName

pytestmark = pytest.mark.slow


def test_fig10_workflows(benchmark, echo):
    result = benchmark.pedantic(
        lambda: run_fig10(scenarios=("SS", "CI", "MI"), ops_scale=0.5),
        rounds=1,
        iterations=1,
    )
    echo(result)
    props = result.properties()
    assert not any("MISS" in line for line in props), "\n".join(props)
    for wf, paper_gain in PAPER_GAINS.items():
        measured = result.gain(wf, "MI", StrategyName.HYBRID)
        benchmark.extra_info[f"{wf}_mi_dr_gain"] = round(measured, 3)
        benchmark.extra_info[f"{wf}_mi_dr_gain_paper"] = paper_gain
