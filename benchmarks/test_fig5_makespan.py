"""Benchmark: Figure 5 -- node execution time vs metadata ops per node.

32 nodes over 4 DCs as in the paper; the ops/node sweep is capped at
5,000 (paper: 10,000) to keep the suite's wall time in check -- the
decentralized-vs-centralized gap is already fully developed there.
"""

import pytest

from repro.experiments.fig5_makespan import run_fig5
from repro.metadata.controller import StrategyName

pytestmark = pytest.mark.slow


def test_fig5_makespan(benchmark, echo):
    result = benchmark.pedantic(
        lambda: run_fig5(ops_per_node=(500, 1000, 2500, 5000), n_nodes=32),
        rounds=1,
        iterations=1,
    )
    echo(result)
    # The paper's qualitative claims, asserted on the measured series.
    props = result.properties()
    assert not any("MISS" in line for line in props), "\n".join(props)
    gain = max(
        result.gain_vs_centralized(StrategyName.DECENTRALIZED),
        result.gain_vs_centralized(StrategyName.HYBRID),
    )
    benchmark.extra_info["max_gain_vs_centralized"] = round(gain, 3)
    assert gain >= 0.25  # paper: up to ~50 %
