"""Benchmark: WAN saturation under the flow-level fair-share model.

The Fig. 7 regime the paper cares about is a *shared* bottleneck: once
concurrent inter-site traffic exceeds a link's capacity, aggregate
goodput must saturate at that capacity instead of growing with the
number of in-flight transfers.  The original slot model only caps
concurrency (every transfer gets the full bandwidth), so its aggregate
goodput keeps scaling ~linearly -- the fair model is the fix.

Four views are reported:

- raw link goodput: N concurrent same-link bulk transfers;
- storage-layer provisioning: every site pulls a dataset from one
  producer site (the paper's data-provisioning stage);
- hierarchical egress saturation: one producer fanning out over several
  links saturates at ``min(site egress cap, sum of link capacities)``;
- weighted shares: a weight-2 flow sustains ~2x a weight-1 flow's rate
  on a shared bottleneck.
"""

import pytest

from repro.cloud.deployment import Deployment
from repro.experiments.reporting import render_table
from repro.sim import AllOf
from repro.storage.filestore import StoredFile
from repro.storage.transfer import TransferService
from repro.util.units import MB

WAN_BW = 50 * MB  # azure preset link capacity, bytes/s


def _link_goodput(model: str, n: int, size: int) -> float:
    """Aggregate bytes/s of ``n`` concurrent same-link transfers."""
    dep = Deployment(n_nodes=4, seed=3, bandwidth_model=model)
    env, net = dep.env, dep.network

    def xfer():
        yield from net.transfer("west-europe", "east-us", size=size)

    procs = [env.process(xfer()) for _ in range(n)]
    env.run(until=AllOf(env, procs))
    return n * size / env.now


def test_fair_share_link_saturation(benchmark):
    """Fair: goodput saturates at link capacity; slots: grows ~linearly."""
    size = 20 * MB
    fan_out = (1, 2, 4, 8, 16, 32)

    def run():
        return {
            model: [_link_goodput(model, n, size) for n in fan_out]
            for model in ("slots", "fair")
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [n, f"{results['slots'][i] / MB:.0f}", f"{results['fair'][i] / MB:.0f}"]
        for i, n in enumerate(fan_out)
    ]
    print(
        "\n"
        + render_table(
            ["concurrent transfers", "slots (MB/s)", "fair (MB/s)"],
            rows,
            title=(
                "Aggregate goodput on one 50 MB/s WAN link "
                "(Fig. 7-style saturation)"
            ),
        )
    )
    slots, fair = results["slots"], results["fair"]
    # Fair sharing saturates: aggregate goodput never exceeds capacity
    # (propagation latency keeps it just below) and stays flat from the
    # first saturated point onwards.
    assert all(g <= WAN_BW * 1.01 for g in fair)
    assert fair[-1] / fair[1] < 1.1  # flat once saturated (16x the flows)
    # The slot model keeps converting concurrency into goodput instead
    # of contending -- the bug the fair model fixes.
    assert slots[-1] > 5 * fair[-1]
    assert slots[-1] / slots[0] > 10
    benchmark.extra_info["fair_peak_MBps"] = round(fair[-1] / MB, 1)
    benchmark.extra_info["slots_peak_MBps"] = round(slots[-1] / MB, 1)


def test_fair_share_provisioning_stage(benchmark):
    """Storage layer: concurrent dataset pulls from one producer site
    take proportionally longer under fair sharing (shared egress), while
    the slot model finishes them all in near-constant time."""
    size = 25 * MB
    n_files = 12

    def stage(model: str) -> float:
        dep = Deployment(n_nodes=4, seed=11, bandwidth_model=model)
        svc = TransferService(dep.env, dep.network, dep.sites)
        for i in range(n_files):
            svc.store("west-europe", StoredFile(f"part-{i}", size))

        def pull(i):
            yield from svc.fetch(f"part-{i}", "east-us")

        procs = [dep.env.process(pull(i)) for i in range(n_files)]
        dep.env.run(until=AllOf(dep.env, procs))
        return dep.env.now

    def run():
        return {model: stage(model) for model in ("slots", "fair")}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        "\n"
        + render_table(
            ["model", "stage completion (s)"],
            [[m, f"{t:.2f}"] for m, t in results.items()],
            title=(
                f"Data provisioning: {n_files} x {size // MB} MB pulls "
                "from one producer site"
            ),
        )
    )
    serial = n_files * size / WAN_BW
    # Fair: the producer's egress link is the bottleneck -- the stage
    # cannot beat serial transmission time over the shared link.
    assert results["fair"] >= serial * 0.99
    # Slots: all pulls ride the link concurrently at full bandwidth.
    assert results["slots"] < serial / 4


def _fan_out_goodput(egress_cap, n_per_link, size):
    """Aggregate bytes/s of one producer fanning out over three links."""
    dep = Deployment(
        n_nodes=4,
        seed=5,
        bandwidth_model="fair",
        site_egress_bw=egress_cap,
    )
    env, net = dep.env, dep.network
    dsts = [s for s in dep.sites if s != "west-europe"]

    def xfer(dst):
        yield from net.transfer("west-europe", dst, size=size)

    procs = [
        env.process(xfer(dst)) for dst in dsts for _ in range(n_per_link)
    ]
    env.run(until=AllOf(env, procs))
    return len(procs) * size / env.now


def test_egress_cap_saturation(benchmark):
    """Acceptance: fan-out goodput saturates at
    ``min(site egress cap, sum of link capacities)``."""
    size = 20 * MB
    n_per_link = 4  # 3 links x 4 flows: every link individually saturated
    link_sum = 3 * WAN_BW  # three 50 MB/s links leave west-europe
    caps = (60 * MB, 100 * MB, 150 * MB, None)  # None: uncapped

    def run():
        return {
            cap: _fan_out_goodput(cap, n_per_link, size) for cap in caps
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        "\n"
        + render_table(
            ["egress cap (MB/s)", "expected (MB/s)", "goodput (MB/s)"],
            [
                [
                    "inf" if cap is None else f"{cap / MB:.0f}",
                    f"{min(cap or link_sum, link_sum) / MB:.0f}",
                    f"{goodput / MB:.1f}",
                ]
                for cap, goodput in results.items()
            ],
            title=(
                "Hierarchical saturation: one producer, three 50 MB/s "
                "WAN links"
            ),
        )
    )
    for cap, goodput in results.items():
        expected = min(cap or link_sum, link_sum)
        # Saturates at the binding constraint (propagation latency keeps
        # goodput just below it) and never exceeds it.
        assert goodput <= expected * 1.01
        assert goodput >= expected * 0.95


def test_weighted_flows_share_bottleneck_proportionally(benchmark):
    """Acceptance: a weight-2 flow sustains ~2x a weight-1 flow's rate
    on a shared bottleneck link."""
    size = 50 * MB

    def run():
        dep = Deployment(n_nodes=4, seed=9, bandwidth_model="fair")
        env, net = dep.env, dep.network
        rates = {}
        done = {}

        def xfer(tag, weight):
            yield from net.transfer(
                "west-europe", "east-us", size=size, weight=weight
            )
            done[tag] = env.now

        def probe():
            yield env.timeout(0.05)  # both flows active and contending
            light, heavy = net.flow_net.active_flows()
            rates["light"], rates["heavy"] = light.rate, heavy.rate

        env.process(xfer("light", 1.0))
        env.process(xfer("heavy", 2.0))
        env.process(probe())
        env.run()
        return rates, done

    (rates, done) = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        "\n"
        + render_table(
            ["flow", "contended rate (MB/s)", "completed at (s)"],
            [
                ["weight 1", f"{rates['light'] / MB:.1f}",
                 f"{done['light']:.2f}"],
                ["weight 2", f"{rates['heavy'] / MB:.1f}",
                 f"{done['heavy']:.2f}"],
            ],
            title="Weighted max-min on one 50 MB/s link (50 MB each)",
        )
    )
    # While both contend, the weight-2 flow holds exactly twice the
    # share; it therefore finishes first despite equal sizes.
    assert rates["heavy"] == pytest.approx(2 * rates["light"])
    assert rates["heavy"] + rates["light"] == pytest.approx(WAN_BW)
    assert done["heavy"] < done["light"]
    # Sustained-rate view: the heavy flow's whole 50 MB went through at
    # ~2/3 of the link (its fair share with a weight-1 competitor).
    sustained = size / (done["heavy"] - 0.04)  # minus propagation
    assert sustained == pytest.approx(2 * WAN_BW / 3, rel=0.02)
