"""Benchmark harness configuration.

Every benchmark regenerates one table/figure of the paper's evaluation
and prints the paper-vs-measured report.  Run with::

    pytest benchmarks/ --benchmark-only

Workload sizes are moderated relative to the paper's exact parameters
(documented per bench) so the whole suite completes in minutes; the
experiment modules default to the full paper parameters for standalone
use (``python -m repro.experiments.runner``).
"""

import pytest


def report(result, capsys=None) -> str:
    """Render an experiment result and echo it to the terminal."""
    text = result.render()
    print("\n" + text)
    return text


@pytest.fixture
def echo():
    return report
