#!/usr/bin/env python
"""Kernel profiling harness + synthetic churn benchmarks.

Two subcommands::

    python benchmarks/profile_kernel.py profile [--scenario NAME]
                                                [--sort tottime] [--top 25]
    python benchmarks/profile_kernel.py churn   [--merge-into BENCH.json]
                                                [--json PATH] [--runs 2]

``profile`` runs one pinned bench scenario (from ``scripts/bench.py``)
under :mod:`cProfile` and prints the hottest functions -- this is the
workflow that located every optimization in the speedup PR (the event
calendar, the water-filling re-solve, per-op stats allocation).

``churn`` runs the synthetic churn workloads that isolate the two
algorithmic changes, measuring each against its retained "before"
implementation *in the same process, on the same inputs*:

- **flow churn**: many independent constraint components with flows
  opening/completing/aborting concurrently.  ``solver="global"`` is the
  seed algorithm (full re-solve on every perturbation, kept as a debug
  mode); ``solver="incremental"`` re-solves only the perturbed
  component.  Results are checked identical before the speedup is
  reported.
- **reschedule churn**: rebalance-style timer churn (every perturbation
  reschedules many pending completions).  "Before" disables dead-entry
  compaction (the seed behavior: lazily-deleted entries pile up in the
  calendar); "after" is the shipped 50%-dead compaction threshold.

``--merge-into BENCH_<rev>.json`` embeds the results under a ``churn``
key of an existing bench-trajectory document (see ``scripts/bench.py``),
which is how the committed ``BENCH_<rev>.json`` carries both the pinned
scenario walls and the churn-scenario speedups.
"""

from __future__ import annotations

import argparse
import cProfile
import json
import math
import pstats
import random
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.cloud.flow import FlowAborted, FlowNetwork  # noqa: E402
from repro.sim import Environment  # noqa: E402
from repro.sim import core as sim_core  # noqa: E402

LINK_CAP = 100.0


# -- cProfile over a pinned scenario ---------------------------------------


def run_profile(scenario: str, sort: str, top: int) -> None:
    sys.path.insert(0, str(REPO_ROOT / "scripts"))
    from bench import pinned_scenarios

    specs = dict(pinned_scenarios())
    if scenario not in specs:
        raise SystemExit(
            f"unknown scenario {scenario!r}; pinned: {sorted(specs)}"
        )
    spec = specs[scenario]
    prof = cProfile.Profile()
    prof.enable()
    spec.run(quick=True)
    prof.disable()
    stats = pstats.Stats(prof, stream=sys.stdout)
    stats.strip_dirs().sort_stats(sort).print_stats(top)


# -- flow churn: incremental vs global water-filling -----------------------


def _flow_churn(solver: str, components: int,
                flows_per_component: int, seed: int):
    """Seeded churn over ``components`` disjoint 3-site meshes.

    Returns a completion trace so callers can assert the two solvers
    produced identical simulations before trusting the wall times.
    """
    env = Environment()
    egress = {}
    ingress = {}
    sites = []
    for c in range(components):
        trio = tuple(f"s{c}_{i}" for i in range(3))
        sites.append(trio)
        egress[trio[0]] = LINK_CAP * 1.2
        ingress[trio[1]] = LINK_CAP * 0.8
    fn = FlowNetwork(
        env,
        site_caps=lambda s: (
            egress.get(s, math.inf),
            ingress.get(s, math.inf),
        ),
        solver=solver,
    )
    for trio in sites:
        for src in trio:
            for dst in trio:
                if src != dst:
                    fn.link(src, dst, capacity=LINK_CAP)
    rng = random.Random(seed)
    trace = []

    def client(i, trio):
        yield env.timeout(rng.random() * 10.0)
        src, dst = rng.sample(trio, 2)
        link = fn.link(src, dst, capacity=LINK_CAP)
        flow = link.open(
            size=rng.randrange(100, 5000),
            weight=rng.choice([0.5, 1.0, 2.0]),
        )
        if i % 11 == 0:
            yield env.timeout(rng.random())
            if flow in link.flows:
                link.abort(flow, reason="churn")
        try:
            yield flow.done
            trace.append(("done", i, round(env.now, 6)))
        except FlowAborted:
            trace.append(("aborted", i, round(env.now, 6)))

    i = 0
    for trio in sites:
        for _ in range(flows_per_component):
            env.process(client(i, trio))
            i += 1
    env.run()
    return trace


def bench_flow_churn(components: int, flows_per_component: int,
                     runs: int, seed: int = 42):
    walls = {}
    traces = {}
    for solver in ("global", "incremental"):
        best = math.inf
        for _ in range(runs):
            t0 = time.perf_counter()
            traces[solver] = _flow_churn(
                solver, components, flows_per_component, seed
            )
            best = min(best, time.perf_counter() - t0)
        walls[solver] = best
    return {
        "components": components,
        "flows": components * flows_per_component,
        "wall_global_s": round(walls["global"], 4),
        "wall_incremental_s": round(walls["incremental"], 4),
        "speedup": round(walls["global"] / walls["incremental"], 2),
        "identical_results": traces["global"] == traces["incremental"],
    }


# -- reschedule churn: compaction vs unbounded lazy deletion ---------------


def _reschedule_churn(live: int, rounds: int):
    """Rebalance-style churn: every round reschedules all live timers.

    Returns (wall_seconds, max_queue_len) for the current value of
    ``sim_core._COMPACT_MIN`` (set above the churn volume to emulate the
    pre-compaction kernel, where every reschedule leaks a dead entry).
    """
    env = Environment()
    events = [env.timeout(1e6 + i) for i in range(live)]
    max_queue = 0
    t0 = time.perf_counter()
    for r in range(rounds):
        for ev in events:
            env.reschedule(ev, 1e6 + r)
        max_queue = max(max_queue, env.queued)
    env.run(until=1e6)
    wall = time.perf_counter() - t0
    return wall, max_queue


def bench_reschedule_churn(live: int, rounds: int, runs: int):
    results = {}
    threshold = sim_core._COMPACT_MIN
    for mode in ("no_compaction", "compaction"):
        sim_core._COMPACT_MIN = (
            live * rounds * 2 if mode == "no_compaction" else threshold
        )
        try:
            best = (math.inf, 0)
            for _ in range(runs):
                wall, max_queue = _reschedule_churn(live, rounds)
                if wall < best[0]:
                    best = (wall, max_queue)
            results[mode] = best
        finally:
            sim_core._COMPACT_MIN = threshold
    return {
        "live_events": live,
        "reschedules": live * rounds,
        "wall_no_compaction_s": round(results["no_compaction"][0], 4),
        "wall_compaction_s": round(results["compaction"][0], 4),
        "speedup": round(
            results["no_compaction"][0] / results["compaction"][0], 2
        ),
        "max_queue_no_compaction": results["no_compaction"][1],
        "max_queue_compaction": results["compaction"][1],
    }


def run_churn(runs: int):
    # Sized so the "before" (global / no-compaction) legs finish in a
    # few seconds each; the speedups grow with component count and
    # churn volume, so these are conservative demonstrations.
    doc = {
        "flow_churn_8c": bench_flow_churn(8, 80, runs),
        "flow_churn_16c": bench_flow_churn(16, 80, runs),
        "reschedule_churn": bench_reschedule_churn(256, 400, runs),
    }
    before = sum(
        v.get("wall_global_s", v.get("wall_no_compaction_s"))
        for v in doc.values()
    )
    after = sum(
        v.get("wall_incremental_s", v.get("wall_compaction_s"))
        for v in doc.values()
    )
    doc["aggregate"] = {
        "wall_before_s": round(before, 4),
        "wall_after_s": round(after, 4),
        "speedup": round(before / after, 2),
    }
    return doc


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="cmd", required=True)

    p_prof = sub.add_parser("profile", help="cProfile one pinned scenario")
    p_prof.add_argument("--scenario", default="fig5_synthetic")
    p_prof.add_argument("--sort", default="tottime")
    p_prof.add_argument("--top", type=int, default=25)

    p_churn = sub.add_parser("churn", help="run the churn benchmarks")
    p_churn.add_argument("--runs", type=int, default=2,
                         help="take the best of N runs (default 2)")
    p_churn.add_argument("--json", default=None, metavar="PATH",
                         help="write the churn document to PATH")
    p_churn.add_argument("--merge-into", default=None, metavar="BENCH",
                         help="embed under the 'churn' key of a "
                              "BENCH_<rev>.json trajectory file")

    args = parser.parse_args(argv)
    if args.cmd == "profile":
        run_profile(args.scenario, args.sort, args.top)
        return 0

    doc = run_churn(args.runs)
    for name, entry in doc.items():
        if name == "aggregate":
            continue
        print(
            f"{name:<22} before {entry.get('wall_global_s', entry.get('wall_no_compaction_s')):7.3f}s"
            f"  after {entry.get('wall_incremental_s', entry.get('wall_compaction_s')):7.3f}s"
            f"  {entry['speedup']:5.2f}x",
            file=sys.stderr,
        )
    agg = doc["aggregate"]
    print(
        f"{'aggregate':<22} before {agg['wall_before_s']:7.3f}s"
        f"  after {agg['wall_after_s']:7.3f}s  {agg['speedup']:5.2f}x",
        file=sys.stderr,
    )
    if args.json:
        Path(args.json).write_text(json.dumps(doc, indent=2) + "\n")
    if args.merge_into:
        path = Path(args.merge_into)
        bench = json.loads(path.read_text())
        bench["churn"] = doc
        path.write_text(json.dumps(bench, indent=2) + "\n")
        print(f"merged churn results into {path}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
