"""CI lint step: the source tree must stay free of unused imports.

Backed by :mod:`repro.util.lint` (AST-based; the container ships no
third-party linter).  Runs as part of the default pytest entry point so
dead imports cannot creep back in.
"""

import textwrap
from pathlib import Path

from repro.util import lint

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_src_tree_has_no_unused_imports():
    findings = lint.check_tree(REPO_ROOT / "src")
    assert not findings, "\n".join(str(f) for f in findings)


class TestChecker:
    def _check(self, tmp_path, source: str):
        f = tmp_path / "mod.py"
        f.write_text(textwrap.dedent(source))
        return lint.check_file(f)

    def test_flags_unused_from_import(self, tmp_path):
        findings = self._check(
            tmp_path,
            """
            from os import path, sep
            print(sep)
            """,
        )
        assert [(f.name, f.line) for f in findings] == [("path", 2)]

    def test_flags_unused_module_import(self, tmp_path):
        findings = self._check(tmp_path, "import bisect\n")
        assert [f.name for f in findings] == ["bisect"]

    def test_dotted_import_binds_root(self, tmp_path):
        assert not self._check(
            tmp_path,
            """
            import os.path
            print(os.sep)
            """,
        )

    def test_alias_binds_alias(self, tmp_path):
        findings = self._check(tmp_path, "import numpy as np\n")
        assert [f.name for f in findings] == ["np"]

    def test_name_in_all_counts_as_used(self, tmp_path):
        assert not self._check(
            tmp_path,
            """
            from os import sep
            __all__ = ["sep"]
            """,
        )

    def test_name_in_string_annotation_counts_as_used(self, tmp_path):
        assert not self._check(
            tmp_path,
            """
            from typing import Generator

            def f(x: "Generator | None"):
                return x
            """,
        )

    def test_future_imports_exempt(self, tmp_path):
        assert not self._check(
            tmp_path, "from __future__ import annotations\n"
        )

    def test_init_files_exempt(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("from os import sep\n")
        assert not lint.check_tree(pkg)
