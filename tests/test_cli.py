"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figures_flags(self):
        args = build_parser().parse_args(["figures", "--quick", "--only", "fig1"])
        assert args.quick and args.only == "fig1"

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.strategy == "hybrid"
        assert args.nodes == 32


class TestCommands:
    def test_strategies_lists_all(self, capsys):
        assert main(["strategies"]) == 0
        out = capsys.readouterr().out
        for name in (
            "centralized",
            "replicated",
            "decentralized",
            "hybrid",
            "subtree",
            "relational-db",
            "k-replicated",
        ):
            assert name in out

    def test_simulate_small(self, capsys):
        assert (
            main(
                [
                    "simulate",
                    "--strategy",
                    "dn",
                    "--nodes",
                    "8",
                    "--ops",
                    "10",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "throughput" in out
        assert "mean node time by site" in out

    def test_advise_montage(self, capsys):
        assert main(["advise", "--workflow", "montage", "--ops", "1000"]) == 0
        out = capsys.readouterr().out
        assert "recommended strategy: decentralized" in out

    def test_figures_single_quick(self, capsys):
        assert main(["figures", "--quick", "--only", "fig1"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 1" in out

    def test_run_with_workflow_file_and_export(self, capsys, tmp_path):
        from repro.workflow import pipeline, save_workflow

        wf_path = tmp_path / "wf.json"
        out_path = tmp_path / "run.json"
        save_workflow(pipeline(3, extra_ops=4), wf_path)
        assert (
            main(
                [
                    "run",
                    "--file",
                    str(wf_path),
                    "--strategy",
                    "dr",
                    "--nodes",
                    "8",
                    "--export",
                    str(out_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "tasks per site" in out
        import json

        doc = json.loads(out_path.read_text())
        assert doc["strategy"] == "hybrid"

    def test_advise_from_file(self, capsys, tmp_path):
        from repro.workflow import pipeline, save_workflow

        wf_path = tmp_path / "wf.json"
        save_workflow(pipeline(5, extra_ops=1200), wf_path)
        assert main(["advise", "--file", str(wf_path)]) == 0
        out = capsys.readouterr().out
        assert "recommended strategy" in out

    def test_advise_requires_target(self):
        import pytest

        with pytest.raises(SystemExit):
            build_parser().parse_args(["advise"])


class TestSchedulerFlags:
    def test_schedulers_lists_all_policies(self, capsys):
        assert main(["schedulers"]) == 0
        out = capsys.readouterr().out
        for name in (
            "locality",
            "round_robin",
            "load_balanced",
            "bandwidth_aware",
            "hybrid",
        ):
            assert name in out

    def test_run_with_scheduler(self, capsys):
        assert (
            main(
                [
                    "run",
                    "--workflow",
                    "montage",
                    "--strategy",
                    "dn",
                    "--nodes",
                    "8",
                    "--ops",
                    "2",
                    "--scheduler",
                    "load_balanced",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "load_balanced" in out

    def test_unknown_scheduler_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "--workflow", "montage", "--scheduler", "annealing"]
            )

    @pytest.mark.parametrize(
        "flags",
        [
            ["--hybrid-locality-weight", "2.0"],
            ["--hybrid-load-weight", "0.5"],
            ["--hybrid-transfer-weight", "3.0"],
            ["--scheduler", "locality", "--hybrid-locality-weight", "2.0"],
            ["--scheduler", "bandwidth_aware",
             "--hybrid-transfer-weight", "2.0"],
        ],
    )
    def test_hybrid_knobs_require_hybrid_scheduler(self, flags, capsys):
        code = main(["run", "--workflow", "montage"] + flags)
        assert code == 2
        err = capsys.readouterr().err
        assert "require --scheduler hybrid" in err

    @pytest.mark.parametrize(
        "flags",
        [
            ["--bw-pending-penalty", "0.0"],
            ["--scheduler", "locality", "--bw-pending-penalty", "2.0"],
            ["--scheduler", "load_balanced", "--bw-pending-penalty", "0.5"],
        ],
    )
    def test_pending_penalty_requires_bandwidth_aware(self, flags, capsys):
        code = main(["run", "--workflow", "montage"] + flags)
        assert code == 2
        err = capsys.readouterr().err
        assert "--bw-pending-penalty requires" in err

    def test_knobs_accepted_with_matching_scheduler(self, capsys):
        assert (
            main(
                [
                    "run",
                    "--workflow",
                    "montage",
                    "--strategy",
                    "dn",
                    "--nodes",
                    "8",
                    "--ops",
                    "2",
                    "--scheduler",
                    "hybrid",
                    "--hybrid-locality-weight",
                    "2.0",
                    "--bw-pending-penalty",
                    "0.5",
                ]
            )
            == 0
        )
        assert "hybrid" in capsys.readouterr().out


class TestWorkloadFlags:
    def test_workloads_lists_applications_and_policies(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        for name in ("montage-small", "ingest", "max_in_flight"):
            assert name in out

    def test_run_multi_tenant_closed_loop(self, capsys):
        assert (
            main(
                [
                    "run", "--workflow", "montage", "--tenants", "3",
                    "--admission", "max_in_flight",
                    "--max-in-flight", "2", "--ops", "8", "--nodes", "8",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "tenant-02" in out
        assert "peak in-flight 2 (bound 2)" in out
        assert "Jain fairness" in out

    @pytest.mark.parametrize(
        "flags",
        [
            ["--admission", "unbounded"],
            ["--instances", "2"],
            ["--mode", "open"],
            ["--think-time", "1.5"],
            ["--arrival-rate", "0.5"],
        ],
    )
    def test_workload_flags_require_tenants(self, flags, capsys):
        """Single-workflow mode must reject workload-only knobs instead
        of silently ignoring them (masquerade guard)."""
        rc = main(["run", "--workflow", "montage"] + flags)
        assert rc == 2
        assert "--tenants" in capsys.readouterr().err

    def test_admission_knobs_require_policy(self, capsys):
        rc = main(
            [
                "run", "--workflow", "montage", "--tenants", "2",
                "--max-in-flight", "2",
            ]
        )
        assert rc == 2
        assert "max_in_flight" in capsys.readouterr().err

    def test_tenants_incompatible_with_file(self, capsys, tmp_path):
        from repro.workflow.patterns import scatter
        from repro.workflow.serialization import save_workflow

        path = tmp_path / "wf.json"
        save_workflow(scatter(2), path)
        rc = main(["run", "--file", str(path), "--tenants", "2"])
        assert rc == 2
        assert "--workflow" in capsys.readouterr().err

    def test_open_loop_run(self, capsys):
        assert (
            main(
                [
                    "run", "--workflow", "buzzflow", "--tenants", "2",
                    "--mode", "open", "--arrival-rate", "1.0",
                    "--ops", "4", "--nodes", "8",
                ]
            )
            == 0
        )
        assert "open loop" in capsys.readouterr().out
