"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figures_flags(self):
        args = build_parser().parse_args(["figures", "--quick", "--only", "fig1"])
        assert args.quick and args.only == "fig1"

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.strategy == "hybrid"
        assert args.nodes == 32


class TestCommands:
    def test_strategies_lists_all(self, capsys):
        assert main(["strategies"]) == 0
        out = capsys.readouterr().out
        for name in (
            "centralized",
            "replicated",
            "decentralized",
            "hybrid",
            "subtree",
            "relational-db",
            "k-replicated",
        ):
            assert name in out

    def test_simulate_small(self, capsys):
        assert (
            main(
                [
                    "simulate",
                    "--strategy",
                    "dn",
                    "--nodes",
                    "8",
                    "--ops",
                    "10",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "throughput" in out
        assert "mean node time by site" in out

    def test_advise_montage(self, capsys):
        assert main(["advise", "--workflow", "montage", "--ops", "1000"]) == 0
        out = capsys.readouterr().out
        assert "recommended strategy: decentralized" in out

    def test_figures_single_quick(self, capsys):
        assert main(["figures", "--quick", "--only", "fig1"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 1" in out

    def test_run_with_workflow_file_and_export(self, capsys, tmp_path):
        from repro.workflow import pipeline, save_workflow

        wf_path = tmp_path / "wf.json"
        out_path = tmp_path / "run.json"
        save_workflow(pipeline(3, extra_ops=4), wf_path)
        assert (
            main(
                [
                    "run",
                    "--file",
                    str(wf_path),
                    "--strategy",
                    "dr",
                    "--nodes",
                    "8",
                    "--export",
                    str(out_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "tasks per site" in out
        import json

        doc = json.loads(out_path.read_text())
        assert doc["strategy"] == "hybrid"

    def test_advise_from_file(self, capsys, tmp_path):
        from repro.workflow import pipeline, save_workflow

        wf_path = tmp_path / "wf.json"
        save_workflow(pipeline(5, extra_ops=1200), wf_path)
        assert main(["advise", "--file", str(wf_path)]) == 0
        out = capsys.readouterr().out
        assert "recommended strategy" in out

    def test_advise_requires_target(self):
        import pytest

        with pytest.raises(SystemExit):
            build_parser().parse_args(["advise"])


class TestSchedulerFlags:
    def test_schedulers_lists_all_policies(self, capsys):
        assert main(["schedulers"]) == 0
        out = capsys.readouterr().out
        for name in (
            "locality",
            "round_robin",
            "load_balanced",
            "bandwidth_aware",
            "hybrid",
        ):
            assert name in out

    def test_run_with_scheduler(self, capsys):
        assert (
            main(
                [
                    "run",
                    "--workflow",
                    "montage",
                    "--strategy",
                    "dn",
                    "--nodes",
                    "8",
                    "--ops",
                    "2",
                    "--scheduler",
                    "load_balanced",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "load_balanced" in out

    def test_unknown_scheduler_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "--workflow", "montage", "--scheduler", "annealing"]
            )

    @pytest.mark.parametrize(
        "flags",
        [
            ["--hybrid-locality-weight", "2.0"],
            ["--hybrid-load-weight", "0.5"],
            ["--hybrid-transfer-weight", "3.0"],
            ["--scheduler", "locality", "--hybrid-locality-weight", "2.0"],
            ["--scheduler", "bandwidth_aware",
             "--hybrid-transfer-weight", "2.0"],
        ],
    )
    def test_hybrid_knobs_require_hybrid_scheduler(self, flags, capsys):
        code = main(["run", "--workflow", "montage"] + flags)
        assert code == 2
        err = capsys.readouterr().err
        assert "require --scheduler hybrid" in err

    @pytest.mark.parametrize(
        "flags",
        [
            ["--bw-pending-penalty", "0.0"],
            ["--scheduler", "locality", "--bw-pending-penalty", "2.0"],
            ["--scheduler", "load_balanced", "--bw-pending-penalty", "0.5"],
        ],
    )
    def test_pending_penalty_requires_bandwidth_aware(self, flags, capsys):
        code = main(["run", "--workflow", "montage"] + flags)
        assert code == 2
        err = capsys.readouterr().err
        assert "--bw-pending-penalty requires" in err

    def test_knobs_accepted_with_matching_scheduler(self, capsys):
        assert (
            main(
                [
                    "run",
                    "--workflow",
                    "montage",
                    "--strategy",
                    "dn",
                    "--nodes",
                    "8",
                    "--ops",
                    "2",
                    "--scheduler",
                    "hybrid",
                    "--hybrid-locality-weight",
                    "2.0",
                    "--bw-pending-penalty",
                    "0.5",
                ]
            )
            == 0
        )
        assert "hybrid" in capsys.readouterr().out


class TestWorkloadFlags:
    def test_workloads_lists_applications_and_policies(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        for name in ("montage-small", "ingest", "max_in_flight"):
            assert name in out

    def test_run_multi_tenant_closed_loop(self, capsys):
        assert (
            main(
                [
                    "run", "--workflow", "montage", "--tenants", "3",
                    "--admission", "max_in_flight",
                    "--max-in-flight", "2", "--ops", "8", "--nodes", "8",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "tenant-02" in out
        assert "peak in-flight 2 (bound 2)" in out
        assert "Jain fairness" in out

    @pytest.mark.parametrize(
        "flags",
        [
            ["--admission", "unbounded"],
            ["--instances", "2"],
            ["--mode", "open"],
            ["--think-time", "1.5"],
            ["--arrival-rate", "0.5"],
        ],
    )
    def test_workload_flags_require_tenants(self, flags, capsys):
        """Single-workflow mode must reject workload-only knobs instead
        of silently ignoring them (masquerade guard)."""
        rc = main(["run", "--workflow", "montage"] + flags)
        assert rc == 2
        assert "--tenants" in capsys.readouterr().err

    def test_admission_knobs_require_policy(self, capsys):
        rc = main(
            [
                "run", "--workflow", "montage", "--tenants", "2",
                "--max-in-flight", "2",
            ]
        )
        assert rc == 2
        assert "max_in_flight" in capsys.readouterr().err

    def test_tenants_incompatible_with_file(self, capsys, tmp_path):
        from repro.workflow.patterns import scatter
        from repro.workflow.serialization import save_workflow

        path = tmp_path / "wf.json"
        save_workflow(scatter(2), path)
        rc = main(["run", "--file", str(path), "--tenants", "2"])
        assert rc == 2
        assert "--workflow" in capsys.readouterr().err

    def test_open_loop_run(self, capsys):
        assert (
            main(
                [
                    "run", "--workflow", "buzzflow", "--tenants", "2",
                    "--mode", "open", "--arrival-rate", "1.0",
                    "--ops", "4", "--nodes", "8",
                ]
            )
            == 0
        )
        assert "open loop" in capsys.readouterr().out


class TestScenarioFlags:
    def test_scenarios_lists_registry(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        for name in (
            "paper_default",
            "paper_synthetic",
            "fair_capped",
            "multi_tenant_8",
            "outage_resilience",
        ):
            assert name in out

    def test_dump_spec_to_stdout(self, capsys):
        """The fast-profile smoke check: flags compile to a spec."""
        assert (
            main(
                [
                    "run", "--workflow", "montage", "--ops", "2",
                    "--nodes", "8", "--dump-spec", "-",
                ]
            )
            == 0
        )
        import json

        doc = json.loads(capsys.readouterr().out)
        assert doc["surface"] == "workflow"
        assert doc["application"] == "montage"
        assert doc["ops_per_task"] == 2
        assert doc["n_nodes"] == 8

    def test_dump_spec_then_spec_reproduces_the_run(self, capsys, tmp_path):
        """--dump-spec output re-fed via --spec reproduces the same
        result object (identical rendered report)."""
        flags = [
            "run", "--workflow", "buzzflow", "--strategy", "dn",
            "--ops", "2", "--nodes", "8", "--seed", "3",
        ]
        assert main(flags) == 0
        direct_out = capsys.readouterr().out
        path = tmp_path / "spec.json"
        assert main(flags + ["--dump-spec", str(path)]) == 0
        capsys.readouterr()
        assert main(["run", "--spec", str(path)]) == 0
        spec_out = capsys.readouterr().out
        assert spec_out == direct_out

    def test_dump_spec_for_workload_mode(self, capsys, tmp_path):
        path = tmp_path / "wl.json"
        assert (
            main(
                [
                    "run", "--workflow", "montage", "--tenants", "3",
                    "--admission", "max_in_flight", "--max-in-flight", "2",
                    "--ops", "4", "--nodes", "8",
                    "--dump-spec", str(path),
                ]
            )
            == 0
        )
        import json

        doc = json.loads(path.read_text())
        assert doc["surface"] == "workload"
        assert doc["admission"] == "max_in_flight"
        assert len(doc["workload"]["tenants"]) == 3

    def test_spec_rejects_conflicting_direct_flags(self, capsys, tmp_path):
        path = tmp_path / "spec.json"
        assert (
            main(
                [
                    "run", "--workflow", "montage", "--ops", "2",
                    "--nodes", "8", "--dump-spec", str(path),
                ]
            )
            == 0
        )
        capsys.readouterr()
        rc = main(["run", "--spec", str(path), "--nodes", "4"])
        assert rc == 2
        assert "--spec replaces" in capsys.readouterr().err

    def test_spec_is_exclusive_with_workflow(self, tmp_path):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "--workflow", "montage", "--spec", "x.json"]
            )

    def test_spec_missing_file_errors_cleanly(self, capsys):
        rc = main(["run", "--spec", "/nonexistent/spec.json"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_invalid_spec_rejected(self, capsys, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"surface": "workflow", "admission": "unbounded"}')
        rc = main(["run", "--spec", str(path)])
        assert rc == 2
        assert "workload-surface" in capsys.readouterr().err

    def test_wrongly_typed_spec_rejected_cleanly(self, capsys, tmp_path):
        """Hand-edited JSON with a mistyped value errors, not a traceback."""
        path = tmp_path / "typed.json"
        path.write_text('{"surface": "workflow", "n_nodes": "eight"}')
        rc = main(["run", "--spec", str(path)])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_runtime_value_error_reported_cleanly(self, capsys, tmp_path):
        """A spec that validates but cannot run (1-node synthetic
        benchmark) exits 2 with an error line, not a traceback."""
        from repro.scenario import ScenarioSpec

        path = tmp_path / "tiny.json"
        ScenarioSpec(surface="synthetic", n_nodes=1, ops_per_node=2).save(
            path
        )
        rc = main(["run", "--spec", str(path)])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_run_named_scenario_via_dumped_spec(self, capsys, tmp_path):
        """Registry scenarios are plain spec files once saved."""
        from repro.scenario import get_scenario

        spec = get_scenario("paper_default").replace(
            ops_per_task=2, n_nodes=8
        )
        path = tmp_path / "paper.json"
        spec.save(path)
        assert main(["run", "--spec", str(path)]) == 0
        assert "tasks per site" in capsys.readouterr().out


class TestSweepCommand:
    def test_sweep_over_spec_file(self, capsys, tmp_path):
        from repro.scenario import ScenarioSpec, StrategySpec

        path = tmp_path / "base.json"
        ScenarioSpec(
            name="sweep-base",
            surface="synthetic",
            strategy=StrategySpec(name="hybrid"),
            ops_per_node=5,
            n_nodes=8,
            seed=1,
        ).save(path)
        assert (
            main(
                [
                    "sweep", "--spec", str(path),
                    "--set", "strategy.name=centralized,hybrid",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "2 combinations" in out
        assert "centralized" in out and "hybrid" in out

    def test_sweep_export(self, capsys, tmp_path):
        from repro.scenario import ScenarioSpec

        base = tmp_path / "base.json"
        out_path = tmp_path / "sweep.json"
        ScenarioSpec(
            surface="synthetic", ops_per_node=5, n_nodes=8
        ).save(base)
        assert (
            main(
                [
                    "sweep", "--spec", str(base),
                    "--set", "n_nodes=4,8",
                    "--export", str(out_path),
                ]
            )
            == 0
        )
        import json

        doc = json.loads(out_path.read_text())
        assert len(doc["cells"]) == 2
        assert doc["axes"] == {"n_nodes": [4, 8]}

    def test_sweep_requires_axes(self, capsys):
        rc = main(["sweep", "--scenario", "paper_synthetic"])
        assert rc == 2
        assert "--set" in capsys.readouterr().err

    def test_sweep_bad_set_syntax(self, capsys):
        rc = main(
            ["sweep", "--scenario", "paper_synthetic", "--set", "n_nodes"]
        )
        assert rc == 2
        assert "dotted.path" in capsys.readouterr().err

    def test_sweep_unknown_scenario(self, capsys):
        rc = main(["sweep", "--scenario", "nope", "--set", "n_nodes=4"])
        assert rc == 2
        assert "unknown scenario" in capsys.readouterr().err


class TestSweepParallelAndStore:
    def _base(self, tmp_path):
        from repro.scenario import ScenarioSpec

        path = tmp_path / "base.json"
        ScenarioSpec(
            name="cli-par", surface="synthetic", ops_per_node=5, n_nodes=8
        ).save(path)
        return path

    def test_sweep_jobs_writes_same_artifacts_as_serial(
        self, capsys, tmp_path
    ):
        base = self._base(tmp_path)
        argv = ["sweep", "--spec", str(base), "--set", "seed=0,1"]
        assert main(argv + ["--jobs", "2", "--out", str(tmp_path / "a")]) == 0
        assert main(argv + ["--out", str(tmp_path / "b")]) == 0
        out = capsys.readouterr().out
        assert "2 artifacts written" in out
        a_files = sorted(p.name for p in (tmp_path / "a").glob("*.json"))
        b_files = sorted(p.name for p in (tmp_path / "b").glob("*.json"))
        assert a_files == b_files and len(a_files) == 2
        import json

        for name in a_files:
            doc_a = json.loads((tmp_path / "a" / name).read_text())
            doc_b = json.loads((tmp_path / "b" / name).read_text())
            # meta carries wall time (varies run to run); the result
            # payload itself is bit-for-bit identical.
            doc_a.pop("meta")
            doc_b.pop("meta")
            assert doc_a == doc_b

    def test_sweep_rejects_bad_jobs(self, capsys):
        rc = main(
            [
                "sweep", "--scenario", "paper_synthetic",
                "--set", "seed=0", "--jobs", "0",
            ]
        )
        assert rc == 2
        assert "--jobs" in capsys.readouterr().err

    def test_sweep_export_marks_errored_cells(self, capsys, tmp_path):
        import json

        base = self._base(tmp_path)
        out_path = tmp_path / "sweep.json"
        assert (
            main(
                [
                    "sweep", "--spec", str(base),
                    "--set", "strategy.name=centralized,nope",
                    "--export", str(out_path),
                ]
            )
            == 0
        )
        err = capsys.readouterr().err
        assert "1 of 2 cells errored" in err
        doc = json.loads(out_path.read_text())
        assert doc["cells"][0]["error"] is None
        assert doc["cells"][0]["makespan"] is not None
        assert doc["cells"][1]["makespan"] is None
        assert "nope" in doc["cells"][1]["error"]


class TestResultsCommand:
    def test_results_lists_store(self, capsys, tmp_path):
        base_path = tmp_path / "base.json"
        from repro.scenario import ScenarioSpec

        ScenarioSpec(
            name="cli-res", surface="synthetic", ops_per_node=5, n_nodes=8
        ).save(base_path)
        store = tmp_path / "runs"
        assert (
            main(
                [
                    "sweep", "--spec", str(base_path),
                    "--set", "seed=0,1",
                    "--out", str(store),
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["results", str(store)]) == 0
        out = capsys.readouterr().out
        assert "2 artifacts" in out
        assert "cli-res" in out
        assert "-s0" in out and "-s1" in out

    def test_results_empty_store_errors(self, capsys, tmp_path):
        rc = main(["results", str(tmp_path / "empty")])
        assert rc == 2
        assert "no artifacts" in capsys.readouterr().err

    def test_results_surfaces_obs_and_slo_columns(self, capsys, tmp_path):
        from repro.results import ResultStore
        from repro.scenario import get_scenario

        store = ResultStore(tmp_path / "runs")
        store.save(get_scenario("multi_tenant_slo").run(quick=True))
        # An untraced, SLO-less run lands in the same store.
        store.save(get_scenario("paper_synthetic").run(quick=True))
        capsys.readouterr()
        assert main(["results", str(tmp_path / "runs")]) == 0
        out = capsys.readouterr().out
        assert "obs" in out and "SLO" in out
        assert "violated" in out  # the judged artifact
        assert "ev+an" in out  # event count + analysis marker
        # The legacy-shaped artifact renders "-" placeholders, no crash.
        assert "paper_synthetic" in out


class TestDiffCommand:
    def _store(self, tmp_path, name, n_nodes):
        from repro.scenario import ScenarioSpec

        base_path = tmp_path / f"{name}.json"
        ScenarioSpec(
            name="cli-diff",
            surface="synthetic",
            ops_per_node=5,
            n_nodes=n_nodes,
        ).save(base_path)
        store = tmp_path / name
        assert (
            main(
                [
                    "sweep", "--spec", str(base_path),
                    "--set", "seed=0",
                    "--out", str(store),
                ]
            )
            == 0
        )
        return store

    def test_diff_two_stores_renders_keyed_delta(self, capsys, tmp_path):
        a = self._store(tmp_path, "a", n_nodes=8)
        b = self._store(tmp_path, "b", n_nodes=4)
        capsys.readouterr()
        assert main(["diff", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "1 paired" in out
        assert "n_nodes" in out
        assert "makespan_s" in out

    def test_diff_two_artifact_files(self, capsys, tmp_path):
        a = self._store(tmp_path, "a", n_nodes=8)
        b = self._store(tmp_path, "b", n_nodes=4)
        capsys.readouterr()
        file_a = sorted(a.glob("*.json"))[0]
        file_b = sorted(b.glob("*.json"))[0]
        assert main(["diff", str(file_a), str(file_b)]) == 0
        out = capsys.readouterr().out
        assert "n_nodes" in out
        assert "makespan_s" in out

    def test_diff_mixed_targets_errors(self, capsys, tmp_path):
        a = self._store(tmp_path, "a", n_nodes=8)
        capsys.readouterr()
        file_a = sorted(a.glob("*.json"))[0]
        rc = main(["diff", str(a), str(file_a)])
        assert rc == 2
        assert "two artifact files or two store" in capsys.readouterr().err


class TestTraceCommand:
    def test_trace_named_scenario_writes_chrome_json(self, capsys, tmp_path):
        import json

        out = tmp_path / "trace.json"
        jsonl = tmp_path / "trace.jsonl"
        assert (
            main(
                [
                    "trace",
                    "fanout_bandwidth_aware",
                    "--quick",
                    "--out",
                    str(out),
                    "--jsonl",
                    str(jsonl),
                ]
            )
            == 0
        )
        printed = capsys.readouterr().out
        assert "traced fanout_bandwidth_aware" in printed
        assert "streaming sketches" in printed
        doc = json.loads(out.read_text())
        cats = {e.get("cat") for e in doc["traceEvents"]}
        assert {"kernel", "network", "scheduler", "span"} <= cats
        lines = jsonl.read_text().splitlines()
        assert lines and all(json.loads(line) for line in lines)

    def test_trace_category_subset(self, capsys, tmp_path):
        import json

        out = tmp_path / "trace.json"
        assert (
            main(
                [
                    "trace",
                    "fanout_bandwidth_aware",
                    "--quick",
                    "--categories",
                    "scheduler,span",
                    "--out",
                    str(out),
                ]
            )
            == 0
        )
        capsys.readouterr()
        cats = {
            e.get("cat")
            for e in json.loads(out.read_text())["traceEvents"]
        }
        assert "kernel" not in cats
        assert {"scheduler", "span"} <= cats

    def test_trace_spec_file(self, capsys, tmp_path):
        from repro.scenario import ScenarioSpec

        spec_path = tmp_path / "spec.json"
        spec_path.write_text(
            ScenarioSpec(
                name="cli-trace-spec",
                surface="workflow",
                application="montage",
                ops_per_task=4,
                n_nodes=8,
            ).to_json()
        )
        out = tmp_path / "trace.json"
        assert (
            main(["trace", "--spec", str(spec_path), "--out", str(out)])
            == 0
        )
        assert "cli-trace-spec" in capsys.readouterr().out
        assert out.exists()

    def test_trace_requires_exactly_one_target(self, capsys, tmp_path):
        rc = main(["trace", "--out", str(tmp_path / "t.json")])
        assert rc == 2
        assert "exactly one target" in capsys.readouterr().err
        rc = main(
            [
                "trace",
                "fanout_bandwidth_aware",
                "--spec",
                "x.json",
                "--out",
                str(tmp_path / "t.json"),
            ]
        )
        assert rc == 2

    def test_trace_unknown_category_errors(self, capsys, tmp_path):
        rc = main(
            [
                "trace",
                "fanout_bandwidth_aware",
                "--quick",
                "--categories",
                "bogus",
                "--out",
                str(tmp_path / "t.json"),
            ]
        )
        assert rc == 2
        assert "unknown" in capsys.readouterr().err


class TestAnalyzeCommand:
    def test_analyze_named_scenario_renders_full_report(
        self, capsys, tmp_path
    ):
        out_path = tmp_path / "report.txt"
        assert (
            main(
                [
                    "analyze", "multi_tenant_slo", "--quick",
                    "--out", str(out_path),
                ]
            )
            == 0
        )
        printed = capsys.readouterr().out
        for needle in (
            "time attribution",
            "observed critical path",
            "VM occupancy",
            "SLO verdict: violated",
            "tenant_deadline:tenant-00",
        ):
            assert needle in printed, f"report missing {needle!r}"
        assert "observed critical path" in out_path.read_text()

    def test_analyze_forces_tracing_on(self, capsys):
        # fanout_bandwidth_aware is untraced in the registry; analyze
        # must still produce a span-level report.
        assert main(["analyze", "fanout_bandwidth_aware", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "observed critical path" in out
        assert "SLO: none declared" in out

    def test_analyze_spec_file(self, capsys, tmp_path):
        from repro.scenario import ScenarioSpec

        spec_path = tmp_path / "spec.json"
        ScenarioSpec(
            name="cli-analyze-spec",
            surface="workflow",
            application="montage",
            ops_per_task=4,
            n_nodes=8,
        ).save(spec_path)
        assert main(["analyze", "--spec", str(spec_path)]) == 0
        out = capsys.readouterr().out
        assert "cli-analyze-spec" in out
        assert "observed critical path" in out

    def test_analyze_stored_artifact_without_rerunning(
        self, capsys, tmp_path
    ):
        from repro.results import ResultStore
        from repro.scenario import get_scenario

        store = ResultStore(tmp_path / "runs")
        artifact = store.save(
            get_scenario("multi_tenant_slo").run(quick=True)
        )
        capsys.readouterr()
        assert main(["analyze", "--artifact", str(artifact)]) == 0
        out = capsys.readouterr().out
        assert "stored run" in out
        assert "observed critical path" in out
        assert "SLO verdict: violated" in out

    def test_analyze_artifact_without_blocks_errors(
        self, capsys, tmp_path
    ):
        from repro.results import ResultStore
        from repro.scenario import get_scenario

        store = ResultStore(tmp_path / "runs")
        artifact = store.save(
            get_scenario("paper_synthetic").run(quick=True)
        )
        rc = main(["analyze", "--artifact", str(artifact)])
        assert rc == 2
        assert "no 'analysis' or 'slo'" in capsys.readouterr().err

    def test_analyze_requires_exactly_one_target(self, capsys, tmp_path):
        rc = main(["analyze"])
        assert rc == 2
        assert "exactly one target" in capsys.readouterr().err
        rc = main(
            [
                "analyze", "multi_tenant_slo",
                "--artifact", str(tmp_path / "x.json"),
            ]
        )
        assert rc == 2
        assert "exactly one target" in capsys.readouterr().err


class TestRunMetricsFlag:
    def test_run_with_metrics_prints_sketches(self, capsys):
        assert (
            main(
                [
                    "run",
                    "--workflow",
                    "montage",
                    "--ops",
                    "6",
                    "--nodes",
                    "8",
                    "--metrics",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "streaming sketches" in out
        assert "ops.latency_s" in out

    def test_metrics_flag_composes_with_spec(self, capsys, tmp_path):
        from repro.scenario import ScenarioSpec

        spec_path = tmp_path / "spec.json"
        spec_path.write_text(
            ScenarioSpec(
                name="cli-metrics-spec",
                surface="workflow",
                application="montage",
                ops_per_task=4,
                n_nodes=8,
            ).to_json()
        )
        assert main(["run", "--spec", str(spec_path), "--metrics"]) == 0
        assert "trace events" in capsys.readouterr().out


class TestElasticityFlags:
    def test_elasticity_lists_policies(self, capsys):
        assert main(["elasticity"]) == 0
        out = capsys.readouterr().out
        for name in ("threshold", "slo_debt", "predictive"):
            assert name in out

    def test_scenarios_table_shows_capability_columns(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        assert "caps" in out
        # The elastic scenarios advertise the control plane; the SLO
        # scenario advertises its lens; plain ones show the dash.
        assert "elastic" in out
        assert "obs+elastic" in out
        assert "slo+elastic" in out
        assert "obs+slo" in out

    def test_run_with_elastic_flags_reports_actions(self, capsys):
        assert (
            main(
                [
                    "run",
                    "--workflow",
                    "montage",
                    "--ops",
                    "10",
                    "--nodes",
                    "4",
                    "--elastic",
                    "threshold",
                    "--elastic-lag",
                    "5",
                    "--elastic-max",
                    "3",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "elastic policy threshold" in out
        assert "vm-seconds" in out

    def test_elastic_knobs_require_elastic_flag(self, capsys):
        assert (
            main(
                [
                    "run",
                    "--workflow",
                    "montage",
                    "--ops",
                    "4",
                    "--elastic-lag",
                    "5",
                ]
            )
            == 2
        )
        assert "--elastic" in capsys.readouterr().err

    def test_elastic_flags_clash_with_spec_file(self, capsys, tmp_path):
        from repro.scenario import get_scenario

        spec_path = tmp_path / "spec.json"
        spec_path.write_text(get_scenario("paper_default").to_json())
        assert (
            main(
                [
                    "run",
                    "--spec",
                    str(spec_path),
                    "--elastic",
                    "threshold",
                ]
            )
            == 2
        )
        assert "--spec" in capsys.readouterr().err

    def test_analyze_elastic_scenario_prints_capacity_timeline(
        self, capsys
    ):
        assert main(["analyze", "autoscale_ramp", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "capacity timeline" in out
        assert "elastic policy predictive" in out

    def test_elastic_artifact_analyzes_from_disk(self, capsys, tmp_path):
        from repro.results import ResultStore
        from repro.scenario import get_scenario

        store = ResultStore(tmp_path / "runs")
        path = store.save(get_scenario("autoscale_ramp").run(quick=True))
        assert main(["analyze", "--artifact", str(path)]) == 0
        out = capsys.readouterr().out
        assert "elastic policy predictive" in out
        assert "vm-seconds" in out
