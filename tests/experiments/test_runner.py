"""Tests for the experiment runner plumbing (not the full experiments)."""

import io

import pytest

from repro.experiments import runner


class TestRunnerStructure:
    def test_quick_and_full_cover_same_experiments(self):
        quick = [name for name, _ in runner._experiments(quick=True)]
        full = [name for name, _ in runner._experiments(quick=False)]
        assert quick == full
        assert "Fig. 1" in quick
        assert any("Fig. 10" in n for n in quick)

    def test_experiments_are_callables(self):
        for _name, fn in runner._experiments(quick=True):
            assert callable(fn)

    def test_run_all_streams_reports(self, monkeypatch):
        """run_all renders every experiment into the stream."""

        class FakeResult:
            def render(self):
                return "FAKE-TABLE"

        monkeypatch.setattr(
            runner,
            "_experiments",
            lambda quick, config=None, with_workloads=False, jobs=1: [
                ("Fig. X", lambda: FakeResult())
            ],
        )
        buf = io.StringIO()
        results = runner.run_all(quick=True, stream=buf)
        out = buf.getvalue()
        assert "Fig. X" in out
        assert "FAKE-TABLE" in out
        assert len(results) == 1

    def test_main_parses_quick_flag(self, monkeypatch):
        called = {}

        def fake_run_all(
            quick=False, stream=None, config=None, with_workloads=False, jobs=1
        ):
            called["quick"] = quick
            called["config"] = config
            return []

        monkeypatch.setattr(runner, "run_all", fake_run_all)
        assert runner.main(["--quick"]) == 0
        assert called["quick"] is True
        assert called["config"] is None

    def test_main_parses_bandwidth_model_flag(self, monkeypatch):
        called = {}

        def fake_run_all(
            quick=False, stream=None, config=None, with_workloads=False, jobs=1
        ):
            called["config"] = config
            return []

        monkeypatch.setattr(runner, "run_all", fake_run_all)
        assert runner.main(["--bandwidth-model", "fair"]) == 0
        assert called["config"].bandwidth_model == "fair"

    def test_main_parses_scheduler_flag(self, monkeypatch):
        called = {}

        def fake_run_all(
            quick=False, stream=None, config=None, with_workloads=False, jobs=1
        ):
            called["config"] = config
            return []

        monkeypatch.setattr(runner, "run_all", fake_run_all)
        assert (
            runner.main(
                ["--scheduler", "bandwidth_aware", "--bandwidth-model", "fair"]
            )
            == 0
        )
        assert called["config"].scheduler == "bandwidth_aware"
        assert called["config"].bandwidth_model == "fair"

    def test_scheduler_alone_keeps_network_defaults(self, monkeypatch):
        called = {}

        def fake_run_all(
            quick=False, stream=None, config=None, with_workloads=False, jobs=1
        ):
            called["config"] = config
            return []

        monkeypatch.setattr(runner, "run_all", fake_run_all)
        assert runner.main(["--scheduler", "hybrid"]) == 0
        assert called["config"].scheduler == "hybrid"
        assert called["config"].bandwidth_model is None

    def test_hybrid_knobs_rejected_without_hybrid_scheduler(self, capsys):
        with pytest.raises(SystemExit):
            runner.main(["--hybrid-locality-weight", "2.0"])
        assert "require --scheduler hybrid" in capsys.readouterr().err

    def test_pending_penalty_rejected_without_bandwidth_aware(self, capsys):
        with pytest.raises(SystemExit):
            runner.main(
                ["--scheduler", "locality", "--bw-pending-penalty", "0.5"]
            )
        assert "--bw-pending-penalty requires" in capsys.readouterr().err
