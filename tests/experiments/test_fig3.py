"""Tests for the Fig. 3 local-replication micro-experiment."""

import pytest

from repro.experiments.fig3_replication import run_fig3
from repro.metadata.config import MetadataConfig


class TestFig3:
    def test_read_speedup_significant(self):
        r = run_fig3()
        assert r.read_speedup >= 5

    def test_key_is_geo_distant(self):
        r = run_fig3()
        assert r.home_site != r.writer_site

    def test_replicated_read_is_local_fast(self):
        r = run_fig3()
        # A local read: two LAN legs + service, well under 20 ms.
        assert r.replicated[1] < 0.02
        # The non-replicated read pays the geo-distant round trip.
        assert r.non_replicated[1] > 0.08

    def test_render(self):
        out = run_fig3().render()
        assert "Fig. 3" in out
        assert "non-replicated" in out

    def test_other_writer_site(self):
        r = run_fig3(writer_site="east-us")
        assert r.writer_site == "east-us"
        assert r.read_speedup > 1
