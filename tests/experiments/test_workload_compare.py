"""Fast-profile checks of the multi-tenant workload comparison scenario."""

import pytest

from repro.experiments.workload_compare import run_workload_compare
from repro.metadata.config import MetadataConfig


@pytest.fixture(scope="module")
def small_compare():
    return run_workload_compare(
        strategies=("centralized", "hybrid"),
        schedulers=("locality", "round_robin"),
        n_tenants=8,
        applications=("scatter", "pipeline"),
        ops_per_task=4,
        compute_time=0.2,
        n_nodes=12,
        seed=13,
    )


class TestWorkloadCompare:
    def test_all_combos_present(self, small_compare):
        assert set(small_compare.results) == {
            ("centralized", "locality"),
            ("centralized", "round_robin"),
            ("hybrid", "locality"),
            ("hybrid", "round_robin"),
        }

    def test_acceptance_properties_hold(self, small_compare):
        props = small_compare.properties()
        assert len(props) == 3  # completion, conservation, bound
        assert all(p.startswith("[ok  ]") for p in props)

    def test_per_tenant_metrics_reported(self, small_compare):
        for res in small_compare.results.values():
            assert len(res.tenants()) == 8
            assert set(res.makespan_by_tenant()) == set(res.tenants())
            assert set(res.queue_wait_by_tenant()) == set(res.tenants())
            assert set(res.slowdown_by_tenant()) == set(res.tenants())
            assert 0.0 < res.jain_fairness() <= 1.0
            assert res.op_throughput() > 0

    def test_render_includes_properties_and_tenants(self, small_compare):
        text = small_compare.render()
        assert "Workload comparison" in text
        assert "tenant-07" in text
        assert "[ok  ]" in text
        assert "Jain" in text

    def test_pinned_admission_config_wins(self):
        res = run_workload_compare(
            strategies=("hybrid",),
            schedulers=("locality",),
            n_tenants=2,
            applications=("scatter",),
            ops_per_task=2,
            compute_time=0.1,
            n_nodes=8,
            config=MetadataConfig(admission="unbounded"),
        )
        assert res.admission == "unbounded"
        only = next(iter(res.results.values()))
        assert only.admission == "unbounded"
        assert only.admission_bound is None
