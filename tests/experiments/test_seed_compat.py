"""Seed-compatibility regression: the slot model is frozen bit-for-bit.

``bandwidth_model="slots"`` is the repo's default *because* it
reproduces the calibrated seed experiments exactly -- same RNG draw
sequence, same timings.  The golden values below were captured from the
pre-hierarchical-fair-share code (PR 1 state) on the Fig. 5/Fig. 7
workload shapes at fast-profile sizes; any drift means the slots path
picked up an accidental behavioural change and MUST be investigated,
not re-pinned casually.

Comparisons are exact (``==`` on floats, no approx): the simulator is
deterministic, so bit-for-bit equality is the contract.
"""

import pytest

from repro.experiments.synthetic import run_synthetic_workload

# -- Engine placement: the default locality scheduler is frozen ------------
# Captured from the pre-scheduling-subsystem code (PR 2 state): Montage
# (20 ops/task, compute 0.5 s) on 16 nodes / seed 7 with the Fig. 10
# config, and a scatter fan-out on 8 nodes / seed 3.  The pluggable
# scheduler refactor extracted the locality heuristic verbatim, so the
# default path must keep producing these exact timings.
ENGINE_GOLDEN = {
    "centralized": {
        "makespan": 49.1149125837486,
        "transfer_time": 13.384527626447177,
    },
    "hybrid": {
        "makespan": 37.09831016257363,
        "transfer_time": 13.367754402254963,
    },
}
SCATTER_GOLDEN = {
    "makespan": 3.1646302894735587,
    "transfer_time": 0.3609876345000347,
    "tasks_per_site": {
        "east-us": 3,
        "north-europe": 3,
        "south-central-us": 3,
        "west-europe": 4,
    },
}

# -- Fig. 5 shape: mean node execution time per strategy ------------------
# 8 nodes, 40 ops/node, seed 0 (fast-profile scale of the 32-node runs).
FIG5_GOLDEN = {
    "centralized": {
        "makespan": 6.984300422220034,
        "mean_node_time": 4.409804869609512,
        "throughput": 45.817044035211275,
    },
    "decentralized": {
        "makespan": 4.86966660567183,
        "mean_node_time": 4.559069175558852,
        "throughput": 65.71291751827272,
    },
    "hybrid": {
        "makespan": 5.287786898349161,
        "mean_node_time": 3.3642357982316744,
        "throughput": 60.516810936519306,
    },
}

# -- Fig. 7 shape: centralized throughput vs node count -------------------
# 40 ops/node, seed 7.
FIG7_GOLDEN = {
    8: {"throughput": 45.76507638475873, "makespan": 6.992231309955171},
    16: {"throughput": 91.02618808692992, "makespan": 7.030943659738894},
}


@pytest.mark.parametrize("strategy", sorted(FIG5_GOLDEN))
def test_fig5_slots_results_bit_for_bit(strategy):
    golden = FIG5_GOLDEN[strategy]
    run = run_synthetic_workload(
        strategy, n_nodes=8, ops_per_node=40, seed=0
    )
    assert run.makespan == golden["makespan"]
    assert run.mean_node_time == golden["mean_node_time"]
    assert run.throughput == golden["throughput"]


@pytest.mark.parametrize("n_nodes", sorted(FIG7_GOLDEN))
def test_fig7_slots_results_bit_for_bit(n_nodes):
    golden = FIG7_GOLDEN[n_nodes]
    run = run_synthetic_workload(
        "centralized", n_nodes=n_nodes, ops_per_node=40, seed=7
    )
    assert run.throughput == golden["throughput"]
    assert run.makespan == golden["makespan"]


def _run_montage(strategy, scheduler=None):
    from repro.cloud.deployment import Deployment
    from repro.metadata.config import MetadataConfig
    from repro.metadata.controller import ArchitectureController
    from repro.workflow.applications import montage
    from repro.workflow.engine import WorkflowEngine

    dep = Deployment(n_nodes=16, seed=7)
    cfg = MetadataConfig(home_site="east-us", hybrid_sync_replication=True)
    ctrl = ArchitectureController(dep, strategy=strategy, config=cfg)
    engine = WorkflowEngine(dep, ctrl.strategy, scheduler=scheduler)
    res = engine.run(montage(ops_per_task=20, compute_time=0.5))
    ctrl.shutdown()
    return res


@pytest.mark.parametrize("strategy", sorted(ENGINE_GOLDEN))
def test_engine_locality_default_bit_for_bit(strategy):
    golden = ENGINE_GOLDEN[strategy]
    res = _run_montage(strategy)
    assert res.makespan == golden["makespan"]
    assert res.total_transfer_time == golden["transfer_time"]


def test_engine_explicit_locality_matches_default():
    """Pinning scheduler="locality" must equal the unpinned default."""
    default = _run_montage("hybrid")
    pinned = _run_montage("hybrid", scheduler="locality")
    assert pinned.makespan == default.makespan
    assert [r.vm for r in pinned.task_results] == [
        r.vm for r in default.task_results
    ]


def test_engine_scatter_placement_bit_for_bit():
    from repro.cloud.deployment import Deployment
    from repro.metadata.controller import ArchitectureController
    from repro.workflow.engine import WorkflowEngine
    from repro.workflow.patterns import scatter

    dep = Deployment(n_nodes=8, seed=3)
    ctrl = ArchitectureController(dep, strategy="decentralized")
    engine = WorkflowEngine(dep, ctrl.strategy)
    res = engine.run(scatter(12, compute_time=0.25, extra_ops=6))
    ctrl.shutdown()
    assert res.makespan == SCATTER_GOLDEN["makespan"]
    assert res.total_transfer_time == SCATTER_GOLDEN["transfer_time"]
    assert res.tasks_per_site() == SCATTER_GOLDEN["tasks_per_site"]


def test_engine_run_tagging_is_timing_neutral():
    """Op-run tagging and the tag-filtered ops snapshot (the multi-
    tenant attribution refactor) must not perturb a single run: an
    explicitly tagged execute() reproduces the locality goldens
    bit-for-bit, and its snapshot covers the whole run."""
    from repro.cloud.deployment import Deployment
    from repro.metadata.config import MetadataConfig
    from repro.metadata.controller import ArchitectureController
    from repro.workflow.applications import montage
    from repro.workflow.engine import WorkflowEngine

    dep = Deployment(n_nodes=16, seed=7)
    cfg = MetadataConfig(home_site="east-us", hybrid_sync_replication=True)
    ctrl = ArchitectureController(dep, strategy="hybrid", config=cfg)
    engine = WorkflowEngine(dep, ctrl.strategy)
    wf = montage(ops_per_task=20, compute_time=0.5)
    proc = dep.env.process(engine.execute(wf, run="golden-run"))
    res = dep.env.run(until=proc)
    ctrl.shutdown()
    golden = ENGINE_GOLDEN["hybrid"]
    assert res.makespan == golden["makespan"]
    assert res.total_transfer_time == golden["transfer_time"]
    assert res.run == "golden-run"
    # The tag-filtered snapshot is exactly the global record list (one
    # run, nothing lost to the filter).
    assert len(res.ops.records) == len(ctrl.strategy.stats.records)


def test_namespaced_workflow_preserves_structure_exactly():
    """File-key namespacing rewrites names only: DAG shape, sizes, op
    counts and compute times are untouched (what the concurrent-tenant
    isolation relies on)."""
    from repro.workflow.applications import montage

    wf = montage(ops_per_task=20, compute_time=0.5)
    ns = wf.namespaced("tenant-x/0")
    assert len(ns) == len(wf)
    assert ns.total_metadata_ops == wf.total_metadata_ops
    assert ns.total_compute_time == wf.total_compute_time
    assert ns.critical_path_time() == wf.critical_path_time()
    assert [t.task_id for t in ns.topological_order()] == [
        f"tenant-x/0/{t.task_id}" for t in wf.topological_order()
    ]


def test_explicit_slots_config_matches_default():
    """Threading a config must not disturb the slots RNG sequence."""
    from repro.metadata.config import MetadataConfig

    default = run_synthetic_workload(
        "hybrid", n_nodes=8, ops_per_node=40, seed=0
    )
    pinned = run_synthetic_workload(
        "hybrid",
        n_nodes=8,
        ops_per_node=40,
        seed=0,
        config=MetadataConfig(bandwidth_model="slots"),
    )
    assert pinned.makespan == default.makespan
    assert pinned.node_times == default.node_times


# -- Declarative scenario path: spec-driven == direct-args, bit for bit ----
# The repro.scenario API redesign must be a pure re-plumbing: a run
# described by a ScenarioSpec issues exactly the calls the direct-args
# plumbing made, pinned here against the same golden values.


def _synthetic_spec(strategy, n_nodes, ops_per_node, seed):
    from repro.scenario import ScenarioSpec, StrategySpec

    return ScenarioSpec(
        surface="synthetic",
        strategy=StrategySpec(name=strategy),
        ops_per_node=ops_per_node,
        n_nodes=n_nodes,
        seed=seed,
    )


@pytest.mark.parametrize("strategy", sorted(FIG5_GOLDEN))
def test_fig5_spec_path_bit_for_bit(strategy):
    golden = FIG5_GOLDEN[strategy]
    run = _synthetic_spec(strategy, 8, 40, 0).run().result
    assert run.makespan == golden["makespan"]
    assert run.mean_node_time == golden["mean_node_time"]
    assert run.throughput == golden["throughput"]


@pytest.mark.parametrize("n_nodes", sorted(FIG7_GOLDEN))
def test_fig7_spec_path_bit_for_bit(n_nodes):
    golden = FIG7_GOLDEN[n_nodes]
    run = _synthetic_spec("centralized", n_nodes, 40, 7).run().result
    assert run.throughput == golden["throughput"]
    assert run.makespan == golden["makespan"]


@pytest.mark.parametrize("strategy", sorted(ENGINE_GOLDEN))
def test_engine_spec_path_bit_for_bit(strategy):
    """The montage engine golden (home_site + sync replication pinned
    through StrategySpec) driven entirely through ScenarioSpec.run."""
    from repro.scenario import ScenarioSpec, StrategySpec

    golden = ENGINE_GOLDEN[strategy]
    spec = ScenarioSpec(
        surface="workflow",
        application="montage",
        ops_per_task=20,
        compute_time=0.5,
        strategy=StrategySpec(
            name=strategy,
            home_site="east-us",
            hybrid_sync_replication=True,
        ),
        n_nodes=16,
        seed=7,
    )
    res = spec.run()
    assert res.scheduler == "locality"
    assert res.result.makespan == golden["makespan"]
    assert res.result.total_transfer_time == golden["transfer_time"]


def test_engine_scatter_spec_path_bit_for_bit():
    """The locality placement golden via the spec path (pre-built DAG
    injected through run(workflow=...))."""
    from repro.scenario import ScenarioSpec, StrategySpec
    from repro.workflow.patterns import scatter

    spec = ScenarioSpec(
        surface="workflow",
        strategy=StrategySpec(name="decentralized"),
        n_nodes=8,
        seed=3,
    )
    res = spec.run(workflow=scatter(12, compute_time=0.25, extra_ops=6))
    assert res.result.makespan == SCATTER_GOLDEN["makespan"]
    assert res.result.total_transfer_time == SCATTER_GOLDEN["transfer_time"]
    assert res.result.tasks_per_site() == SCATTER_GOLDEN["tasks_per_site"]


def test_dump_spec_round_trip_reproduces_run(tmp_path):
    """A spec serialized to JSON and reloaded reproduces the original
    spec-driven result exactly (the --dump-spec/--spec contract)."""
    from repro.scenario import ScenarioSpec

    spec = _synthetic_spec("hybrid", 8, 40, 0)
    path = tmp_path / "spec.json"
    spec.save(path)
    reloaded = ScenarioSpec.load(path)
    assert reloaded == spec
    direct = spec.run().result
    replayed = reloaded.run().result
    assert replayed.makespan == direct.makespan
    assert replayed.node_times == direct.node_times
    assert direct.makespan == FIG5_GOLDEN["hybrid"]["makespan"]


@pytest.mark.parametrize("strategy", sorted(FIG5_GOLDEN))
def test_fig5_goldens_bit_for_bit_under_bucket_backend(
    monkeypatch, strategy
):
    """The bucketed calendar is observationally identical to the heap.

    Forcing every Environment in the run onto ``queue="bucket"`` must
    reproduce the slots goldens exactly -- same pop order, same RNG
    sequence, same timings.
    """
    from repro.sim.core import Environment

    orig_init = Environment.__init__

    def bucket_init(self, *args, **kwargs):
        kwargs.setdefault("queue", "bucket")
        orig_init(self, *args, **kwargs)

    monkeypatch.setattr(Environment, "__init__", bucket_init)
    golden = FIG5_GOLDEN[strategy]
    run = run_synthetic_workload(
        strategy, n_nodes=8, ops_per_node=40, seed=0
    )
    assert run.makespan == golden["makespan"]
    assert run.mean_node_time == golden["mean_node_time"]
    assert run.throughput == golden["throughput"]
