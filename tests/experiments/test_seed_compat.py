"""Seed-compatibility regression: the slot model is frozen bit-for-bit.

``bandwidth_model="slots"`` is the repo's default *because* it
reproduces the calibrated seed experiments exactly -- same RNG draw
sequence, same timings.  The golden values below were captured from the
pre-hierarchical-fair-share code (PR 1 state) on the Fig. 5/Fig. 7
workload shapes at fast-profile sizes; any drift means the slots path
picked up an accidental behavioural change and MUST be investigated,
not re-pinned casually.

Comparisons are exact (``==`` on floats, no approx): the simulator is
deterministic, so bit-for-bit equality is the contract.
"""

import pytest

from repro.experiments.synthetic import run_synthetic_workload

# -- Fig. 5 shape: mean node execution time per strategy ------------------
# 8 nodes, 40 ops/node, seed 0 (fast-profile scale of the 32-node runs).
FIG5_GOLDEN = {
    "centralized": {
        "makespan": 6.984300422220034,
        "mean_node_time": 4.409804869609512,
        "throughput": 45.817044035211275,
    },
    "decentralized": {
        "makespan": 4.86966660567183,
        "mean_node_time": 4.559069175558852,
        "throughput": 65.71291751827272,
    },
    "hybrid": {
        "makespan": 5.287786898349161,
        "mean_node_time": 3.3642357982316744,
        "throughput": 60.516810936519306,
    },
}

# -- Fig. 7 shape: centralized throughput vs node count -------------------
# 40 ops/node, seed 7.
FIG7_GOLDEN = {
    8: {"throughput": 45.76507638475873, "makespan": 6.992231309955171},
    16: {"throughput": 91.02618808692992, "makespan": 7.030943659738894},
}


@pytest.mark.parametrize("strategy", sorted(FIG5_GOLDEN))
def test_fig5_slots_results_bit_for_bit(strategy):
    golden = FIG5_GOLDEN[strategy]
    run = run_synthetic_workload(
        strategy, n_nodes=8, ops_per_node=40, seed=0
    )
    assert run.makespan == golden["makespan"]
    assert run.mean_node_time == golden["mean_node_time"]
    assert run.throughput == golden["throughput"]


@pytest.mark.parametrize("n_nodes", sorted(FIG7_GOLDEN))
def test_fig7_slots_results_bit_for_bit(n_nodes):
    golden = FIG7_GOLDEN[n_nodes]
    run = run_synthetic_workload(
        "centralized", n_nodes=n_nodes, ops_per_node=40, seed=7
    )
    assert run.throughput == golden["throughput"]
    assert run.makespan == golden["makespan"]


def test_explicit_slots_config_matches_default():
    """Threading a config must not disturb the slots RNG sequence."""
    from repro.metadata.config import MetadataConfig

    default = run_synthetic_workload(
        "hybrid", n_nodes=8, ops_per_node=40, seed=0
    )
    pinned = run_synthetic_workload(
        "hybrid",
        n_nodes=8,
        ops_per_node=40,
        seed=0,
        config=MetadataConfig(bandwidth_model="slots"),
    )
    assert pinned.makespan == default.makespan
    assert pinned.node_times == default.node_times
