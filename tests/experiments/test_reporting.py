"""Tests for the text reporting helpers."""

from repro.experiments.reporting import check, render_table, series_summary


class TestRenderTable:
    def test_alignment_and_title(self):
        out = render_table(
            ["name", "value"],
            [["alpha", 1.234], ["b", 10.0]],
            title="My Table",
        )
        lines = out.splitlines()
        assert lines[0] == "My Table"
        assert "name" in lines[1] and "value" in lines[1]
        # All rows share the separator width.
        assert len(set(len(l) for l in lines[1:])) <= 2

    def test_float_formatting(self):
        out = render_table(["x"], [[1.23456]], float_fmt="{:.2f}")
        assert "1.23" in out

    def test_non_float_cells_passthrough(self):
        out = render_table(["a", "b"], [["txt", 7]])
        assert "txt" in out and "7" in out

    def test_empty_rows(self):
        out = render_table(["col"], [])
        assert "col" in out


class TestCheck:
    def test_ok_and_miss(self):
        assert check("prop", True).startswith("[ok")
        assert check("prop", False).startswith("[MISS")

    def test_detail_appended(self):
        assert "(42x)" in check("prop", True, "42x")


class TestSeriesSummary:
    def test_pairs(self):
        out = series_summary("tput", [8, 16], [100.0, 203.5])
        assert out == "tput: 8:100.0, 16:203.5"
