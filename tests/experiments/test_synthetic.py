"""Tests for the Section VI-B synthetic reader/writer workload."""

import pytest

from repro.experiments.synthetic import run_synthetic_workload
from repro.metadata.config import MetadataConfig


@pytest.fixture
def cfg(fast_config):
    return fast_config


class TestSyntheticWorkload:
    def test_completes_all_ops(self, cfg):
        res = run_synthetic_workload(
            "centralized", n_nodes=8, ops_per_node=20, seed=1, config=cfg
        )
        assert res.total_ops == 160
        assert len(res.ops.records) == 160
        assert res.makespan > 0
        assert res.throughput > 0

    def test_roles_split_within_sites(self, cfg):
        res = run_synthetic_workload(
            "decentralized", n_nodes=8, ops_per_node=10, seed=1, config=cfg
        )
        # 4 writers and 4 readers, one of each per site.
        writes = res.ops.count_by_kind.__self__  # same OpStats
        from repro.metadata.stats import OpKind

        assert res.ops.count_by_kind(OpKind.WRITE) == 40
        assert res.ops.count_by_kind(OpKind.READ) == 40

    def test_reads_target_written_files(self, cfg):
        """Readers only request published keys: every read is found."""
        res = run_synthetic_workload(
            "centralized", n_nodes=4, ops_per_node=30, seed=2, config=cfg
        )
        from repro.metadata.stats import OpKind

        reads = [r for r in res.ops.records if r.kind is OpKind.READ]
        assert reads and all(r.found for r in reads)

    def test_deterministic_given_seed(self, cfg):
        a = run_synthetic_workload(
            "hybrid", n_nodes=4, ops_per_node=25, seed=9, config=cfg
        )
        b = run_synthetic_workload(
            "hybrid", n_nodes=4, ops_per_node=25, seed=9, config=cfg
        )
        assert a.makespan == b.makespan
        assert a.node_times == b.node_times

    def test_different_seeds_differ(self, cfg):
        a = run_synthetic_workload(
            "hybrid", n_nodes=4, ops_per_node=25, seed=1, config=cfg
        )
        b = run_synthetic_workload(
            "hybrid", n_nodes=4, ops_per_node=25, seed=2, config=cfg
        )
        assert a.makespan != b.makespan

    def test_node_time_by_site_covers_sites(self, cfg):
        res = run_synthetic_workload(
            "decentralized", n_nodes=8, ops_per_node=10, seed=3, config=cfg
        )
        assert set(res.node_time_by_site()) == {
            "west-europe",
            "north-europe",
            "east-us",
            "south-central-us",
        }

    def test_validation(self, cfg):
        with pytest.raises(ValueError):
            run_synthetic_workload("centralized", n_nodes=1, config=cfg)
        with pytest.raises(ValueError):
            run_synthetic_workload(
                "centralized", n_nodes=4, ops_per_node=0, config=cfg
            )

    def test_replicated_pays_visibility_penalty(self, cfg):
        """Replicated reads retry while entries are unsynced; the trace
        records those retries (the MI-penalty mechanism)."""
        res = run_synthetic_workload(
            "replicated", n_nodes=8, ops_per_node=40, seed=4, config=cfg
        )
        assert res.ops.total_retries > 0
