"""Tests for the terminal chart helpers."""

from repro.experiments.charts import bar_chart, line_chart, sparkline


class TestBarChart:
    def test_scales_to_peak(self):
        out = bar_chart([("a", 10.0), ("b", 5.0)], width=10)
        lines = out.splitlines()
        assert lines[0].count("█") == 10
        assert lines[1].count("█") == 5

    def test_labels_aligned(self):
        out = bar_chart([("short", 1.0), ("a-longer-label", 2.0)])
        lines = out.splitlines()
        assert lines[0].index("│") == lines[1].index("│")

    def test_title_and_unit(self):
        out = bar_chart([("x", 3.0)], title="T", unit="s")
        assert out.startswith("T\n")
        assert "3s" in out

    def test_empty(self):
        assert bar_chart([], title="empty") == "empty"

    def test_zero_values(self):
        out = bar_chart([("z", 0.0)])
        assert "z" in out


class TestSparkline:
    def test_shape(self):
        s = sparkline([1, 2, 3, 4])
        assert len(s) == 4
        assert s[0] < s[-1]  # block characters are ordered

    def test_flat_series(self):
        assert len(set(sparkline([5, 5, 5]))) == 1

    def test_empty(self):
        assert sparkline([]) == ""


class TestLineChart:
    def test_contains_markers_and_legend(self):
        out = line_chart(
            [8, 16, 32],
            {"dn": [10, 20, 40], "cen": [10, 12, 13]},
            height=6,
        )
        assert "o=dn" in out
        assert "x=cen" in out
        assert "┤" in out

    def test_empty(self):
        assert line_chart([], {}, title="t") == "t"

    def test_flat_series_safe(self):
        out = line_chart([1, 2], {"s": [5, 5]}, height=4)
        assert "s" in out
