"""Smoke + property tests for the figure experiments at reduced scale.

Full-scale shape checks live in the benchmarks; here we verify the
experiment plumbing (series shapes, rendering, reference data) quickly.
"""

import pytest

from repro.experiments.fig1_latency import PLACEMENTS, run_fig1
from repro.experiments.fig5_makespan import run_fig5
from repro.experiments.fig6_progress import run_fig6
from repro.experiments.fig7_throughput import run_fig7
from repro.experiments.fig8_scalability import run_fig8
from repro.experiments.fig10_workflows import run_fig10
from repro.experiments.scenarios import SCENARIOS
from repro.metadata.config import MetadataConfig
from repro.metadata.controller import StrategyName


class TestFig1:
    def test_distance_ordering(self):
        r = run_fig1(file_counts=(50, 200))
        assert r.times["same site"][-1] < r.times["same region"][-1]
        assert r.times["same region"][-1] < r.times["distant region"][-1]

    def test_linear_growth(self):
        r = run_fig1(file_counts=(100, 400))
        for label in PLACEMENTS:
            ratio = r.times[label][1] / r.times[label][0]
            assert 3.0 < ratio < 5.0  # 4x files -> ~4x time

    def test_remote_ratio_order_of_magnitude(self):
        r = run_fig1(file_counts=(100,))
        assert r.ratio(100, "distant region") > 10

    def test_render_contains_checks(self):
        out = r = run_fig1(file_counts=(50,)).render()
        assert "Fig. 1" in out and "[" in out


class TestFig5:
    def test_series_shapes(self, fast_config):
        r = run_fig5(
            ops_per_node=(20, 50), n_nodes=8, config=fast_config, seed=1
        )
        assert set(r.mean_node_time) == set(StrategyName.all())
        for series in r.mean_node_time.values():
            assert len(series) == 2
            assert series[0] < series[1]  # more ops, more time
        assert r.aggregate_ops == [160, 400]

    def test_gain_computation(self, fast_config):
        r = run_fig5(ops_per_node=(30,), n_nodes=8, config=fast_config)
        g = r.gain_vs_centralized(StrategyName.HYBRID)
        assert -2.0 < g < 1.0


class TestFig6:
    def test_progress_curves_monotone(self, fast_config):
        r = run_fig6(n_nodes=8, ops_per_node=60, config=fast_config)
        for series in r.curves.values():
            assert all(a <= b for a, b in zip(series, series[1:]))

    def test_site_times_present(self, fast_config):
        r = run_fig6(n_nodes=8, ops_per_node=40, config=fast_config)
        assert len(r.site_times[StrategyName.HYBRID]) == 4

    def test_speedup_positive(self, fast_config):
        r = run_fig6(n_nodes=8, ops_per_node=60, config=fast_config)
        assert r.speedup() > 0


class TestFig7:
    def test_throughput_series(self, fast_config):
        r = run_fig7(
            node_counts=(4, 8), ops_per_node=40, config=fast_config
        )
        for strat in StrategyName.all():
            assert len(r.throughput[strat]) == 2
            assert all(t > 0 for t in r.throughput[strat])

    def test_decentralized_scales(self, fast_config):
        r = run_fig7(
            node_counts=(4, 16), ops_per_node=60, config=fast_config
        )
        assert r.scaling_ratio(StrategyName.DECENTRALIZED) > 1.5


class TestFig8:
    def test_fixed_total_ops(self, fast_config):
        r = run_fig8(
            node_counts=(4, 8), total_ops=400, config=fast_config
        )
        for strat in StrategyName.all():
            assert len(r.completion[strat]) == 2

    def test_more_nodes_faster_decentralized(self, fast_config):
        r = run_fig8(
            node_counts=(4, 16), total_ops=800, config=fast_config
        )
        dn = r.completion[StrategyName.DECENTRALIZED]
        assert dn[1] < dn[0]


class TestFig10:
    def test_small_run_structure(self, fast_config):
        r = run_fig10(
            scenarios=("SS",),
            workflows=("buzzflow",),
            n_nodes=8,
            config=fast_config,
        )
        for strat in StrategyName.all():
            assert ("buzzflow", "SS", strat) in r.makespan
            assert r.makespan[("buzzflow", "SS", strat)] > 0
        assert r.best_strategy("buzzflow", "SS") in StrategyName.all()

    def test_gain_vs_centralized(self, fast_config):
        r = run_fig10(
            scenarios=("SS",),
            workflows=("buzzflow",),
            n_nodes=8,
            config=fast_config,
        )
        g = r.gain("buzzflow", "SS", StrategyName.CENTRALIZED)
        assert g == pytest.approx(0.0)


class TestScenarios:
    def test_table1_settings(self):
        assert SCENARIOS["SS"].ops_per_task == 100
        assert SCENARIOS["SS"].compute_time == 1.0
        assert SCENARIOS["CI"].ops_per_task == 200
        assert SCENARIOS["CI"].compute_time == 5.0
        assert SCENARIOS["MI"].ops_per_task == 1000
        assert SCENARIOS["MI"].compute_time == 1.0

    def test_totals(self):
        assert SCENARIOS["SS"].paper_total_buzzflow == 7_200
        assert SCENARIOS["CI"].paper_total_buzzflow == 14_400
        assert SCENARIOS["MI"].paper_total_buzzflow == 72_000
        assert SCENARIOS["SS"].paper_total_montage == 16_000
        assert SCENARIOS["CI"].paper_total_montage == 32_000
