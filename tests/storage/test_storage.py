"""Tests for per-site file stores and the transfer service."""

import pytest

from repro.cloud.network import Network
from repro.cloud.presets import AZURE_4DC, azure_4dc_topology
from repro.storage.filestore import FileStore, StoredFile
from repro.storage.transfer import TransferService
from repro.util.units import MB


@pytest.fixture
def net(env):
    return Network(env, azure_4dc_topology(jitter=False))


@pytest.fixture
def svc(env, net):
    return TransferService(env, net, AZURE_4DC)


def drive(env, gen):
    return env.run(until=env.process(gen))


class TestStoredFile:
    def test_validation(self):
        with pytest.raises(ValueError):
            StoredFile("", 10)
        with pytest.raises(ValueError):
            StoredFile("f", -1)


class TestFileStore:
    def test_put_get(self):
        store = FileStore("west-europe")
        f = StoredFile("data.bin", 1024)
        store.put(f)
        assert store.get("data.bin") == f
        assert store.has("data.bin")
        assert len(store) == 1
        assert store.total_bytes == 1024

    def test_get_missing(self):
        assert FileStore("x").get("nope") is None

    def test_idempotent_put_counts_bytes_once(self):
        store = FileStore("x")
        store.put(StoredFile("f", 100))
        store.put(StoredFile("f", 100))
        assert store.bytes_written == 100

    def test_delete(self):
        store = FileStore("x")
        store.put(StoredFile("f", 1))
        assert store.delete("f") is True
        assert store.delete("f") is False


class TestTransferService:
    def test_store_and_locations(self, svc):
        svc.store("west-europe", StoredFile("f", 100))
        svc.store("east-us", StoredFile("f", 100))
        assert set(svc.locations_of("f")) == {"west-europe", "east-us"}

    def test_fetch_local_is_instant(self, env, svc):
        svc.store("west-europe", StoredFile("f", 10 * MB))
        drive(env, svc.fetch("f", "west-europe"))
        assert env.now == 0.0
        assert svc.transfers == 0

    def test_fetch_remote_pays_latency_and_bandwidth(self, env, svc):
        svc.store("west-europe", StoredFile("big", 50 * MB))
        drive(env, svc.fetch("big", "east-us"))
        # 50 MB over a 50 MB/s WAN link plus propagation.
        assert env.now >= 1.0 + 0.040
        assert svc.wan_bytes == 50 * MB
        assert svc.stores["east-us"].has("big")

    def test_fetch_picks_nearest_source(self, env, svc):
        svc.store("south-central-us", StoredFile("f", 0))
        svc.store("north-europe", StoredFile("f", 0))
        drive(env, svc.fetch("f", "west-europe"))
        # Nearest source for West Europe is North Europe (10 ms not 58).
        assert env.now < 0.02

    def test_fetch_respects_known_locations(self, env, svc):
        svc.store("south-central-us", StoredFile("f", 0))
        svc.store("north-europe", StoredFile("f", 0))
        # Metadata only knows about the far replica.
        drive(
            env,
            svc.fetch("f", "west-europe", known_locations=["south-central-us"]),
        )
        assert env.now >= 0.058

    def test_fetch_missing_raises(self, env, svc):
        def flow():
            yield from svc.fetch("ghost", "west-europe")

        from repro.storage.transfer import TransferError

        with pytest.raises(TransferError):
            drive(env, flow())

    def test_unknown_site_raises(self, svc):
        with pytest.raises(KeyError):
            svc.store("atlantis", StoredFile("f", 1))

    def test_stale_known_location_falls_back(self, env, svc):
        """Metadata may list sites that no longer hold the file."""
        svc.store("east-us", StoredFile("f", 0))
        drive(
            env,
            svc.fetch(
                "f",
                "west-europe",
                known_locations=["north-europe", "east-us"],
            ),
        )
        assert svc.stores["west-europe"].has("f")

    def test_validation(self, env, net):
        with pytest.raises(ValueError):
            TransferService(env, net, ["west-europe"], default_weight=0.0)
        with pytest.raises(ValueError):
            TransferService(env, net, ["west-europe"], max_retries=-1)


class TestTransferRetries:
    """Fault-driven teardown and re-sourcing under the fair model."""

    @pytest.fixture
    def fair_net(self, env):
        from repro.cloud.network import Network

        return Network(
            env, azure_4dc_topology(jitter=False), bandwidth_model="fair"
        )

    def test_gives_up_after_max_retries(self, env, fair_net):
        svc = TransferService(
            env, fair_net, AZURE_4DC, max_retries=1
        )
        svc.store("west-europe", StoredFile("big", 50 * MB))

        def keep_flapping():
            # Kill the transfer shortly after every (re)start.
            while True:
                yield env.timeout(0.2)
                fair_net.flap_link("west-europe", "east-us")

        env.process(keep_flapping())

        from repro.storage.transfer import TransferError

        def pull():
            yield from svc.fetch("big", "east-us")

        with pytest.raises(TransferError, match="aborted"):
            drive(env, pull())
        assert svc.retries == 1  # one re-issue, then gave up

    def test_fetch_weight_reaches_the_flow(self, env, fair_net):
        svc = TransferService(env, fair_net, AZURE_4DC, default_weight=2.0)
        svc.store("west-europe", StoredFile("big", 10 * MB))

        seen = {}

        def pull():
            yield from svc.fetch("big", "east-us", weight=3.0)

        def probe():
            yield env.timeout(0.01)
            (flow,) = fair_net.flow_net.active_flows()
            seen["weight"] = flow.weight

        env.process(probe())
        drive(env, pull())
        assert seen["weight"] == 3.0
